package sim

// The unified simulation engine. One deterministic event core executes
// every policy: the engine owns the kernel, the grid, the implement pools
// with their FIFO ticket queues, the layer dependency counters, the
// per-processor timing model, and trace emission. What used to be two
// parallel executors (the static per-plan one and the dynamic shared-bag
// one) is now a single state machine parameterized by a TaskSource — the
// pluggable scheduling policy that decides what each processor does next.
//
// The split of responsibilities:
//
//   - Engine: resource mechanics (grant/release/pickup/put-down), paint
//     execution and statistics, layer counters, span emission, probes.
//   - TaskSource: task selection, claim bookkeeping, parking and waking
//     of blocked processors, completion checks.
//
// Three sources ship with the package: planSource (static per-processor
// plans, scenarios 1–4), bagSource (shared work bag, self-scheduling),
// and stealSource (static plans plus work stealing by idle processors).
//
// Memory and dispatch layout (see DESIGN.md §3f): all per-run state is
// flat and index-addressed — processors and implements are value slices,
// per-color implement pools and FIFO ticket queues are fixed-size arrays
// indexed by palette.Color, and every continuation is an op-coded kernel
// event (an opcode plus a processor index) instead of a heap-allocated
// closure. The state lives in a run arena (arena.go) recycled across
// runs, which is what makes a warm run allocation-free. The event loop
// is specialized once at run entry: a run with no probes, no tracing,
// and no fault injector executes the fast opcode variants, whose bodies
// contain no hook sites at all; any hook installs the instrumented
// variants, which are line-for-line the hook-bearing equivalents. The
// fast path additionally batches contiguous same-color plan spans into
// a single completion event where no other processor could observe the
// intermediate state.

import (
	"context"
	"fmt"
	"time"

	"flagsim/internal/devent"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/processor"
	"flagsim/internal/workplan"
)

// SelectKind classifies a TaskSource decision.
type SelectKind uint8

// TaskSource decisions.
const (
	// SelectTask hands the engine a task to execute. The engine either
	// paints it (right implement in hand) or returns it via Requeue and
	// first switches or acquires implements.
	SelectTask SelectKind = iota
	// SelectWait parks the processor until the source wakes it (a layer
	// dependency or an empty-but-unfinished work pool).
	SelectWait
	// SelectDone retires the processor: no more work will ever arrive.
	SelectDone
)

// Selection is a TaskSource's decision for one processor at one instant.
type Selection struct {
	Kind SelectKind
	// Task is the selected work when Kind == SelectTask.
	Task workplan.Task
	// Layer is the blocking layer when Kind == SelectWait and the wait is
	// a layer dependency (planSource and stealSource park per layer;
	// bagSource parks globally and leaves it zero).
	Layer int
}

// TaskSource is the pluggable scheduling policy of the engine. Sources
// may inspect engine state through the exported accessors (Now, Holding,
// LayerBlocked, LayerRemaining, HasFreeImplement) and must wake parked
// processors with Wake.
type TaskSource interface {
	// Select decides what processor pi does next at the current virtual
	// time. A returned task is claimed: the engine paints it or hands it
	// back via Requeue before switching implements.
	Select(e *Engine, pi int) Selection
	// Requeue returns a claimed-but-unpainted task to the source (the
	// processor must acquire or switch implements first and will
	// re-Select afterwards).
	Requeue(e *Engine, pi int, task workplan.Task)
	// Park records pi as blocked under the given SelectWait selection.
	// The engine has already stamped the processor's waitStart.
	Park(e *Engine, pi int, sel Selection)
	// CellDone records that pi painted task. The engine has already
	// painted the grid cell and decremented the layer counter; the source
	// updates its bookkeeping and wakes any processors the completion
	// unblocks via e.Wake.
	CellDone(e *Engine, pi int, task workplan.Task)
	// HasMore reports whether pi has further known work — it gates the
	// EagerRelease hold policy's put-down after each cell.
	HasMore(e *Engine, pi int) bool
	// CheckComplete validates that the run finished all work; it is
	// called after the event queue drains and returns the executor's
	// deadlock/stall error if work remains.
	CheckComplete(e *Engine) error
}

// procState is the runtime state machine of one processor. It is stored
// by value in the engine's flat processor slice.
type procState struct {
	proc *processor.Processor
	// holding indexes the held implement in Engine.impls, or -1.
	holding int32
	stats   ProcStats
	// waitStart marks when the current wait began, for accounting.
	waitStart time.Duration
	painted   bool // has painted at least one cell
	// In-flight paint state: an op-coded completion event carries only
	// the processor index, so the task being painted (and the repaint
	// attempt and fast-path batch length) lives here. Sound because a
	// processor has at most one pending kernel event at any instant.
	curTask workplan.Task
	attempt int32
	batch   int32
}

// implState is the runtime state of one physical implement, stored by
// value in the engine's flat implement slice.
type implState struct {
	im     *implement.Implement
	holder int32 // processor index, or -1
	stats  ImplementStats
	// busySince marks acquisition time while held.
	busySince time.Duration
	acquired  int
}

// waitQueue is a FIFO ring of processor indices over a reusable backing
// array: pushes and pops move cursors instead of growing or re-slicing,
// so a run never reallocates and an arena reuses the ring across runs.
// The ring is sized to the processor count at bind time — each waiter is
// a distinct processor, so it can never overflow.
type waitQueue struct {
	buf  []int32
	head int
	n    int
}

func (q *waitQueue) reset(procs int) {
	if cap(q.buf) < procs {
		q.buf = make([]int32, procs)
	} else {
		q.buf = q.buf[:cap(q.buf)]
	}
	q.head, q.n = 0, 0
}

func (q *waitQueue) len() int { return q.n }

func (q *waitQueue) push(pi int32) {
	q.buf[(q.head+q.n)%len(q.buf)] = pi
	q.n++
}

func (q *waitQueue) pop() int32 {
	pi := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return pi
}

// engineConfig assembles an Engine; the exported Run* constructors
// translate their public configs into one of these.
type engineConfig struct {
	// ctx, when non-nil, is polled at cancellation checkpoints so an
	// abandoned run stops mid-simulation instead of burning CPU to the
	// end. nil keeps the unchecked hot path.
	ctx    context.Context
	source TaskSource
	procs  []*processor.Processor
	set    *implement.Set
	hold   HoldPolicy
	setup  time.Duration
	trace  bool
	probes []Probe
	// faults, when non-nil, injects deterministic faults into the run.
	faults FaultInjector
	w, h   int
	// layerDeps and layerCellCount describe the workload's dependency
	// structure; the engine owns the live remaining counters.
	layerDeps      [][]int
	layerCellCount []int
}

// Opcodes for the kernel's op-coded events. Each op carries a processor
// index. The fast/instrumented pairs are distinct opcodes — the variant
// is chosen once at run entry (Engine.opAdvance et al.), so dispatch
// jumps straight to the specialized body with no per-event mode check.
const (
	opAdvanceFast uint8 = iota
	opAdvanceInst
	opPaintDoneFast
	opPaintDoneInst
	opPutDownFast
	opPutDownInst
)

// Engine is the unified executor state. Sources receive it on every
// callback; external policies use the exported accessors. Engines are
// embedded in an Arena and rebound per run — see arena.go.
type Engine struct {
	ctx    context.Context
	source TaskSource
	hold   HoldPolicy
	setup  time.Duration
	// observing is true when spans must be materialized (tracing or at
	// least one probe installed); tracing additionally stores them.
	observing bool
	tracing   bool
	// instrumented records which dispatch variant this run selected:
	// false means the fast opcodes (no probe, fault, or trace hook sites
	// compiled into the executed bodies), true the hook-bearing ones.
	instrumented bool
	// probes holds the run-resolved probe set: RunScopedProbes from the
	// config are replaced by their per-run children.
	probes []Probe
	// faults is the run's fault injector (nil on the unchecked hot path);
	// unsound is its UnsoundInjector extension when present. fstats
	// tallies what the injector did.
	faults  FaultInjector
	unsound UnsoundInjector
	fstats  FaultStats

	kernel devent.Kernel
	grid   *grid.Grid
	procs  []procState
	impls  []implState
	// byColor indexes implement states per color: flat index slices into
	// impls, carved from one arena-backed array.
	byColor [palette.NColors][]int32
	// queues holds the FIFO implement waiters per color.
	queues [palette.NColors]waitQueue
	// layerRemaining counts unpainted cells per layer.
	layerRemaining []int
	layerDeps      [][]int
	// layerIsDep[l] is true when l is a prerequisite of some other layer.
	// Only such layers can be parked on or have their remaining count
	// read by another processor, so completions within a non-dep layer
	// may be applied as one batch — no one can observe the intermediate
	// counter states.
	layerIsDep []bool
	trace      []Span
	breaks     int
	err        error
	// synthEvents counts the per-cell completion events elided by span
	// batching, so Result.Events reports the same logical event count as
	// the equivalent unbatched (instrumented) run.
	synthEvents uint64

	// plansrc, bagsrc, and stealsrc are the source downcast to the
	// in-package policies, set once at bind. They devirtualize the
	// per-event source callbacks (see srcSelect) and, for plansrc, gate
	// fast-path span batching. At most one is non-nil; an external
	// TaskSource leaves all three nil and dispatches through the
	// interface.
	plansrc  *planSource
	bagsrc   *bagSource
	stealsrc *stealSource
	// The opcode variants selected once at run entry.
	opAdvance, opPaintDone, opPutDown uint8
}

// srcSelect and the sibling helpers below dispatch source callbacks to
// the concrete in-package policy when one is bound. An interface call
// per event is measurable at this frequency (three to four callbacks
// per cell); the downcast happens once per run, the nil checks here
// predict perfectly, and the direct calls are inline candidates.

func (e *Engine) srcRequeue(pi int, task workplan.Task) {
	if s := e.plansrc; s != nil {
		s.Requeue(e, pi, task)
		return
	}
	if s := e.bagsrc; s != nil {
		s.Requeue(e, pi, task)
		return
	}
	if s := e.stealsrc; s != nil {
		s.Requeue(e, pi, task)
		return
	}
	e.srcRequeue(pi, task)
}

func (e *Engine) srcPark(pi int, sel Selection) {
	if s := e.plansrc; s != nil {
		s.Park(e, pi, sel)
		return
	}
	if s := e.bagsrc; s != nil {
		s.Park(e, pi, sel)
		return
	}
	if s := e.stealsrc; s != nil {
		s.Park(e, pi, sel)
		return
	}
	e.srcPark(pi, sel)
}

func (e *Engine) srcHasMore(pi int) bool {
	if s := e.plansrc; s != nil {
		return s.HasMore(e, pi)
	}
	if s := e.bagsrc; s != nil {
		return s.HasMore(e, pi)
	}
	if s := e.stealsrc; s != nil {
		return s.HasMore(e, pi)
	}
	return e.srcHasMore(pi)
}

// dispatch interprets op-coded kernel events. It is installed once per
// arena as the kernel's handler.
func (e *Engine) dispatch(op uint8, arg int32) {
	pi := int(arg)
	switch op {
	case opAdvanceFast:
		e.advanceFast(pi)
	case opAdvanceInst:
		e.advanceInst(pi)
	case opPaintDoneFast:
		e.paintDoneFast(pi)
	case opPaintDoneInst:
		e.paintDoneInst(pi)
	case opPutDownFast:
		e.release(pi, e.kernel.Now())
		e.advanceFast(pi)
	case opPutDownInst:
		e.release(pi, e.kernel.Now())
		e.advanceInst(pi)
	}
}

func (e *Engine) schedOp(d time.Duration, op uint8, pi int) {
	if err := e.kernel.ScheduleOp(d, op, int32(pi)); err != nil && e.err == nil {
		e.err = err
	}
}

// resolveProbes replaces every RunScopedProbe with the per-run child its
// BeginRun hands out, leaving plain probes in place. The copy keeps the
// caller's shared slice untouched.
func resolveProbes(probes []Probe) []Probe {
	scoped := false
	for _, p := range probes {
		if _, ok := p.(RunScopedProbe); ok {
			scoped = true
			break
		}
	}
	if !scoped {
		return probes
	}
	out := make([]Probe, len(probes))
	for i, p := range probes {
		if rsp, ok := p.(RunScopedProbe); ok {
			out[i] = rsp.BeginRun()
		} else {
			out[i] = p
		}
	}
	return out
}

// notifyResult fans the completed result out to the run-resolved probes
// (so a RunScopedProbe's child — not its shared parent — observes it).
// Executors call it after filling in their policy-specific Result fields.
func (e *Engine) notifyResult(res *Result) {
	notifyResultProbes(e.probes, res)
}

// run executes the engine to completion: serial setup, simultaneous
// start, event loop until drained, then the source's completion check.
func (e *Engine) run() (time.Duration, error) {
	if e.observing && e.setup > 0 {
		for i := range e.procs {
			e.emitSpan(Span{Proc: i, Kind: SpanSetup, Start: 0, End: e.setup})
		}
	}
	for i := range e.procs {
		if err := e.kernel.ScheduleOp(e.setup, e.opAdvance, int32(i)); err != nil {
			return 0, err
		}
	}
	makespan, err := e.drain()
	if err != nil {
		return 0, err
	}
	if e.err != nil {
		return 0, e.err
	}
	if err := e.source.CheckComplete(e); err != nil {
		return 0, err
	}
	return makespan, nil
}

// cancelCheckEvery is the event-loop cancellation granularity: with a
// context installed the drain loop polls ctx.Err() once per this many
// events. Small enough that an abandoned request stops within a few
// hundred microseconds of wall time, large enough that the poll never
// shows up in the engine benchmarks.
const cancelCheckEvery = 256

// drain executes the event loop until the queue empties. It pulls op
// events out of the kernel with StepInto and dispatches them with a
// direct call — one indirect call per event through the kernel's
// handler closure is measurable at engine event rates. With a context
// installed, cancellation checkpoints make the run abort early with
// ErrCanceled.
func (e *Engine) drain() (time.Duration, error) {
	if e.ctx == nil {
		for {
			op, arg, kind := e.kernel.StepInto()
			if kind == devent.StepEmpty {
				return e.kernel.Now(), nil
			}
			if kind == devent.StepOp {
				e.dispatch(op, arg)
			}
		}
	}
	if err := e.ctx.Err(); err != nil {
		return 0, fmt.Errorf("%w before the first event: %v", ErrCanceled, err)
	}
	var n uint64
	for {
		op, arg, kind := e.kernel.StepInto()
		if kind == devent.StepEmpty {
			return e.kernel.Now(), nil
		}
		if kind == devent.StepOp {
			e.dispatch(op, arg)
		}
		n++
		if n%cancelCheckEvery == 0 {
			if err := e.ctx.Err(); err != nil {
				return 0, fmt.Errorf("%w after %d events at t=%v: %v",
					ErrCanceled, e.kernel.Processed(), e.kernel.Now(), err)
			}
		}
	}
}

// ---- Accessors for TaskSource implementations ----

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.kernel.Now() }

// NumProcs returns the processor count.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Holding returns the implement processor pi holds, or nil.
func (e *Engine) Holding(pi int) *implement.Implement {
	if h := e.procs[pi].holding; h >= 0 {
		return e.impls[h].im
	}
	return nil
}

// Layers returns the number of layers in the workload.
func (e *Engine) Layers() int { return len(e.layerRemaining) }

// LayerRemaining returns the number of unpainted cells of layer l.
func (e *Engine) LayerRemaining(l int) int { return e.layerRemaining[l] }

// LayerBlocked reports the first incomplete prerequisite layer of l.
func (e *Engine) LayerBlocked(l int) (dep int, blocked bool) {
	for _, d := range e.layerDeps[l] {
		if e.layerRemaining[d] > 0 {
			return d, true
		}
	}
	return 0, false
}

// HasFreeImplement reports whether an implement of color c is free now.
func (e *Engine) HasFreeImplement(c palette.Color) bool {
	return e.freeImplement(c) >= 0
}

// Wake unparks processor pi: accounts its layer-wait time, emits the
// wait-layer span, and schedules its re-advance at the current instant.
func (e *Engine) Wake(pi int) {
	now := e.kernel.Now()
	ps := &e.procs[pi]
	ps.stats.WaitLayer += now - ps.waitStart
	if e.observing && now > ps.waitStart {
		e.emitSpan(Span{Proc: pi, Kind: SpanWaitLayer, Start: ps.waitStart, End: now})
	}
	e.schedOp(0, e.opAdvance, pi)
}

// ---- Event loop: instrumented variants ----
//
// The instrumented bodies are the reference semantics: every probe,
// fault, and trace hook in place. The fast variants below are the same
// control flow with the hook sites removed, valid only when no hook is
// installed — the selection happens once, in Arena.bind.

// advanceInst drives processor pi as far as it can go at the current
// virtual time, parking it on a queue or scheduling a completion event.
func (e *Engine) advanceInst(pi int) {
	if e.err != nil {
		return
	}
	ps := &e.procs[pi]
	now := e.kernel.Now()

	// A stall window covering this instant freezes the processor until
	// the window ends; the re-advance lands at the window's end, where
	// StallUntil no longer covers now, so time always progresses.
	if e.faults != nil {
		if until := e.faults.StallUntil(pi, now); until > now {
			e.fstats.Stalls++
			e.fstats.StallTime += until - now
			if e.observing {
				e.emitSpan(Span{Proc: pi, Kind: SpanStall, Start: now, End: until})
			}
			e.schedOp(until-now, e.opAdvance, pi)
			return
		}
	}

	var sel Selection
	if s := e.plansrc; s != nil {
		sel = s.Select(e, pi)
	} else if s := e.bagsrc; s != nil {
		sel = s.Select(e, pi)
	} else if s := e.stealsrc; s != nil {
		sel = s.Select(e, pi)
	} else {
		sel = e.source.Select(e, pi)
	}
	switch sel.Kind {
	case SelectDone:
		// Done: release anything held so teammates can proceed.
		if ps.holding >= 0 {
			e.release(pi, now)
		}
		if ps.stats.Finish < now {
			ps.stats.Finish = now
		}
		for _, p := range e.probes {
			p.ProcDone(pi, now)
		}
		return

	case SelectWait:
		// Before parking, put down anything held so a teammate can use it
		// (a student waiting for the background to finish does not hoard
		// the red marker).
		if ps.holding >= 0 {
			e.putDown(pi, now)
			return
		}
		e.srcPark(pi, sel)
		ps.waitStart = now
		for _, p := range e.probes {
			p.Block(pi, SpanWaitLayer, palette.None, now)
		}
		return
	}

	task := sel.Task

	// Implement in hand of the right color: paint.
	if ps.holding >= 0 && e.impls[ps.holding].im.Color == task.Color {
		e.paintAttemptInst(pi, task, now, 0)
		return
	}

	// Wrong implement in hand: hand the task back, put the implement down
	// (busy during put-down, then re-advance).
	if ps.holding >= 0 {
		e.srcRequeue(pi, task)
		e.putDown(pi, now)
		return
	}

	// Need to acquire an implement of task.Color.
	e.srcRequeue(pi, task)
	if ii := e.freeImplement(task.Color); ii >= 0 {
		e.grant(pi, ii, e.kernel.Now())
		return
	}

	// All implements of that color are busy: join the FIFO queue.
	e.queues[task.Color].push(int32(pi))
	ps.waitStart = now
	depth := e.queues[task.Color].len()
	for _, ii := range e.byColor[task.Color] {
		if depth > e.impls[ii].stats.MaxQueue {
			e.impls[ii].stats.MaxQueue = depth
		}
	}
	for _, p := range e.probes {
		p.Block(pi, SpanWaitImplement, task.Color, now)
	}
}

// putDown spends the put-down time, then releases the held implement and
// re-enters the processor's advance loop (via the put-down opcode).
func (e *Engine) putDown(pi int, now time.Duration) {
	ps := &e.procs[pi]
	im := e.impls[ps.holding].im
	putDown := im.Spec.PutDown
	if e.observing && putDown > 0 {
		e.emitSpan(Span{Proc: pi, Kind: SpanPutDown,
			Start: now, End: now + putDown, Color: im.Color})
	}
	ps.stats.Overhead += putDown
	e.schedOp(putDown, e.opPutDown, pi)
}

// freeImplement returns the index of a free implement of color c (lowest
// ID first for determinism), or -1.
func (e *Engine) freeImplement(c palette.Color) int32 {
	for _, ii := range e.byColor[c] {
		if e.impls[ii].holder == -1 {
			return ii
		}
	}
	return -1
}

// grant reserves implement ii for processor pi and schedules the pickup.
func (e *Engine) grant(pi int, ii int32, now time.Duration) {
	ps := &e.procs[pi]
	is := &e.impls[ii]
	is.holder = int32(pi)
	is.busySince = now
	is.acquired++
	if is.acquired > 1 {
		is.stats.Handoffs++
	}
	pickup := is.im.Spec.Pickup
	// A faulty handoff (any acquisition after the implement's first)
	// extends the pickup; the delay is overhead like the pickup itself.
	if e.faults != nil && is.acquired > 1 {
		if d := e.faults.HandoffDelay(pi, is.im, now); d > 0 {
			pickup += d
			e.fstats.HandoffDelays++
			e.fstats.HandoffDelayTime += d
		}
	}
	if e.observing && pickup > 0 {
		e.emitSpan(Span{Proc: pi, Kind: SpanPickup,
			Start: now, End: now + pickup, Color: is.im.Color})
	}
	ps.stats.Overhead += pickup
	ps.holding = ii
	for _, p := range e.probes {
		p.Grant(pi, is.im, now)
	}
	e.schedOp(pickup, e.opAdvance, pi)
}

// release frees processor pi's implement at time now and hands it to the
// first queued waiter, if any.
func (e *Engine) release(pi int, now time.Duration) {
	ps := &e.procs[pi]
	ii := ps.holding
	is := &e.impls[ii]
	ps.holding = -1
	is.holder = -1
	is.stats.BusyTime += now - is.busySince
	for _, p := range e.probes {
		p.Release(pi, is.im, now)
	}

	c := is.im.Color
	q := &e.queues[c]
	if q.len() == 0 {
		return
	}
	next := int(q.pop())
	waiter := &e.procs[next]
	waiter.stats.WaitImplement += now - waiter.waitStart
	if e.observing && now > waiter.waitStart {
		e.emitSpan(Span{Proc: next, Kind: SpanWaitImplement,
			Start: waiter.waitStart, End: now, Color: c})
	}
	e.grant(next, ii, now)
}

// forcedBreakRepair is the repair delay charged when a fault-injected
// breakage hits an implement whose own spec has no repair time (only
// crayons model breakage natively); it matches the crayon repair delay.
const forcedBreakRepair = 8 * time.Second

// paintAttemptInst runs one paint attempt (attempt 0 unless a
// fault-injected paint failure forced a repaint) and schedules its
// completion.
func (e *Engine) paintAttemptInst(pi int, task workplan.Task, now time.Duration, attempt int32) {
	ps := &e.procs[pi]
	im := e.impls[ps.holding].im
	// ServiceTime draws from the processor's RNG stream; it must stay the
	// first stochastic call so fault-free runs keep their exact sequence.
	service := ps.proc.ServiceTime(task.Cell, im)
	if e.faults != nil {
		if f := e.faults.ServiceFactor(pi, task); f != 1 {
			service = time.Duration(float64(service) * f)
			e.fstats.DegradedCells++
		}
	}
	var repair time.Duration
	if ps.proc.Breaks(im) {
		repair = im.Spec.Repair
		e.breaks++
		e.impls[ps.holding].stats.Breakages++
	} else if e.faults != nil && attempt == 0 && e.faults.ForcedBreak(pi, task) {
		// Fault-forced breakage: tallied separately from the implement's
		// own stochastic breaks (Result.Breaks stays comparable to the
		// fault-free run).
		repair = im.Spec.Repair
		if repair <= 0 {
			repair = forcedBreakRepair
		}
		e.fstats.ForcedBreaks++
	}
	if e.observing && repair > 0 {
		e.emitSpan(Span{Proc: pi, Kind: SpanRepair,
			Start: now + service, End: now + service + repair, Color: task.Color})
	}
	if e.observing {
		e.emitSpan(Span{Proc: pi, Kind: SpanPaint,
			Start: now, End: now + service, Color: task.Color, Cell: task.Cell})
	}
	if !ps.painted {
		ps.painted = true
		ps.stats.FirstPaint = now
	}
	ps.stats.PaintTime += service
	ps.stats.Overhead += repair
	ps.curTask = task
	ps.attempt = attempt
	e.schedOp(service+repair, opPaintDoneInst, pi)
}

// paintDoneInst completes the in-flight paint attempt of processor pi.
func (e *Engine) paintDoneInst(pi int) {
	ps := &e.procs[pi]
	task := ps.curTask
	// A transient paint failure forces a full repaint of the cell: the
	// attempt's time is spent but the task is not complete.
	if e.faults != nil && e.faults.PaintFails(pi, task, int(ps.attempt)) {
		e.fstats.Repaints++
		e.paintAttemptInst(pi, task, e.kernel.Now(), ps.attempt+1)
		return
	}
	if e.unsound != nil && e.unsound.LosePaint(pi, task) {
		// Oracle self-test backdoor: drop the grid write but report
		// the task complete — a seeded lost-update bug.
		e.fstats.LostPaints++
	} else if err := e.grid.Paint(task.Cell, task.Color); err != nil {
		e.err = err
		return
	}
	ps.stats.Cells++
	e.layerRemaining[task.Layer]--
	if s := e.bagsrc; s != nil {
		s.CellDone(e, pi, task)
	} else if s := e.stealsrc; s != nil {
		s.CellDone(e, pi, task)
	} else if s := e.plansrc; s != nil {
		s.CellDone(e, pi, task)
	} else {
		e.source.CellDone(e, pi, task)
	}
	for _, p := range e.probes {
		p.Complete(pi, task, e.kernel.Now())
	}
	// EagerRelease puts the implement down after every cell even if the
	// next cell wants the same color.
	if e.hold == EagerRelease && ps.holding >= 0 && e.srcHasMore(pi) {
		e.putDown(pi, e.kernel.Now())
		return
	}
	e.advanceInst(pi)
}

// ---- Event loop: fast variants ----
//
// The same control flow as the instrumented variants with every probe,
// fault, and trace hook removed — straight-line resource mechanics.
// Selected at run entry only when no probe, no tracing, and no fault
// injector is installed, so removing the hooks cannot change results.

func (e *Engine) advanceFast(pi int) {
	if e.err != nil {
		return
	}
	ps := &e.procs[pi]
	now := e.kernel.Now()

	var sel Selection
	if s := e.plansrc; s != nil {
		sel = s.Select(e, pi)
	} else if s := e.bagsrc; s != nil {
		sel = s.Select(e, pi)
	} else if s := e.stealsrc; s != nil {
		sel = s.Select(e, pi)
	} else {
		sel = e.source.Select(e, pi)
	}
	switch sel.Kind {
	case SelectDone:
		if ps.holding >= 0 {
			e.release(pi, now)
		}
		if ps.stats.Finish < now {
			ps.stats.Finish = now
		}
		return

	case SelectWait:
		if ps.holding >= 0 {
			e.putDown(pi, now)
			return
		}
		e.srcPark(pi, sel)
		ps.waitStart = now
		return
	}

	task := sel.Task

	if ps.holding >= 0 && e.impls[ps.holding].im.Color == task.Color {
		e.paintFast(pi, task, now)
		return
	}

	if ps.holding >= 0 {
		e.srcRequeue(pi, task)
		e.putDown(pi, now)
		return
	}

	e.srcRequeue(pi, task)
	if ii := e.freeImplement(task.Color); ii >= 0 {
		e.grant(pi, ii, now)
		return
	}

	e.queues[task.Color].push(int32(pi))
	ps.waitStart = now
	depth := e.queues[task.Color].len()
	for _, ii := range e.byColor[task.Color] {
		if depth > e.impls[ii].stats.MaxQueue {
			e.impls[ii].stats.MaxQueue = depth
		}
	}
}

// paintFast executes the claimed task — and, when the static plan policy
// allows, the whole contiguous same-color span it starts — under a
// single completion event. Batching is sound only when nothing else in
// the run can observe the intermediate per-cell state: the plan's task
// order is fixed, the processor keeps holding the one implement
// (GreedyHold), every batched cell's layer is already unblocked (layer
// dependencies only ever complete), and no batched layer is a
// prerequisite of any other layer (so no one parks on it or reads its
// remaining count). Per-cell service and breakage draws happen upfront
// in plan order from the processor's own stream — exactly the sequence
// the per-cell path would draw — so timing, statistics, and breakages
// are bit-identical; Result.Events stays comparable via synthEvents.
func (e *Engine) paintFast(pi int, task workplan.Task, now time.Duration) {
	ps := &e.procs[pi]
	im := e.impls[ps.holding].im
	k := 1
	if e.plansrc != nil && e.hold == GreedyHold {
		k = e.plansrc.batchLen(e, pi, task)
	}
	var service, repair time.Duration
	if k == 1 {
		service = ps.proc.ServiceTime(task.Cell, im)
		if ps.proc.Breaks(im) {
			repair = im.Spec.Repair
			e.breaks++
			e.impls[ps.holding].stats.Breakages++
		}
	} else {
		tasks := e.plansrc.plan.PerProc[pi]
		i := e.plansrc.next[pi]
		for j := 0; j < k; j++ {
			t := tasks[i+j]
			service += ps.proc.ServiceTime(t.Cell, im)
			if ps.proc.Breaks(im) {
				repair += im.Spec.Repair
				e.breaks++
				e.impls[ps.holding].stats.Breakages++
			}
		}
	}
	if !ps.painted {
		ps.painted = true
		ps.stats.FirstPaint = now
	}
	ps.stats.PaintTime += service
	ps.stats.Overhead += repair
	ps.curTask = task
	ps.batch = int32(k)
	e.synthEvents += uint64(k - 1)
	e.schedOp(service+repair, opPaintDoneFast, pi)
}

// paintDoneFast applies the completed paint (or batch of paints) of
// processor pi and re-enters its advance loop.
func (e *Engine) paintDoneFast(pi int) {
	ps := &e.procs[pi]
	if s := e.plansrc; s != nil {
		tasks := s.plan.PerProc[pi]
		for j := int32(0); j < ps.batch; j++ {
			task := tasks[s.next[pi]]
			if err := e.grid.Paint(task.Cell, task.Color); err != nil {
				e.err = err
				return
			}
			ps.stats.Cells++
			e.layerRemaining[task.Layer]--
			s.CellDone(e, pi, task)
		}
	} else {
		task := ps.curTask
		if err := e.grid.Paint(task.Cell, task.Color); err != nil {
			e.err = err
			return
		}
		ps.stats.Cells++
		e.layerRemaining[task.Layer]--
		if s := e.bagsrc; s != nil {
			s.CellDone(e, pi, task)
		} else if s := e.stealsrc; s != nil {
			s.CellDone(e, pi, task)
		} else if s := e.plansrc; s != nil {
			s.CellDone(e, pi, task)
		} else {
			e.source.CellDone(e, pi, task)
		}
	}
	if e.hold == EagerRelease && ps.holding >= 0 && e.srcHasMore(pi) {
		e.putDown(pi, e.kernel.Now())
		return
	}
	e.advanceFast(pi)
}

// emitSpan stores the span when tracing and fans it out to probes.
func (e *Engine) emitSpan(sp Span) {
	if e.tracing {
		e.trace = append(e.trace, sp)
	}
	for _, p := range e.probes {
		p.Span(sp)
	}
}
