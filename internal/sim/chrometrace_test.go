package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/workplan"
)

func chromeTracedRun(t *testing.T) *Result {
	t.Helper()
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Plan:  plan,
		Procs: newTeam(t, 4),
		Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChromeTraceWellFormed(t *testing.T) {
	res := chromeTracedRun(t)
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	// 4 thread-name metadata events plus the spans.
	if len(events) < 4+96 {
		t.Fatalf("only %d events", len(events))
	}
	metas, paints, waits := 0, 0, 0
	for _, e := range events {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			name, _ := e["name"].(string)
			if strings.HasPrefix(name, "paint ") {
				paints++
			}
			if strings.HasPrefix(name, "wait ") {
				waits++
			}
			if ts, ok := e["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("bad timestamp in %v", e)
			}
			if dur, ok := e["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("bad duration in %v", e)
			}
			tid, _ := e["tid"].(float64)
			if tid < 1 || tid > 4 {
				t.Fatalf("bad tid in %v", e)
			}
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if metas != 4 {
		t.Fatalf("%d thread metas, want 4", metas)
	}
	if paints != 96 {
		t.Fatalf("%d paint events, want 96", paints)
	}
	if waits == 0 {
		t.Fatal("scenario 4 should emit wait events")
	}
}

func TestChromeTraceRequiresTrace(t *testing.T) {
	res := chromeTracedRun(t)
	res.Trace = nil
	if err := res.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("untraced run should error")
	}
}

func TestTraceDurationAccounting(t *testing.T) {
	res := chromeTracedRun(t)
	paint := res.TraceDuration(SpanPaint)
	var wantPaint int64
	for _, p := range res.Procs {
		wantPaint += int64(p.PaintTime)
	}
	if int64(paint) != wantPaint {
		t.Fatalf("traced paint %v != accounted %v", paint, wantPaint)
	}
	wait := res.TraceDuration(SpanWaitImplement)
	if wait != res.TotalWaitImplement() {
		t.Fatalf("traced wait %v != accounted %v", wait, res.TotalWaitImplement())
	}
}
