package sim

// Cancellation contract of the ctx-taking executors: a canceled context
// stops the engine at the next checkpoint with ErrCanceled, well before
// the workload is done — the property the HTTP service relies on so an
// abandoned request stops burning CPU.

import (
	"context"
	"errors"
	"testing"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/workplan"
)

// bigConfig builds a large static workload (tens of thousands of events)
// so a mid-run cancel has plenty of simulation left to skip.
func bigConfig(t *testing.T) Config {
	t.Helper()
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, 200, 100, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Plan:  plan,
		Procs: newTeam(t, 4),
		Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
	}
}

// cancelAfterProbe cancels the context after n completed cells — a
// deterministic mid-run cancellation point driven by the engine itself.
type cancelAfterProbe struct {
	BaseProbe
	n      int
	cancel context.CancelFunc
	seen   int
}

func (p *cancelAfterProbe) Complete(int, workplan.Task, time.Duration) {
	p.seen++
	if p.seen == p.n {
		p.cancel()
	}
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, bigConfig(t)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ctx: got %v, want ErrCanceled", err)
	}
}

func TestRunCtxCancelMidRunStopsEarly(t *testing.T) {
	cfg := bigConfig(t)
	total := 0
	for _, tasks := range cfg.Plan.PerProc {
		total += len(tasks)
	}
	if total < 10000 {
		t.Fatalf("workload too small to observe early exit: %d cells", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := &cancelAfterProbe{n: 100, cancel: cancel}
	cfg.Probes = []Probe{probe}

	_, err := RunCtx(ctx, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run cancel: got %v, want ErrCanceled", err)
	}
	// The engine may run up to cancelCheckEvery more events past the
	// cancel; each cell costs a handful of events, so a generous bound
	// still proves the run stopped near the cancel point, not at the end.
	if probe.seen > probe.n+cancelCheckEvery {
		t.Fatalf("engine painted %d cells after cancel at %d", probe.seen-probe.n, probe.n)
	}
	if probe.seen >= total/2 {
		t.Fatalf("engine painted %d of %d cells — not an early exit", probe.seen, total)
	}
}

func TestRunStealCtxCancelMidRun(t *testing.T) {
	cfg := bigConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := &cancelAfterProbe{n: 100, cancel: cancel}
	cfg.Probes = []Probe{probe}
	if _, err := RunStealCtx(ctx, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("steal mid-run cancel: got %v, want ErrCanceled", err)
	}
}

func TestRunDynamicCtxCancelMidRun(t *testing.T) {
	f := flagspec.Mauritius
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := &cancelAfterProbe{n: 100, cancel: cancel}
	_, err := RunDynamicCtx(ctx, DynamicConfig{
		Flag: f, W: 200, H: 100,
		Procs:  newTeam(t, 4),
		Set:    implement.NewSet(implement.ThickMarker, f.Colors()),
		Probes: []Probe{probe},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("dynamic mid-run cancel: got %v, want ErrCanceled", err)
	}
}

func TestRunCtxNilAndLiveCtxMatchRun(t *testing.T) {
	cfg := Config{
		Plan:  mauritiusPlan(t, 4),
		Procs: newTeam(t, 4),
		Set:   implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Procs = newTeam(t, 4)
	checked, err := RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != checked.Makespan || plain.Events != checked.Events {
		t.Fatalf("ctx-checked run diverged: %v/%d vs %v/%d",
			plain.Makespan, plain.Events, checked.Makespan, checked.Events)
	}
}
