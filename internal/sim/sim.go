// Package sim executes a workplan on a team of processors sharing a set of
// drawing implements, under a deterministic discrete-event kernel.
//
// The model matches the physical activity:
//
//   - a processor works through its ordered task list;
//   - before painting a cell it must hold an implement of the cell's
//     color; implements are exclusive, and requests queue FIFO per color
//     (students hand a marker to whoever asked first);
//   - acquiring costs pickup time, switching implements costs put-down
//     time, and crayons occasionally break and cost a repair delay;
//   - a cell whose layer has unmet dependencies (the Painter's-algorithm
//     layers of §III-D) blocks until every prerequisite layer is fully
//     painted, team-wide;
//   - a run starts with a serial setup phase (the instructor explaining
//     the scenario and the team organizing) — the Amdahl serial fraction
//     of the activity.
//
// Every run is exactly reproducible: FIFO queues, deterministic event
// tie-breaking, and seeded randomness.
//
// All executors share one engine (see engine.go); they differ only in
// the TaskSource policy that selects each processor's next cell. Run uses
// planSource (a fixed per-processor plan), RunDynamic uses bagSource (a
// shared work bag), and RunSteal uses stealSource (fixed plans plus work
// stealing).
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/geom"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/processor"
	"flagsim/internal/workplan"
)

// ErrCanceled is the sentinel wrapped into the error the ctx-taking
// executors (RunCtx, RunStealCtx, RunDynamicCtx) return when the run's
// context is canceled mid-simulation: the engine stops at the next
// cancellation checkpoint instead of simulating to the end. Test for it
// with errors.Is.
var ErrCanceled = errors.New("sim: run canceled")

// HoldPolicy controls when a processor releases its implement.
type HoldPolicy uint8

const (
	// GreedyHold keeps the implement until a different color is needed —
	// how students actually behave, and the default.
	GreedyHold HoldPolicy = iota
	// EagerRelease puts the implement down after every cell, maximizing
	// availability at the cost of constant pickup overhead. The ablation
	// shows when politeness hurts.
	EagerRelease
)

// String names the policy.
func (h HoldPolicy) String() string {
	switch h {
	case GreedyHold:
		return "greedy-hold"
	case EagerRelease:
		return "eager-release"
	default:
		return fmt.Sprintf("hold-policy(%d)", uint8(h))
	}
}

// SpanKind classifies trace spans for Gantt rendering.
type SpanKind uint8

// Trace span kinds.
const (
	SpanPaint SpanKind = iota
	SpanWaitImplement
	SpanWaitLayer
	SpanPickup
	SpanPutDown
	SpanRepair
	SpanSetup
	// SpanStall is a fault-injected stall window (Config.Faults); the
	// processor does nothing for the span's duration.
	SpanStall
)

// String names the span kind.
func (k SpanKind) String() string {
	switch k {
	case SpanPaint:
		return "paint"
	case SpanWaitImplement:
		return "wait-implement"
	case SpanWaitLayer:
		return "wait-layer"
	case SpanPickup:
		return "pickup"
	case SpanPutDown:
		return "putdown"
	case SpanRepair:
		return "repair"
	case SpanSetup:
		return "setup"
	case SpanStall:
		return "stall"
	default:
		return fmt.Sprintf("span(%d)", uint8(k))
	}
}

// Span is one interval of a processor's timeline.
type Span struct {
	Proc  int
	Kind  SpanKind
	Start time.Duration
	End   time.Duration
	Color palette.Color // for paint/wait/pickup spans
	Cell  geom.Pt       // for paint spans
}

// ProcStats summarizes one processor's run.
type ProcStats struct {
	Name          string
	Cells         int
	Finish        time.Duration
	FirstPaint    time.Duration // pipeline-fill measurement: when the first cell started
	PaintTime     time.Duration // includes movement
	WaitImplement time.Duration
	WaitLayer     time.Duration
	Overhead      time.Duration // pickup + putdown + repair
}

// ImplementStats summarizes one implement's run.
type ImplementStats struct {
	ID        int
	Color     palette.Color
	Kind      implement.Kind
	BusyTime  time.Duration
	Handoffs  int // acquisitions after the first
	MaxQueue  int
	Breakages int
}

// Result is the outcome of a simulation run.
type Result struct {
	Plan       *workplan.Plan
	Makespan   time.Duration
	SetupTime  time.Duration
	Procs      []ProcStats
	Implements []ImplementStats
	Breaks     int
	Grid       *grid.Grid
	Trace      []Span // nil unless Config.Trace
	Events     uint64
	// MaxEventQueue is the kernel's high-water event-queue depth — a
	// capacity-planning counter for large simulations.
	MaxEventQueue int
	// Steals counts work-stealing migrations (RunSteal only).
	Steals int
	// Migrated counts cells painted by a processor other than the one the
	// starting plan assigned (RunSteal only) — the cell-level footprint of
	// the Steals operations, each of which moves a batch of cells.
	Migrated int
	// Faults tallies what the run's fault injector did; the zero value
	// (Injected false) means no injector was installed.
	Faults FaultStats
}

// TotalWaitImplement sums implement-contention wait across processors —
// the paper's contention lesson in one number.
func (r *Result) TotalWaitImplement() time.Duration {
	var t time.Duration
	for _, p := range r.Procs {
		t += p.WaitImplement
	}
	return t
}

// TotalWaitLayer sums dependency-stall time across processors.
func (r *Result) TotalWaitLayer() time.Duration {
	var t time.Duration
	for _, p := range r.Procs {
		t += p.WaitLayer
	}
	return t
}

// PipelineFill returns the latest first-paint time across processors: how
// long it took for work to reach every stage of the pipeline (§III-C:
// "the processors are idle until they get the first implement").
func (r *Result) PipelineFill() time.Duration {
	var fill time.Duration
	for _, p := range r.Procs {
		if p.Cells > 0 && p.FirstPaint > fill {
			fill = p.FirstPaint
		}
	}
	return fill
}

// Verify checks the run's final grid against the flag's reference raster.
func (r *Result) Verify(f *flagspec.Flag) error {
	want, err := grid.Rasterize(f, r.Plan.W, r.Plan.H)
	if err != nil {
		return err
	}
	if !r.Grid.Equal(want) {
		diff, _ := r.Grid.Diff(want)
		return fmt.Errorf("sim: run of %q left %d cells wrong", r.Plan.Strategy, len(diff))
	}
	return nil
}

// Config describes one simulation run.
type Config struct {
	Plan  *workplan.Plan
	Procs []*processor.Processor
	Set   *implement.Set
	// Hold selects the implement retention policy; default GreedyHold.
	Hold HoldPolicy
	// Setup is the serial phase before any processor starts (scenario
	// explanation + team organization). It is the run's inherent serial
	// fraction.
	Setup time.Duration
	// Trace records per-span timelines (memory-proportional to tasks).
	Trace bool
	// Probes observe engine events (grants, releases, blocks, completed
	// cells, spans) without the engine knowing about them.
	Probes []Probe
	// Faults, when non-nil, injects deterministic faults (stalls,
	// degraded cells, forced breakages, delayed handoffs, repaints) into
	// the run; see FaultInjector. nil keeps the unchecked hot path.
	Faults FaultInjector
	// Arena, when non-nil, runs through the caller-owned arena: all
	// per-run state is recycled and the returned Result aliases arena
	// memory valid only until the arena's next run. nil draws scratch
	// from an internal pool and returns an independent Result. See
	// arena.go for the full contract.
	Arena *Arena
}

// planSource is the static scheduling policy: every processor works
// through its fixed ordered task list (scenarios 1–4). Blocked processors
// park per prerequisite layer and wake when that layer completes.
type planSource struct {
	plan *workplan.Plan
	// next[pi] indexes the processor's current task.
	next []int
	// layerWaiters holds processors parked on a layer's completion.
	layerWaiters [][]int
}

// Select implements TaskSource: the next task of pi's plan, a layer wait,
// or done when the plan is exhausted.
func (s *planSource) Select(e *Engine, pi int) Selection {
	tasks := s.plan.PerProc[pi]
	if s.next[pi] == len(tasks) {
		return Selection{Kind: SelectDone}
	}
	task := tasks[s.next[pi]]
	if dep, blocked := e.LayerBlocked(task.Layer); blocked {
		return Selection{Kind: SelectWait, Layer: dep}
	}
	return Selection{Kind: SelectTask, Task: task}
}

// Requeue implements TaskSource. Static plans only consume a task when it
// is painted, so there is nothing to hand back.
func (s *planSource) Requeue(*Engine, int, workplan.Task) {}

// Park implements TaskSource: pi waits on the blocking layer.
func (s *planSource) Park(_ *Engine, pi int, sel Selection) {
	s.layerWaiters[sel.Layer] = append(s.layerWaiters[sel.Layer], pi)
}

// CellDone implements TaskSource: consume the task and wake processors
// parked on the layer once it completes.
func (s *planSource) CellDone(e *Engine, pi int, task workplan.Task) {
	s.next[pi]++
	if e.LayerRemaining(task.Layer) > 0 {
		return
	}
	// Reslice to zero rather than nil so the waiter buffer is reused by
	// the arena. Safe against the wakes below: a completed layer can
	// never block anyone again, so nothing appends to this backing while
	// (or after) we iterate the old header.
	waiters := s.layerWaiters[task.Layer]
	s.layerWaiters[task.Layer] = waiters[:0]
	for _, w := range waiters {
		e.Wake(w)
	}
}

// batchLen reports how many tasks, starting at processor pi's current
// plan position (whose task is first, already selected and color-matched
// to the held implement), may be painted as one fast-path batch. The
// batch extends while tasks keep the same color, their layers are
// unblocked at this instant (dependencies only ever complete, so
// unblocked-now stays unblocked), and no touched layer is a prerequisite
// of another layer — a non-dep layer is never parked on and its
// remaining count is never read across processors, so collapsing its
// per-cell completions into one event is unobservable.
func (s *planSource) batchLen(e *Engine, pi int, first workplan.Task) int {
	if e.layerIsDep[first.Layer] {
		return 1
	}
	tasks := s.plan.PerProc[pi]
	i := s.next[pi]
	k := 1
	for i+k < len(tasks) {
		t := tasks[i+k]
		if t.Color != first.Color || e.layerIsDep[t.Layer] {
			break
		}
		if _, blocked := e.LayerBlocked(t.Layer); blocked {
			break
		}
		k++
	}
	return k
}

// HasMore implements TaskSource.
func (s *planSource) HasMore(_ *Engine, pi int) bool {
	return s.next[pi] < len(s.plan.PerProc[pi])
}

// CheckComplete implements TaskSource.
func (s *planSource) CheckComplete(*Engine) error {
	for i, tasks := range s.plan.PerProc {
		if s.next[i] != len(tasks) {
			return fmt.Errorf("sim: deadlock: processor %d stopped at task %d of %d",
				i, s.next[i], len(tasks))
		}
	}
	return nil
}

// Run executes the configuration to completion and returns the result.
func Run(cfg Config) (*Result, error) { return RunCtx(nil, cfg) }

// RunCtx is Run with a cancellation context: when ctx is canceled the
// engine aborts at the next checkpoint and returns an error wrapping
// ErrCanceled. A nil ctx runs unchecked (identical to Run).
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	a, pooled := acquireArena(cfg.Arena)
	if pooled {
		defer arenaPool.Put(a)
	}
	if err := a.validateStatic(&cfg); err != nil {
		return nil, err
	}
	e := a.bind(engineConfig{
		ctx:            ctx,
		source:         a.planSourceFor(cfg.Plan),
		procs:          cfg.Procs,
		set:            cfg.Set,
		hold:           cfg.Hold,
		setup:          cfg.Setup,
		trace:          cfg.Trace,
		probes:         cfg.Probes,
		faults:         cfg.Faults,
		w:              cfg.Plan.W,
		h:              cfg.Plan.H,
		layerDeps:      cfg.Plan.LayerDeps,
		layerCellCount: cfg.Plan.LayerCellCount,
	})
	makespan, err := e.run()
	if err != nil {
		return nil, err
	}
	res := a.buildResult(e, cfg.Plan, makespan)
	e.notifyResult(res)
	return res, nil
}
