// Package sim executes a workplan on a team of processors sharing a set of
// drawing implements, under a deterministic discrete-event kernel.
//
// The model matches the physical activity:
//
//   - a processor works through its ordered task list;
//   - before painting a cell it must hold an implement of the cell's
//     color; implements are exclusive, and requests queue FIFO per color
//     (students hand a marker to whoever asked first);
//   - acquiring costs pickup time, switching implements costs put-down
//     time, and crayons occasionally break and cost a repair delay;
//   - a cell whose layer has unmet dependencies (the Painter's-algorithm
//     layers of §III-D) blocks until every prerequisite layer is fully
//     painted, team-wide;
//   - a run starts with a serial setup phase (the instructor explaining
//     the scenario and the team organizing) — the Amdahl serial fraction
//     of the activity.
//
// Every run is exactly reproducible: FIFO queues, deterministic event
// tie-breaking, and seeded randomness.
package sim

import (
	"fmt"
	"time"

	"flagsim/internal/devent"
	"flagsim/internal/flagspec"
	"flagsim/internal/geom"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/processor"
	"flagsim/internal/workplan"
)

// HoldPolicy controls when a processor releases its implement.
type HoldPolicy uint8

const (
	// GreedyHold keeps the implement until a different color is needed —
	// how students actually behave, and the default.
	GreedyHold HoldPolicy = iota
	// EagerRelease puts the implement down after every cell, maximizing
	// availability at the cost of constant pickup overhead. The ablation
	// shows when politeness hurts.
	EagerRelease
)

// String names the policy.
func (h HoldPolicy) String() string {
	switch h {
	case GreedyHold:
		return "greedy-hold"
	case EagerRelease:
		return "eager-release"
	default:
		return fmt.Sprintf("hold-policy(%d)", uint8(h))
	}
}

// SpanKind classifies trace spans for Gantt rendering.
type SpanKind uint8

// Trace span kinds.
const (
	SpanPaint SpanKind = iota
	SpanWaitImplement
	SpanWaitLayer
	SpanPickup
	SpanPutDown
	SpanRepair
	SpanSetup
)

// String names the span kind.
func (k SpanKind) String() string {
	switch k {
	case SpanPaint:
		return "paint"
	case SpanWaitImplement:
		return "wait-implement"
	case SpanWaitLayer:
		return "wait-layer"
	case SpanPickup:
		return "pickup"
	case SpanPutDown:
		return "putdown"
	case SpanRepair:
		return "repair"
	case SpanSetup:
		return "setup"
	default:
		return fmt.Sprintf("span(%d)", uint8(k))
	}
}

// Span is one interval of a processor's timeline.
type Span struct {
	Proc  int
	Kind  SpanKind
	Start time.Duration
	End   time.Duration
	Color palette.Color // for paint/wait/pickup spans
	Cell  geom.Pt       // for paint spans
}

// ProcStats summarizes one processor's run.
type ProcStats struct {
	Name          string
	Cells         int
	Finish        time.Duration
	FirstPaint    time.Duration // pipeline-fill measurement: when the first cell started
	PaintTime     time.Duration // includes movement
	WaitImplement time.Duration
	WaitLayer     time.Duration
	Overhead      time.Duration // pickup + putdown + repair
}

// ImplementStats summarizes one implement's run.
type ImplementStats struct {
	ID        int
	Color     palette.Color
	Kind      implement.Kind
	BusyTime  time.Duration
	Handoffs  int // acquisitions after the first
	MaxQueue  int
	Breakages int
}

// Result is the outcome of a simulation run.
type Result struct {
	Plan       *workplan.Plan
	Makespan   time.Duration
	SetupTime  time.Duration
	Procs      []ProcStats
	Implements []ImplementStats
	Breaks     int
	Grid       *grid.Grid
	Trace      []Span // nil unless Config.Trace
	Events     uint64
}

// TotalWaitImplement sums implement-contention wait across processors —
// the paper's contention lesson in one number.
func (r *Result) TotalWaitImplement() time.Duration {
	var t time.Duration
	for _, p := range r.Procs {
		t += p.WaitImplement
	}
	return t
}

// TotalWaitLayer sums dependency-stall time across processors.
func (r *Result) TotalWaitLayer() time.Duration {
	var t time.Duration
	for _, p := range r.Procs {
		t += p.WaitLayer
	}
	return t
}

// PipelineFill returns the latest first-paint time across processors: how
// long it took for work to reach every stage of the pipeline (§III-C:
// "the processors are idle until they get the first implement").
func (r *Result) PipelineFill() time.Duration {
	var fill time.Duration
	for _, p := range r.Procs {
		if p.Cells > 0 && p.FirstPaint > fill {
			fill = p.FirstPaint
		}
	}
	return fill
}

// Verify checks the run's final grid against the flag's reference raster.
func (r *Result) Verify(f *flagspec.Flag) error {
	want, err := grid.Rasterize(f, r.Plan.W, r.Plan.H)
	if err != nil {
		return err
	}
	if !r.Grid.Equal(want) {
		diff, _ := r.Grid.Diff(want)
		return fmt.Errorf("sim: run of %q left %d cells wrong", r.Plan.Strategy, len(diff))
	}
	return nil
}

// Config describes one simulation run.
type Config struct {
	Plan  *workplan.Plan
	Procs []*processor.Processor
	Set   *implement.Set
	// Hold selects the implement retention policy; default GreedyHold.
	Hold HoldPolicy
	// Setup is the serial phase before any processor starts (scenario
	// explanation + team organization). It is the run's inherent serial
	// fraction.
	Setup time.Duration
	// Trace records per-span timelines (memory-proportional to tasks).
	Trace bool
}

// validate rejects inconsistent configurations up front so the event loop
// never deadlocks on impossible inputs.
func (c *Config) validate() error {
	if c.Plan == nil {
		return fmt.Errorf("sim: nil plan")
	}
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if len(c.Procs) != c.Plan.NumProcs() {
		return fmt.Errorf("sim: plan wants %d processors, got %d", c.Plan.NumProcs(), len(c.Procs))
	}
	if c.Set == nil {
		return fmt.Errorf("sim: nil implement set")
	}
	need := make(map[palette.Color]bool)
	for _, tasks := range c.Plan.PerProc {
		for _, t := range tasks {
			need[t.Color] = true
		}
	}
	var colors []palette.Color
	for _, cl := range palette.All() {
		if need[cl] {
			colors = append(colors, cl)
		}
	}
	if err := c.Set.Covers(colors); err != nil {
		return err
	}
	if c.Setup < 0 {
		return fmt.Errorf("sim: negative setup time")
	}
	return nil
}

// procState is the runtime state machine of one processor.
type procState struct {
	proc    *processor.Processor
	tasks   []workplan.Task
	next    int
	holding *implement.Implement
	stats   ProcStats
	// waitStart marks when the current wait began, for accounting.
	waitStart time.Duration
	painted   bool // has painted at least one cell
}

// implState is the runtime state of one physical implement.
type implState struct {
	im     *implement.Implement
	holder int // processor index, or -1
	stats  ImplementStats
	// busySince marks acquisition time while held.
	busySince time.Duration
	acquired  int
}

// runState is the full simulation state.
type runState struct {
	cfg    *Config
	kernel *devent.Kernel
	grid   *grid.Grid
	procs  []*procState
	impls  []*implState
	// byColor indexes implement states per color.
	byColor map[palette.Color][]*implState
	// queues holds FIFO waiters per color.
	queues map[palette.Color][]int
	// layerRemaining counts unpainted cells per layer; layerWaiters holds
	// processors parked on a layer's completion.
	layerRemaining []int
	layerWaiters   [][]int
	trace          []Span
	breaks         int
	err            error
}

// Run executes the configuration to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := &runState{
		cfg:     &cfg,
		kernel:  devent.New(),
		grid:    grid.New(cfg.Plan.W, cfg.Plan.H),
		byColor: make(map[palette.Color][]*implState),
		queues:  make(map[palette.Color][]int),
	}
	for i, pr := range cfg.Procs {
		pr.ResetRun()
		st.procs = append(st.procs, &procState{
			proc:  pr,
			tasks: cfg.Plan.PerProc[i],
			stats: ProcStats{Name: pr.Name},
		})
	}
	for _, im := range cfg.Set.All() {
		is := &implState{im: im, holder: -1,
			stats: ImplementStats{ID: im.ID, Color: im.Color, Kind: im.Kind}}
		st.impls = append(st.impls, is)
		st.byColor[im.Color] = append(st.byColor[im.Color], is)
	}
	st.layerRemaining = make([]int, len(cfg.Plan.LayerCellCount))
	copy(st.layerRemaining, cfg.Plan.LayerCellCount)
	st.layerWaiters = make([][]int, len(cfg.Plan.LayerCellCount))

	// Serial setup phase, then all processors start simultaneously — the
	// paper's "starting all the teams coloring simultaneously".
	if cfg.Trace && cfg.Setup > 0 {
		for i := range st.procs {
			st.trace = append(st.trace, Span{Proc: i, Kind: SpanSetup, Start: 0, End: cfg.Setup})
		}
	}
	for i := range st.procs {
		i := i
		if err := st.kernel.Schedule(cfg.Setup, func() { st.advance(i) }); err != nil {
			return nil, err
		}
	}
	makespan := st.kernel.Run()
	if st.err != nil {
		return nil, st.err
	}
	for i, ps := range st.procs {
		if ps.next != len(ps.tasks) {
			return nil, fmt.Errorf("sim: deadlock: processor %d stopped at task %d of %d",
				i, ps.next, len(ps.tasks))
		}
	}

	res := &Result{
		Plan:      cfg.Plan,
		Makespan:  makespan,
		SetupTime: cfg.Setup,
		Grid:      st.grid,
		Breaks:    st.breaks,
		Trace:     st.trace,
		Events:    st.kernel.Processed(),
	}
	for _, ps := range st.procs {
		res.Procs = append(res.Procs, ps.stats)
	}
	for _, is := range st.impls {
		res.Implements = append(res.Implements, is.stats)
	}
	return res, nil
}

// advance drives processor pi as far as it can go at the current virtual
// time, parking it on a queue or scheduling a completion event.
func (st *runState) advance(pi int) {
	if st.err != nil {
		return
	}
	ps := st.procs[pi]
	now := st.kernel.Now()

	for {
		if ps.next == len(ps.tasks) {
			// Done: release anything held so teammates can proceed.
			if ps.holding != nil {
				st.release(pi, now)
			}
			if ps.stats.Finish < now {
				ps.stats.Finish = now
			}
			return
		}
		task := ps.tasks[ps.next]

		// Layer dependencies: before parking, put down anything held so a
		// teammate can use it (a student waiting for the background to
		// finish does not hoard the red marker); then park on the first
		// incomplete prerequisite.
		if dep, blocked := st.blockedOnLayer(task.Layer); blocked {
			if ps.holding != nil {
				st.putDownAndContinue(pi, now)
				return
			}
			st.layerWaiters[dep] = append(st.layerWaiters[dep], pi)
			ps.waitStart = now
			return
		}

		// Implement in hand of the right color: paint.
		if ps.holding != nil && ps.holding.Color == task.Color {
			st.paint(pi, task, now)
			return
		}

		// Wrong implement in hand: put it down first (busy during
		// put-down, then re-advance).
		if ps.holding != nil {
			st.putDownAndContinue(pi, now)
			return
		}

		// Need to acquire an implement of task.Color.
		if is := st.freeImplement(task.Color); is != nil {
			st.grant(pi, is, st.kernel.Now())
			return
		}

		// All implements of that color are busy: join the FIFO queue.
		st.queues[task.Color] = append(st.queues[task.Color], pi)
		ps.waitStart = now
		depth := len(st.queues[task.Color])
		for _, is := range st.byColor[task.Color] {
			if depth > is.stats.MaxQueue {
				is.stats.MaxQueue = depth
			}
		}
		return
	}
}

// putDownAndContinue spends the put-down time, releases the held
// implement, and re-enters the processor's advance loop.
func (st *runState) putDownAndContinue(pi int, now time.Duration) {
	ps := st.procs[pi]
	putDown := ps.holding.Spec.PutDown
	if st.cfg.Trace && putDown > 0 {
		st.trace = append(st.trace, Span{Proc: pi, Kind: SpanPutDown,
			Start: now, End: now + putDown, Color: ps.holding.Color})
	}
	ps.stats.Overhead += putDown
	st.scheduleAfter(putDown, func() {
		st.release(pi, st.kernel.Now())
		st.advance(pi)
	})
}

// blockedOnLayer reports the first incomplete prerequisite layer of l.
func (st *runState) blockedOnLayer(l int) (dep int, blocked bool) {
	for _, d := range st.cfg.Plan.LayerDeps[l] {
		if st.layerRemaining[d] > 0 {
			return d, true
		}
	}
	return 0, false
}

// freeImplement returns a free implement of color c (lowest ID first for
// determinism), or nil.
func (st *runState) freeImplement(c palette.Color) *implState {
	for _, is := range st.byColor[c] {
		if is.holder == -1 {
			return is
		}
	}
	return nil
}

// grant reserves implement is for processor pi and schedules the pickup.
func (st *runState) grant(pi int, is *implState, now time.Duration) {
	ps := st.procs[pi]
	is.holder = pi
	is.busySince = now
	is.acquired++
	if is.acquired > 1 {
		is.stats.Handoffs++
	}
	pickup := is.im.Spec.Pickup
	if st.cfg.Trace && pickup > 0 {
		st.trace = append(st.trace, Span{Proc: pi, Kind: SpanPickup,
			Start: now, End: now + pickup, Color: is.im.Color})
	}
	ps.stats.Overhead += pickup
	ps.holding = is.im
	st.scheduleAfter(pickup, func() { st.advance(pi) })
}

// release frees processor pi's implement at time now and hands it to the
// first queued waiter, if any.
func (st *runState) release(pi int, now time.Duration) {
	ps := st.procs[pi]
	is := st.implStateOf(ps.holding)
	ps.holding = nil
	is.holder = -1
	is.stats.BusyTime += now - is.busySince

	c := is.im.Color
	q := st.queues[c]
	if len(q) == 0 {
		return
	}
	next := q[0]
	st.queues[c] = q[1:]
	waiter := st.procs[next]
	waiter.stats.WaitImplement += now - waiter.waitStart
	if st.cfg.Trace && now > waiter.waitStart {
		st.trace = append(st.trace, Span{Proc: next, Kind: SpanWaitImplement,
			Start: waiter.waitStart, End: now, Color: c})
	}
	st.grant(next, is, now)
}

func (st *runState) implStateOf(im *implement.Implement) *implState {
	for _, is := range st.byColor[im.Color] {
		if is.im == im {
			return is
		}
	}
	panic("sim: implement not in set")
}

// paint executes the current task for processor pi, scheduling completion.
func (st *runState) paint(pi int, task workplan.Task, now time.Duration) {
	ps := st.procs[pi]
	service := ps.proc.ServiceTime(task.Cell, ps.holding)
	var repair time.Duration
	if ps.proc.Breaks(ps.holding) {
		repair = ps.holding.Spec.Repair
		st.breaks++
		st.implStateOf(ps.holding).stats.Breakages++
		if st.cfg.Trace && repair > 0 {
			st.trace = append(st.trace, Span{Proc: pi, Kind: SpanRepair,
				Start: now + service, End: now + service + repair, Color: task.Color})
		}
	}
	if st.cfg.Trace {
		st.trace = append(st.trace, Span{Proc: pi, Kind: SpanPaint,
			Start: now, End: now + service, Color: task.Color, Cell: task.Cell})
	}
	if !ps.painted {
		ps.painted = true
		ps.stats.FirstPaint = now
	}
	ps.stats.PaintTime += service
	ps.stats.Overhead += repair
	st.scheduleAfter(service+repair, func() {
		if err := st.grid.Paint(task.Cell, task.Color); err != nil {
			st.err = err
			return
		}
		ps.stats.Cells++
		ps.next++
		st.completeLayerCell(task.Layer)
		// EagerRelease puts the implement down after every cell even if
		// the next cell wants the same color.
		if st.cfg.Hold == EagerRelease && ps.holding != nil && ps.next < len(ps.tasks) {
			st.putDownAndContinue(pi, st.kernel.Now())
			return
		}
		st.advance(pi)
	})
}

// completeLayerCell decrements a layer counter and wakes parked
// processors when the layer finishes.
func (st *runState) completeLayerCell(layer int) {
	st.layerRemaining[layer]--
	if st.layerRemaining[layer] > 0 {
		return
	}
	waiters := st.layerWaiters[layer]
	st.layerWaiters[layer] = nil
	now := st.kernel.Now()
	for _, pi := range waiters {
		ps := st.procs[pi]
		ps.stats.WaitLayer += now - ps.waitStart
		if st.cfg.Trace && now > ps.waitStart {
			st.trace = append(st.trace, Span{Proc: pi, Kind: SpanWaitLayer,
				Start: ps.waitStart, End: now})
		}
		pi := pi
		st.scheduleAfter(0, func() { st.advance(pi) })
	}
}

func (st *runState) scheduleAfter(d time.Duration, fn func()) {
	if err := st.kernel.Schedule(d, fn); err != nil && st.err == nil {
		st.err = err
	}
}
