package sim

// Property-based tests over the simulator's core invariants, exercised
// with randomized workloads via testing/quick:
//
//	1. Correctness: every run reproduces the flag's reference raster.
//	2. Work conservation: traced paint time equals accounted paint time,
//	   and the number of painted cells equals the plan's task count.
//	3. Time sanity: makespan >= the largest single-processor paint time
//	   share and >= setup; per-processor finish <= makespan.
//	4. Determinism: identical configs give identical results.

import (
	"testing"
	"testing/quick"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/processor"
	"flagsim/internal/rng"
	"flagsim/internal/workplan"
)

// randomPlan builds one of the decompositions from fuzz inputs.
func randomPlan(f *flagspec.Flag, strat, pRaw uint8) (*workplan.Plan, error) {
	w, h := f.DefaultW, f.DefaultH
	p := int(pRaw%4) + 1
	switch strat % 5 {
	case 0:
		return workplan.Sequential(f, w, h)
	case 1:
		if p > len(f.Layers) {
			p = len(f.Layers)
		}
		return workplan.LayerBlocks(f, w, h, p)
	case 2:
		return workplan.VerticalSlices(f, w, h, p, false)
	case 3:
		return workplan.Cyclic(f, w, h, p)
	default:
		return workplan.Blocks(f, w, h, p, p, 2)
	}
}

func fuzzTeam(n int, seed uint64, jitter float64) ([]*processor.Processor, error) {
	profile := processor.DefaultProfile("P")
	profile.JitterSigma = jitter
	return processor.Team(n, profile, rng.New(seed))
}

func TestSimPropertyCorrectAndConserving(t *testing.T) {
	flags := flagspec.All()
	check := func(fi, strat, pRaw, kindRaw uint8, seed uint64) bool {
		f := flags[int(fi)%len(flags)]
		plan, err := randomPlan(f, strat, pRaw)
		if err != nil {
			return false
		}
		team, err := fuzzTeam(plan.NumProcs(), seed, 0.1)
		if err != nil {
			return false
		}
		kind := implement.Kinds()[int(kindRaw)%4]
		res, err := Run(Config{
			Plan:  plan,
			Procs: team,
			Set:   implement.NewSet(kind, f.Colors()),
			Trace: true,
		})
		if err != nil {
			return false
		}
		// 1. Correctness.
		if res.Verify(f) != nil {
			return false
		}
		// 2. Work conservation.
		cells := 0
		var paintAccounted time.Duration
		for _, p := range res.Procs {
			cells += p.Cells
			paintAccounted += p.PaintTime
		}
		if cells != plan.TotalTasks() {
			return false
		}
		if res.TraceDuration(SpanPaint) != paintAccounted {
			return false
		}
		// 3. Time sanity.
		if res.Makespan < res.SetupTime {
			return false
		}
		for _, p := range res.Procs {
			if p.Finish > res.Makespan {
				return false
			}
			if p.PaintTime > res.Makespan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSimPropertyDeterminism(t *testing.T) {
	flags := flagspec.All()
	check := func(fi, strat, pRaw uint8, seed uint64) bool {
		f := flags[int(fi)%len(flags)]
		plan, err := randomPlan(f, strat, pRaw)
		if err != nil {
			return false
		}
		run := func() *Result {
			team, err := fuzzTeam(plan.NumProcs(), seed, 0.2)
			if err != nil {
				return nil
			}
			res, err := Run(Config{
				Plan: plan, Procs: team,
				Set: implement.NewSet(implement.ThickMarker, f.Colors()),
			})
			if err != nil {
				return nil
			}
			return res
		}
		a, b := run(), run()
		if a == nil || b == nil {
			return false
		}
		return a.Makespan == b.Makespan &&
			a.Events == b.Events &&
			a.TotalWaitImplement() == b.TotalWaitImplement() &&
			a.TotalWaitLayer() == b.TotalWaitLayer()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicPropertyCorrectness(t *testing.T) {
	flags := flagspec.All()
	check := func(fi, pRaw, policyRaw uint8, seed uint64, extra bool) bool {
		f := flags[int(fi)%len(flags)]
		p := int(pRaw%4) + 1
		team, err := fuzzTeam(p, seed, 0.15)
		if err != nil {
			return false
		}
		n := 1
		if extra {
			n = 2
		}
		res, err := RunDynamic(DynamicConfig{
			Flag:   f,
			Procs:  team,
			Set:    implement.NewSetN(implement.ThickMarker, f.Colors(), n),
			Policy: PullPolicy(policyRaw % 2),
		})
		if err != nil {
			return false
		}
		if res.Verify(f) != nil {
			return false
		}
		cells := 0
		for _, ps := range res.Procs {
			cells += ps.Cells
		}
		return cells == res.Plan.TotalTasks()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimPropertyMakespanLowerBound(t *testing.T) {
	// Makespan can never beat total-work / p for warmup-free unit
	// workers with zero overheads (no movement, free implements).
	check := func(pRaw uint8) bool {
		f := flagspec.Mauritius
		p := int(pRaw%8) + 1
		profile := processor.DefaultProfile("P")
		profile.WarmupPenalty = 0
		profile.MovePerCell = 0
		team, err := processor.Team(p, profile, rng.New(1))
		if err != nil {
			return false
		}
		plan, err := workplan.Cyclic(f, f.DefaultW, f.DefaultH, p)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			Plan: plan, Procs: team,
			Set: implement.NewSetN(implement.ThickMarker, f.Colors(), p),
		})
		if err != nil {
			return false
		}
		lower := time.Duration(96/p) * time.Second
		return res.Makespan >= lower
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
