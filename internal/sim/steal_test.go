package sim

import (
	"testing"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/workplan"
)

func runSteal(t *testing.T, f *flagspec.Flag, skills ...float64) *Result {
	t.Helper()
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, len(skills), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSteal(Config{
		Plan:  plan,
		Procs: dynTeam(t, skills...),
		Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStealPaintsCorrectFlag(t *testing.T) {
	for _, f := range []*flagspec.Flag{flagspec.Mauritius, flagspec.GreatBritain} {
		res := runSteal(t, f, 1.4, 1.0, 1.0, 0.5)
		if err := res.Verify(f); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
		total := 0
		for _, p := range res.Procs {
			total += p.Cells
		}
		want := 0
		for _, n := range res.Plan.LayerCellCount {
			want += n
		}
		if total != want {
			t.Errorf("%s: painted %d cells, want %d", f.Name, total, want)
		}
	}
}

func TestStealBeatsStaticUnderSkewedSkills(t *testing.T) {
	// The acceptance experiment: with one slow student, an equal-slice
	// static plan leaves the fast students idle while the slow one drags;
	// work stealing lets them drain the slow slice.
	f := flagspec.Mauritius
	skills := []float64{1.4, 1.0, 1.0, 0.5}
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, len(skills), false)
	if err != nil {
		t.Fatal(err)
	}
	set := func() *implement.Set { return implement.NewSet(implement.ThickMarker, f.Colors()) }

	static, err := Run(Config{Plan: plan, Procs: dynTeam(t, skills...), Set: set()})
	if err != nil {
		t.Fatal(err)
	}
	steal, err := RunSteal(Config{Plan: plan, Procs: dynTeam(t, skills...), Set: set()})
	if err != nil {
		t.Fatal(err)
	}
	if steal.Steals == 0 {
		t.Fatal("skewed run recorded no steals")
	}
	if steal.Makespan >= static.Makespan {
		t.Errorf("steal makespan %v, static %v: stealing should beat the static plan",
			steal.Makespan, static.Makespan)
	}
}

func TestStealDeterministic(t *testing.T) {
	a := runSteal(t, flagspec.Mauritius, 1.4, 1.0, 0.5)
	b := runSteal(t, flagspec.Mauritius, 1.4, 1.0, 0.5)
	if a.Makespan != b.Makespan || a.Events != b.Events || a.Steals != b.Steals {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)",
			a.Makespan, a.Events, a.Steals, b.Makespan, b.Events, b.Steals)
	}
	for i := range a.Procs {
		if a.Procs[i] != b.Procs[i] {
			t.Fatalf("proc %d stats diverge", i)
		}
	}
}

func TestStealBalancedPlanStealsLittle(t *testing.T) {
	// Uniform skills on an even split: stealing should be a no-op (or
	// nearly so) and must not be slower than the plain static run.
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	set := func() *implement.Set { return implement.NewSet(implement.ThickMarker, f.Colors()) }
	static, err := Run(Config{Plan: plan, Procs: newTeam(t, 4), Set: set()})
	if err != nil {
		t.Fatal(err)
	}
	steal, err := RunSteal(Config{Plan: plan, Procs: newTeam(t, 4), Set: set()})
	if err != nil {
		t.Fatal(err)
	}
	if steal.Makespan > static.Makespan {
		t.Errorf("steal makespan %v exceeds static %v on a balanced plan",
			steal.Makespan, static.Makespan)
	}
}

func TestStealResultPlanRecordsExecutedAssignment(t *testing.T) {
	res := runSteal(t, flagspec.Mauritius, 1.4, 1.0, 1.0, 0.5)
	for i, p := range res.Procs {
		if p.Cells != len(res.Plan.PerProc[i]) {
			t.Errorf("proc %d: stats say %d cells, plan records %d",
				i, p.Cells, len(res.Plan.PerProc[i]))
		}
	}
	if res.Plan.Strategy != "vertical-slices(p=4)+steal" {
		t.Errorf("strategy %q", res.Plan.Strategy)
	}
}

func TestStealRespectsLayerDependencies(t *testing.T) {
	// Great Britain has overpainted layers; a stolen cross cell must still
	// wait for the ground layer. Tracing + Verify covers ordering; also
	// check paint spans never start before setup.
	f := flagspec.GreatBritain
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSteal(Config{
		Plan:  plan,
		Procs: dynTeam(t, 1.5, 1.0, 0.4),
		Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
		Setup: 5 * time.Second,
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(f); err != nil {
		t.Fatal(err)
	}
	for _, sp := range res.Trace {
		if sp.Kind == SpanPaint && sp.Start < 5*time.Second {
			t.Fatalf("paint span before setup ended: %+v", sp)
		}
	}
}
