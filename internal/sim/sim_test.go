package sim

import (
	"testing"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/processor"
	"flagsim/internal/rng"
	"flagsim/internal/workplan"
)

// newTeam builds n deterministic, warmup-free students for timing tests.
func newTeam(t *testing.T, n int) []*processor.Processor {
	t.Helper()
	profile := processor.DefaultProfile("P")
	profile.WarmupPenalty = 0
	profile.MovePerCell = 0
	team, err := processor.Team(n, profile, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return team
}

// newWarmTeam builds students with the default warmup model.
func newWarmTeam(t *testing.T, n int) []*processor.Processor {
	t.Helper()
	team, err := processor.Team(n, processor.DefaultProfile("P"), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return team
}

func mauritiusPlan(t *testing.T, scenario int) *workplan.Plan {
	t.Helper()
	f := flagspec.Mauritius
	var plan *workplan.Plan
	var err error
	switch scenario {
	case 1:
		plan, err = workplan.Sequential(f, f.DefaultW, f.DefaultH)
	case 2:
		plan, err = workplan.LayerBlocks(f, f.DefaultW, f.DefaultH, 2)
	case 3:
		plan, err = workplan.LayerBlocks(f, f.DefaultW, f.DefaultH, 4)
	case 4:
		plan, err = workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	case 5:
		plan, err = workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, true)
	default:
		t.Fatalf("unknown scenario %d", scenario)
	}
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func runScenario(t *testing.T, scenario int, team []*processor.Processor) *Result {
	t.Helper()
	plan := mauritiusPlan(t, scenario)
	res, err := Run(Config{
		Plan:  plan,
		Procs: team,
		Set:   implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(flagspec.Mauritius); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScenario1PaintsFlagCorrectly(t *testing.T) {
	res := runScenario(t, 1, newTeam(t, 1))
	want, err := grid.RasterizeDefault(flagspec.Mauritius)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Grid.Equal(want) {
		t.Fatalf("grid mismatch:\n%s\nwant:\n%s", res.Grid, want)
	}
	if res.Procs[0].Cells != 96 {
		t.Fatalf("cells = %d, want 96", res.Procs[0].Cells)
	}
}

func TestScenario1DeterministicMakespan(t *testing.T) {
	// Warmup-free, jitter-free single worker: 96 cells at 1s, one initial
	// pickup (500ms), and three color switches (400ms put-down + 500ms
	// pickup each) between the four stripes.
	res := runScenario(t, 1, newTeam(t, 1))
	want := 96*time.Second + 500*time.Millisecond + 3*(400+500)*time.Millisecond
	if res.Makespan != want {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestTimesDecreaseScenario1Through3(t *testing.T) {
	t1 := runScenario(t, 1, newTeam(t, 1)).Makespan
	t2 := runScenario(t, 2, newTeam(t, 2)).Makespan
	t3 := runScenario(t, 3, newTeam(t, 4)).Makespan
	if !(t1 > t2 && t2 > t3) {
		t.Fatalf("times should decrease: t1=%v t2=%v t3=%v", t1, t2, t3)
	}
	// With disjoint stripes, two and four workers should be near-linear.
	if s := float64(t1) / float64(t2); s < 1.8 || s > 2.2 {
		t.Fatalf("scenario-2 speedup %v not near 2", s)
	}
	if s := float64(t1) / float64(t3); s < 3.5 || s > 4.5 {
		t.Fatalf("scenario-3 speedup %v not near 4", s)
	}
}

func TestScenario4SlowerThanScenario3(t *testing.T) {
	t3 := runScenario(t, 3, newTeam(t, 4)).Makespan
	res4 := runScenario(t, 4, newTeam(t, 4))
	if res4.Makespan <= t3 {
		t.Fatalf("scenario 4 (%v) should be slower than scenario 3 (%v)", res4.Makespan, t3)
	}
	if res4.TotalWaitImplement() == 0 {
		t.Fatal("scenario 4 should show implement contention")
	}
}

func TestPipelinedScenario4BeatsNaive(t *testing.T) {
	naive := runScenario(t, 4, newTeam(t, 4))
	piped := runScenario(t, 5, newTeam(t, 4))
	if piped.Makespan >= naive.Makespan {
		t.Fatalf("pipelined (%v) should beat naive (%v)", piped.Makespan, naive.Makespan)
	}
	// Rotation assigns distinct starting colors, so nobody waits.
	if w := piped.TotalWaitImplement(); w != 0 {
		t.Fatalf("pipelined run should have zero contention, got %v", w)
	}
	// Naive order funnels everyone through the first stripe: the last
	// processor's first paint is late (pipeline fill).
	if naive.PipelineFill() <= piped.PipelineFill() {
		t.Fatalf("naive fill (%v) should exceed pipelined fill (%v)",
			naive.PipelineFill(), piped.PipelineFill())
	}
}

func TestWarmupMakesRepeatRunFaster(t *testing.T) {
	team := newWarmTeam(t, 1)
	first := runScenario(t, 1, team)
	second := runScenario(t, 1, team)
	if second.Makespan >= first.Makespan {
		t.Fatalf("repeat run (%v) should be faster than first (%v)", second.Makespan, first.Makespan)
	}
	improvement := 1 - float64(second.Makespan)/float64(first.Makespan)
	if improvement < 0.02 || improvement > 0.5 {
		t.Fatalf("improvement %.1f%% outside plausible range", improvement*100)
	}
}

func TestImplementKindsOrderTimes(t *testing.T) {
	var prev time.Duration
	for i, kind := range implement.Kinds() {
		team := newTeam(t, 1)
		plan := mauritiusPlan(t, 1)
		res, err := Run(Config{
			Plan:  plan,
			Procs: team,
			Set:   implement.NewSet(kind, flagspec.Mauritius.Colors()),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Makespan <= prev {
			t.Fatalf("%v (%v) should be slower than previous kind (%v)", kind, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

func TestExtraImplementsRemoveContention(t *testing.T) {
	plan := mauritiusPlan(t, 4)
	base, err := Run(Config{
		Plan:  plan,
		Procs: newTeam(t, 4),
		Set:   implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
	})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := Run(Config{
		Plan:  plan,
		Procs: newTeam(t, 4),
		Set:   implement.NewSetN(implement.ThickMarker, flagspec.Mauritius.Colors(), 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if extra.TotalWaitImplement() != 0 {
		t.Fatalf("4 implements per color should eliminate waiting, got %v", extra.TotalWaitImplement())
	}
	if extra.Makespan >= base.Makespan {
		t.Fatalf("extra implements (%v) should beat one-per-color (%v)", extra.Makespan, base.Makespan)
	}
}

func TestSetupDelaysEveryone(t *testing.T) {
	plan := mauritiusPlan(t, 1)
	setup := 30 * time.Second
	withSetup, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 1),
		Set:   implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
		Setup: setup,
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 1),
		Set: implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if withSetup.Makespan != without.Makespan+setup {
		t.Fatalf("setup should add exactly %v: %v vs %v", setup, withSetup.Makespan, without.Makespan)
	}
}

func TestLayeredFlagRespectsDependencies(t *testing.T) {
	f := flagspec.GreatBritain
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 4),
		Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(f); err != nil {
		t.Fatal(err)
	}
	if res.TotalWaitLayer() == 0 {
		t.Fatal("layered flag sliced across workers should stall on layer dependencies")
	}
	// In the trace, no saltire cell may start before the last blue-field
	// cell finishes.
	var blueFieldEnd time.Duration
	for _, sp := range res.Trace {
		if sp.Kind == SpanPaint && sp.Color == f.Layers[0].Color && sp.End > blueFieldEnd {
			// blue-field is the only blue layer on this flag.
			blueFieldEnd = sp.End
		}
	}
	for _, sp := range res.Trace {
		if sp.Kind == SpanPaint && sp.Color == f.Layers[1].Color && sp.Start < blueFieldEnd {
			// white paint (saltire or cross) must wait for the field...
			// except white cells are only in later layers, so any white
			// paint before the field completes is a dependency violation.
			t.Fatalf("white layer cell painted at %v before blue field completed at %v", sp.Start, blueFieldEnd)
		}
	}
}

func TestEagerReleasePolicySlowerOnSequential(t *testing.T) {
	plan := mauritiusPlan(t, 1)
	greedy, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 1),
		Set: implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
	})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 1),
		Set:  implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
		Hold: EagerRelease,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Makespan <= greedy.Makespan {
		t.Fatalf("eager release (%v) should cost more than greedy hold (%v) with no contention",
			eager.Makespan, greedy.Makespan)
	}
}

func TestRunRejectsMissingImplementColor(t *testing.T) {
	plan := mauritiusPlan(t, 1)
	_, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 1),
		Set: implement.NewSet(implement.ThickMarker, flagspec.France.Colors()), // no yellow/green
	})
	if err == nil {
		t.Fatal("expected error for implement set not covering the flag's colors")
	}
}

func TestRunRejectsWrongTeamSize(t *testing.T) {
	plan := mauritiusPlan(t, 3)
	_, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 2),
		Set: implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
	})
	if err == nil {
		t.Fatal("expected error for mismatched team size")
	}
}

func TestDeterminism(t *testing.T) {
	a := runScenario(t, 4, newTeam(t, 4))
	b := runScenario(t, 4, newTeam(t, 4))
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed, different makespans: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.TotalWaitImplement() != b.TotalWaitImplement() {
		t.Fatalf("same seed, different contention: %v vs %v",
			a.TotalWaitImplement(), b.TotalWaitImplement())
	}
	if a.Events != b.Events {
		t.Fatalf("same seed, different event counts: %d vs %d", a.Events, b.Events)
	}
}

func TestCrayonBreakageInjectsRepairs(t *testing.T) {
	// Crank breakage probability up so the test is robust.
	f := flagspec.Mauritius
	plan := mauritiusPlan(t, 1)
	var impls []*implement.Implement
	for i, c := range f.Colors() {
		spec := implement.DefaultSpec(implement.Crayon)
		spec.BreakProb = 0.5
		impls = append(impls, &implement.Implement{ID: i, Color: c, Kind: implement.Crayon, Spec: spec})
	}
	set, err := implement.NewMixedSet(impls)
	if err != nil {
		t.Fatal(err)
	}
	profile := processor.DefaultProfile("P")
	profile.WarmupPenalty = 0
	team, err := processor.Team(1, profile, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Plan: plan, Procs: team, Set: set})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breaks == 0 {
		t.Fatal("expected crayon breakages at p=0.5 over 96 cells")
	}
	if err := res.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSpansAreWellFormed(t *testing.T) {
	plan := mauritiusPlan(t, 4)
	res, err := Run(Config{
		Plan: plan, Procs: newTeam(t, 4),
		Set:   implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	paints := 0
	for _, sp := range res.Trace {
		if sp.End < sp.Start {
			t.Fatalf("span %v ends before it starts", sp)
		}
		if sp.Proc < 0 || sp.Proc >= 4 {
			t.Fatalf("span has invalid processor %d", sp.Proc)
		}
		if sp.End > res.Makespan {
			t.Fatalf("span %v extends past makespan %v", sp, res.Makespan)
		}
		if sp.Kind == SpanPaint {
			paints++
		}
	}
	if paints != plan.TotalTasks() {
		t.Fatalf("trace has %d paint spans, want %d", paints, plan.TotalTasks())
	}
}
