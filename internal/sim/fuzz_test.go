package sim

// FuzzEngineConfig drives the unified engine (static and stealing
// sources) with randomized workloads: arbitrary raster sizes, team sizes,
// decomposition strategies, implement technologies and counts, hold
// policies, jittered service times, and setup phases. Whatever the
// configuration, the engine must
//
//   - never panic,
//   - never deadlock (a watchdog converts a hung kernel into a failure),
//   - color the flag correctly and conserve work, and
//   - keep makespan >= setup + the largest per-processor busy time
//     (paint + overhead both accrue on a processor's serial timeline).
//
// The parser packages have had fuzz coverage since the seed; this target
// gives the simulator core the same treatment, seeded from the golden
// configurations pinned in testdata/.

import (
	"testing"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/processor"
	"flagsim/internal/rng"
	"flagsim/internal/workplan"
)

// fuzzPlan builds one of the decompositions at a fuzzer-chosen raster
// size, or reports that the combination is structurally invalid.
func fuzzPlan(f *flagspec.Flag, strat, pRaw, wRaw, hRaw uint8) (*workplan.Plan, error) {
	w := 1 + int(wRaw)%48
	h := 1 + int(hRaw)%24
	p := int(pRaw%4) + 1
	switch strat % 5 {
	case 0:
		return workplan.Sequential(f, w, h)
	case 1:
		if p > len(f.Layers) {
			p = len(f.Layers)
		}
		return workplan.LayerBlocks(f, w, h, p)
	case 2:
		return workplan.VerticalSlices(f, w, h, p, pRaw%2 == 0)
	case 3:
		return workplan.Cyclic(f, w, h, p)
	default:
		return workplan.Blocks(f, w, h, p, p, 2)
	}
}

func FuzzEngineConfig(f *testing.F) {
	// Seed corpus mirroring the golden configurations (golden_test.go):
	// flag, strategy, team size, raster size, kind, seed, jitter, setup,
	// hold policy, implements per color, executor.
	f.Add(uint8(0), uint8(2), uint8(3), uint8(0), uint8(0), uint8(1), uint64(1), uint16(0), uint32(20000), uint8(0), uint8(0), uint8(0))    // static-s4-mauritius
	f.Add(uint8(3), uint8(2), uint8(3), uint8(0), uint8(0), uint8(3), uint64(7), uint16(150), uint32(0), uint8(0), uint8(0), uint8(0))     // static-gb-crayon-jitter
	f.Add(uint8(0), uint8(3), uint8(2), uint8(0), uint8(0), uint8(1), uint64(3), uint16(0), uint32(0), uint8(1), uint8(1), uint8(0))       // static-eager-cyclic
	f.Add(uint8(0), uint8(2), uint8(3), uint8(63), uint8(31), uint8(1), uint64(5), uint16(200), uint32(10000), uint8(0), uint8(1), uint8(1)) // steal, large raster

	f.Fuzz(func(t *testing.T, fi, strat, pRaw, wRaw, hRaw, kindRaw uint8,
		seed uint64, jitterMil uint16, setupMs uint32, holdRaw, extraRaw, execRaw uint8) {
		flags := flagspec.All()
		fl := flags[int(fi)%len(flags)]
		plan, err := fuzzPlan(fl, strat, pRaw, wRaw, hRaw)
		if err != nil {
			t.Skip() // the builder rejected the combination up front
		}
		profile := processor.DefaultProfile("P")
		profile.JitterSigma = float64(jitterMil%2000) / 1000
		team, err := processor.Team(plan.NumProcs(), profile, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Plan:  plan,
			Procs: team,
			Set:   implement.NewSetN(implement.Kinds()[int(kindRaw)%4], fl.Colors(), int(extraRaw%3)+1),
			Hold:  HoldPolicy(holdRaw % 2),
			Setup: time.Duration(setupMs%60000) * time.Millisecond,
		}
		runner := Run
		if execRaw%2 == 1 {
			runner = RunSteal
		}

		// Watchdog: a finite workload must drain; a stuck kernel is a
		// deadlock, not a slow test.
		type outcome struct {
			res *Result
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			res, err := runner(cfg)
			ch <- outcome{res, err}
		}()
		var res *Result
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatalf("engine rejected a structurally valid config: %v", o.err)
			}
			res = o.res
		case <-time.After(30 * time.Second):
			t.Fatalf("deadlock: engine did not drain (flag %s, plan %s, %d procs)",
				fl.Name, plan.Strategy, plan.NumProcs())
		}

		if err := res.Verify(fl); err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.SetupTime {
			t.Fatalf("makespan %v < setup %v", res.Makespan, res.SetupTime)
		}
		cells := 0
		var maxBusy time.Duration
		for _, p := range res.Procs {
			cells += p.Cells
			if busy := p.PaintTime + p.Overhead; busy > maxBusy {
				maxBusy = busy
			}
			if p.Finish > res.Makespan {
				t.Fatalf("%s finished at %v after makespan %v", p.Name, p.Finish, res.Makespan)
			}
		}
		if cells != plan.TotalTasks() {
			t.Fatalf("painted %d cells, plan has %d tasks", cells, plan.TotalTasks())
		}
		if res.Makespan < res.SetupTime+maxBusy {
			t.Fatalf("makespan %v < setup %v + max busy %v: time vanished from a processor's timeline",
				res.Makespan, res.SetupTime, maxBusy)
		}
	})
}
