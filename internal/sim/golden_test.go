package sim

// Golden determinism tests: the exact virtual-time outcome of Run and
// RunDynamic on fixed seeds, captured before the executors were unified on
// the policy-driven engine. The engine must reproduce the seed executors
// bit-for-bit — makespan, event count, every trace span, every
// per-processor and per-implement statistic.
//
// Regenerate (only when a behavior change is intended and understood):
//
//	go test ./internal/sim -run TestGolden -update-golden

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/processor"
	"flagsim/internal/rng"
	"flagsim/internal/workplan"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden result files")

// goldenResult is the serialized form of everything a Result determines.
type goldenResult struct {
	Strategy string        `json:"strategy"`
	Makespan time.Duration `json:"makespan"`
	Setup    time.Duration `json:"setup"`
	Events   uint64        `json:"events"`
	Breaks   int           `json:"breaks"`
	Grid     string        `json:"grid"`
	Procs    []goldenProc  `json:"procs"`
	Impls    []goldenImpl  `json:"implements"`
	Trace    []goldenSpan  `json:"trace"`
}

type goldenProc struct {
	Name          string        `json:"name"`
	Cells         int           `json:"cells"`
	Finish        time.Duration `json:"finish"`
	FirstPaint    time.Duration `json:"first_paint"`
	PaintTime     time.Duration `json:"paint_time"`
	WaitImplement time.Duration `json:"wait_implement"`
	WaitLayer     time.Duration `json:"wait_layer"`
	Overhead      time.Duration `json:"overhead"`
}

type goldenImpl struct {
	ID        int           `json:"id"`
	Color     string        `json:"color"`
	Kind      string        `json:"kind"`
	BusyTime  time.Duration `json:"busy_time"`
	Handoffs  int           `json:"handoffs"`
	MaxQueue  int           `json:"max_queue"`
	Breakages int           `json:"breakages"`
}

type goldenSpan struct {
	Proc  int           `json:"proc"`
	Kind  string        `json:"kind"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	Color string        `json:"color,omitempty"`
	Cell  string        `json:"cell,omitempty"`
}

func goldenOf(r *Result) goldenResult {
	g := goldenResult{
		Strategy: r.Plan.Strategy,
		Makespan: r.Makespan,
		Setup:    r.SetupTime,
		Events:   r.Events,
		Breaks:   r.Breaks,
		Grid:     r.Grid.String(),
	}
	for _, p := range r.Procs {
		g.Procs = append(g.Procs, goldenProc{
			Name: p.Name, Cells: p.Cells, Finish: p.Finish,
			FirstPaint: p.FirstPaint, PaintTime: p.PaintTime,
			WaitImplement: p.WaitImplement, WaitLayer: p.WaitLayer,
			Overhead: p.Overhead,
		})
	}
	for _, is := range r.Implements {
		g.Impls = append(g.Impls, goldenImpl{
			ID: is.ID, Color: is.Color.String(), Kind: is.Kind.String(),
			BusyTime: is.BusyTime, Handoffs: is.Handoffs,
			MaxQueue: is.MaxQueue, Breakages: is.Breakages,
		})
	}
	for _, sp := range r.Trace {
		gs := goldenSpan{Proc: sp.Proc, Kind: sp.Kind.String(), Start: sp.Start, End: sp.End}
		if sp.Kind != SpanWaitLayer && sp.Kind != SpanSetup {
			gs.Color = sp.Color.String()
		}
		if sp.Kind == SpanPaint {
			gs.Cell = sp.Cell.String()
		}
		g.Trace = append(g.Trace, gs)
	}
	return g
}

// goldenTeam builds the deterministic team a golden case reuses on every
// regeneration and comparison run.
func goldenTeam(t *testing.T, n int, seed uint64, mutate func(*processor.Profile)) []*processor.Processor {
	t.Helper()
	profile := processor.DefaultProfile("P")
	if mutate != nil {
		mutate(&profile)
	}
	team, err := processor.Team(n, profile, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return team
}

// goldenSkillTeam builds one processor per skill with split seeds.
func goldenSkillTeam(t *testing.T, seed uint64, skills ...float64) []*processor.Processor {
	t.Helper()
	out := make([]*processor.Processor, len(skills))
	for i, s := range skills {
		p := processor.DefaultProfile("P")
		p.Name = "P" + string(rune('1'+i))
		p.Skill = s
		pr, err := processor.New(p, rng.New(seed).SplitLabeled(p.Name))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pr
	}
	return out
}

type goldenCase struct {
	name string
	run  func(t *testing.T) *Result
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"static-s4-mauritius", func(t *testing.T) *Result {
			f := flagspec.Mauritius
			plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Plan:  plan,
				Procs: goldenTeam(t, 4, 1, nil),
				Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
				Setup: 20 * time.Second,
				Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"static-gb-crayon-jitter", func(t *testing.T) *Result {
			f := flagspec.GreatBritain
			plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Plan: plan,
				Procs: goldenTeam(t, 4, 7, func(p *processor.Profile) {
					p.JitterSigma = 0.15
				}),
				Set:   implement.NewSet(implement.Crayon, f.Colors()),
				Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"static-eager-cyclic", func(t *testing.T) *Result {
			f := flagspec.Mauritius
			plan, err := workplan.Cyclic(f, f.DefaultW, f.DefaultH, 3)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Plan:  plan,
				Procs: goldenTeam(t, 3, 3, nil),
				Set:   implement.NewSetN(implement.ThickMarker, f.Colors(), 2),
				Hold:  EagerRelease,
				Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"dynamic-ordered-hetero", func(t *testing.T) *Result {
			f := flagspec.Mauritius
			res, err := RunDynamic(DynamicConfig{
				Flag:   f,
				Procs:  goldenSkillTeam(t, 5, 1.3, 1.3, 1.3, 0.5),
				Set:    implement.NewSet(implement.ThickMarker, f.Colors()),
				Policy: PullOrdered,
				Setup:  10 * time.Second,
				Trace:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"dynamic-affinity-2impl", func(t *testing.T) *Result {
			f := flagspec.Mauritius
			res, err := RunDynamic(DynamicConfig{
				Flag:   f,
				Procs:  goldenSkillTeam(t, 9, 1.6, 1.0, 0.7),
				Set:    implement.NewSetN(implement.ThickMarker, f.Colors(), 2),
				Policy: PullColorAffinity,
				Trace:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"dynamic-gb-affinity", func(t *testing.T) *Result {
			f := flagspec.GreatBritain
			res, err := RunDynamic(DynamicConfig{
				Flag:   f,
				Procs:  goldenSkillTeam(t, 11, 1.0, 1.0, 1.0),
				Set:    implement.NewSet(implement.ThickMarker, f.Colors()),
				Policy: PullColorAffinity,
				Trace:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
	}
}

func TestGoldenResults(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := goldenOf(tc.run(t))
			path := filepath.Join("testdata", "golden-"+tc.name+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			var want goldenResult
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if got.Makespan != want.Makespan {
				t.Errorf("makespan = %v, want %v", got.Makespan, want.Makespan)
			}
			if got.Events != want.Events {
				t.Errorf("events = %d, want %d", got.Events, want.Events)
			}
			if !reflect.DeepEqual(got.Procs, want.Procs) {
				t.Errorf("per-processor stats diverge from golden:\n got %+v\nwant %+v", got.Procs, want.Procs)
			}
			if !reflect.DeepEqual(got.Impls, want.Impls) {
				t.Errorf("per-implement stats diverge from golden:\n got %+v\nwant %+v", got.Impls, want.Impls)
			}
			if len(got.Trace) != len(want.Trace) {
				t.Fatalf("trace has %d spans, want %d", len(got.Trace), len(want.Trace))
			}
			for i := range got.Trace {
				if got.Trace[i] != want.Trace[i] {
					t.Fatalf("trace span %d = %+v, want %+v", i, got.Trace[i], want.Trace[i])
				}
			}
			if got.Grid != want.Grid {
				t.Errorf("final grid diverges from golden")
			}
		})
	}
}
