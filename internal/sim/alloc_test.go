package sim

// Allocation-flatness and specialized-path tests for the zero-alloc
// engine core. These pin the two properties the arena refactor bought:
//
//   - a warm-arena run of any executor performs zero heap allocations
//     (the property benchguard gates in CI; this test is the local,
//     benchmark-independent version), and
//   - hook specialization is decided per run, not per arena: installing
//     a probe selects the instrumented opcode bodies for that run only,
//     and the next hook-free run on the same arena is back on the fast
//     path with byte-identical results.

import (
	"testing"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/processor"
	"flagsim/internal/workplan"
)

// allocSnapshot deep-copies the comparable surface of a Result, because
// arena-run Results alias arena memory that the next run overwrites.
type allocSnapshot struct {
	makespan, setup any
	events          uint64
	breaks          int
	grid            string
	procs           []ProcStats
	impls           []ImplementStats
	trace           []Span
}

func snapshotResult(r *Result) allocSnapshot {
	s := allocSnapshot{
		makespan: r.Makespan,
		setup:    r.SetupTime,
		events:   r.Events,
		breaks:   r.Breaks,
		grid:     r.Grid.String(),
		procs:    append([]ProcStats(nil), r.Procs...),
		impls:    append([]ImplementStats(nil), r.Implements...),
		trace:    append([]Span(nil), r.Trace...),
	}
	return s
}

func (s allocSnapshot) equal(o allocSnapshot) bool {
	if s.makespan != o.makespan || s.setup != o.setup || s.events != o.events ||
		s.breaks != o.breaks || s.grid != o.grid ||
		len(s.procs) != len(o.procs) || len(s.impls) != len(o.impls) || len(s.trace) != len(o.trace) {
		return false
	}
	for i := range s.procs {
		if s.procs[i] != o.procs[i] {
			return false
		}
	}
	for i := range s.impls {
		if s.impls[i] != o.impls[i] {
			return false
		}
	}
	for i := range s.trace {
		if s.trace[i] != o.trace[i] {
			return false
		}
	}
	return true
}

func allocSet() *implement.Set {
	return implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors())
}

// TestWarmArenaRunsAllocationFree is the zero-alloc invariant for all
// three executors: after one warm-up run that grows every arena buffer
// to the workload's size, further runs on the same arena must not touch
// the heap at all.
func TestWarmArenaRunsAllocationFree(t *testing.T) {
	f := flagspec.Mauritius
	plan := mauritiusPlan(t, 5)
	executors := []struct {
		name string
		run  func(procs []*processor.Processor, set *implement.Set, arena *Arena) (*Result, error)
	}{
		{"static", func(procs []*processor.Processor, set *implement.Set, arena *Arena) (*Result, error) {
			return Run(Config{Plan: plan, Procs: procs, Set: set, Arena: arena})
		}},
		{"dynamic", func(procs []*processor.Processor, set *implement.Set, arena *Arena) (*Result, error) {
			return RunDynamic(DynamicConfig{
				Flag: f, W: f.DefaultW, H: f.DefaultH,
				Procs: procs, Set: set,
				Policy: PullColorAffinity, Arena: arena,
			})
		}},
		{"steal", func(procs []*processor.Processor, set *implement.Set, arena *Arena) (*Result, error) {
			return RunSteal(Config{Plan: plan, Procs: procs, Set: set, Arena: arena})
		}},
	}
	for _, ex := range executors {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			// Team, set, and arena are built once outside the measured
			// closure: the run itself must be allocation-free, not team
			// construction.
			procs := dynTeam(t, 1.3, 1.0, 1.0, 0.5)
			set := allocSet()
			arena := NewArena()
			run := func() {
				if _, err := ex.run(procs, set, arena); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the arena buffers
			if got := testing.AllocsPerRun(5, run); got != 0 {
				t.Errorf("%s: warm-arena run allocates %.1f allocs/run, want 0", ex.name, got)
			}
		})
	}
}

// nopProbe is an observer that does nothing — installing it still flips
// the engine onto the instrumented opcode bodies, so it isolates the
// fast/instrumented split from any probe side effects.
type nopProbe struct{}

func (nopProbe) Grant(int, *implement.Implement, time.Duration)    {}
func (nopProbe) Release(int, *implement.Implement, time.Duration)  {}
func (nopProbe) Block(int, SpanKind, palette.Color, time.Duration) {}
func (nopProbe) Complete(int, workplan.Task, time.Duration)        {}
func (nopProbe) ProcDone(int, time.Duration)                       {}
func (nopProbe) Span(Span)                                         {}

// TestProbeRemovalRestoresFastPath is the specialization regression
// test: the fast/instrumented choice is made at run entry from that
// run's config, so an arena that just ran instrumented must drop back
// to the fast path — and to fast-path results — the moment the probe is
// gone.
func TestProbeRemovalRestoresFastPath(t *testing.T) {
	plan := mauritiusPlan(t, 5)
	// No Trace here: tracing is itself observation and legitimately
	// selects the instrumented path, which would mask the property under
	// test.
	cfg := func(arena *Arena, probes []Probe) Config {
		return Config{
			Plan: plan, Procs: dynTeam(t, 1.3, 1.0, 1.0, 0.5), Set: allocSet(),
			Probes: probes, Arena: arena,
		}
	}
	arena := NewArena()

	bare, err := Run(cfg(arena, nil))
	if err != nil {
		t.Fatal(err)
	}
	if arena.e.instrumented {
		t.Fatal("hook-free run selected the instrumented path")
	}
	want := snapshotResult(bare)

	if _, err := Run(cfg(arena, []Probe{nopProbe{}})); err != nil {
		t.Fatal(err)
	}
	if !arena.e.instrumented {
		t.Fatal("probed run did not select the instrumented path")
	}

	after, err := Run(cfg(arena, nil))
	if err != nil {
		t.Fatal(err)
	}
	if arena.e.instrumented {
		t.Error("removing the probe did not restore the fast path on the reused arena")
	}
	if got := snapshotResult(after); !got.equal(want) {
		t.Errorf("fast-path run after probe removal diverged from the pre-probe run:\nbefore: makespan %v events %d grid %s\nafter:  makespan %v events %d grid %s",
			want.makespan, want.events, want.grid[:min(40, len(want.grid))],
			got.makespan, got.events, got.grid[:min(40, len(got.grid))])
	}
}

// TestFastInstrumentedParity pins the refactor's core promise: the fast
// opcode bodies (straight-line, span-batched where legal) and the
// instrumented reference bodies produce byte-identical results — same
// makespan, same event count, same grid, same per-processor and
// per-implement statistics, same trace — for every executor.
func TestFastInstrumentedParity(t *testing.T) {
	f := flagspec.Mauritius
	plan := mauritiusPlan(t, 5)
	executors := []struct {
		name string
		run  func(t *testing.T, probes []Probe) (*Result, error)
	}{
		{"static", func(t *testing.T, probes []Probe) (*Result, error) {
			return Run(Config{Plan: plan, Procs: dynTeam(t, 1.3, 1.0, 1.0, 0.5), Set: allocSet(), Trace: true, Probes: probes})
		}},
		{"dynamic", func(t *testing.T, probes []Probe) (*Result, error) {
			return RunDynamic(DynamicConfig{
				Flag: f, W: f.DefaultW, H: f.DefaultH,
				Procs: dynTeam(t, 1.3, 1.0, 1.0, 0.5), Set: allocSet(),
				Policy: PullColorAffinity, Trace: true, Probes: probes,
			})
		}},
		{"steal", func(t *testing.T, probes []Probe) (*Result, error) {
			return RunSteal(Config{Plan: plan, Procs: dynTeam(t, 1.3, 1.0, 1.0, 0.5), Set: allocSet(), Trace: true, Probes: probes})
		}},
	}
	for _, ex := range executors {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			fast, err := ex.run(t, nil)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := ex.run(t, []Probe{nopProbe{}})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := snapshotResult(inst), snapshotResult(fast); !got.equal(want) {
				t.Errorf("%s: instrumented run diverged from fast run (makespan %v vs %v, events %d vs %d, %d vs %d trace spans)",
					ex.name, got.makespan, want.makespan, got.events, want.events, len(got.trace), len(want.trace))
			}
		})
	}
}

// TestPooledVsOwnedArenaParity: a run through the shared pool and a run
// through a caller-owned arena are the same simulation — only the memory
// lifetime differs.
func TestPooledVsOwnedArenaParity(t *testing.T) {
	plan := mauritiusPlan(t, 5)
	run := func(arena *Arena) allocSnapshot {
		t.Helper()
		res, err := Run(Config{
			Plan: plan, Procs: dynTeam(t, 1.3, 1.0, 1.0, 0.5), Set: allocSet(),
			Trace: true, Arena: arena,
		})
		if err != nil {
			t.Fatal(err)
		}
		return snapshotResult(res)
	}
	pooled := run(nil)
	owned := run(NewArena())
	if !owned.equal(pooled) {
		t.Errorf("owned-arena run diverged from pooled run (makespan %v vs %v, events %d vs %d)",
			owned.makespan, pooled.makespan, owned.events, pooled.events)
	}
}
