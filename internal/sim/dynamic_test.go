package sim

import (
	"testing"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/processor"
	"flagsim/internal/rng"
	"flagsim/internal/workplan"
)

func dynTeam(t *testing.T, skills ...float64) []*processor.Processor {
	t.Helper()
	out := make([]*processor.Processor, len(skills))
	for i, s := range skills {
		p := processor.DefaultProfile("P")
		p.Name = "P" + string(rune('1'+i))
		p.WarmupPenalty = 0
		p.MovePerCell = 0
		p.Skill = s
		pr, err := processor.New(p, rng.New(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pr
	}
	return out
}

func runDynamic(t *testing.T, f *flagspec.Flag, policy PullPolicy, skills ...float64) *Result {
	t.Helper()
	res, err := RunDynamic(DynamicConfig{
		Flag:   f,
		Procs:  dynTeam(t, skills...),
		Set:    implement.NewSet(implement.ThickMarker, f.Colors()),
		Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(f); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDynamicPaintsCorrectly(t *testing.T) {
	for _, policy := range []PullPolicy{PullOrdered, PullColorAffinity} {
		for _, f := range []*flagspec.Flag{flagspec.Mauritius, flagspec.GreatBritain, flagspec.Jordan} {
			res := runDynamic(t, f, policy, 1, 1, 1)
			total := 0
			for _, p := range res.Procs {
				total += p.Cells
			}
			if total != res.Plan.TotalTasks() {
				t.Fatalf("%s/%s: painted %d of %d", f.Name, policy, total, res.Plan.TotalTasks())
			}
		}
	}
}

func TestDynamicAffinityBeatsOrderedUnderContention(t *testing.T) {
	// With one implement per color, ordered pulling funnels everyone
	// through the same stripe; affinity keeps each student on their
	// color.
	ordered := runDynamic(t, flagspec.Mauritius, PullOrdered, 1, 1, 1, 1)
	affinity := runDynamic(t, flagspec.Mauritius, PullColorAffinity, 1, 1, 1, 1)
	if affinity.Makespan >= ordered.Makespan {
		t.Fatalf("affinity (%v) should beat ordered (%v)", affinity.Makespan, ordered.Makespan)
	}
	if affinity.TotalWaitImplement() >= ordered.TotalWaitImplement() {
		t.Fatalf("affinity wait (%v) should be below ordered (%v)",
			affinity.TotalWaitImplement(), ordered.TotalWaitImplement())
	}
}

func TestDynamicBalancesHeterogeneousSkills(t *testing.T) {
	// One student twice as fast: with enough implements that color
	// exclusivity can't serialize the tail, self-scheduling gives the
	// fast student more cells. (With one implement per color the split
	// stays even — whoever holds the last color's marker finishes that
	// whole stripe — which is faithful to the physical activity.)
	f := flagspec.Mauritius
	res, err := RunDynamic(DynamicConfig{
		Flag:   f,
		Procs:  dynTeam(t, 2.0, 1.0),
		Set:    implement.NewSetN(implement.ThickMarker, f.Colors(), 2),
		Policy: PullColorAffinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(f); err != nil {
		t.Fatal(err)
	}
	fast, slow := res.Procs[0].Cells, res.Procs[1].Cells
	if fast <= slow {
		t.Fatalf("fast student painted %d cells, slow %d; dynamic should shift work", fast, slow)
	}
}

func TestDynamicBeatsStaticOnHeterogeneousTeam(t *testing.T) {
	// Static vertical slices give every student the same area; the slow
	// student is the critical path. Dynamic adapts.
	f := flagspec.Mauritius
	skills := []float64{1.6, 1.6, 1.6, 0.6}

	static := func() *Result {
		plan, err := staticSlicesPlan(f, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Plan:  plan,
			Procs: dynTeam(t, skills...),
			Set:   implement.NewSetN(implement.ThickMarker, f.Colors(), 4),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	dynamic, err := RunDynamic(DynamicConfig{
		Flag:   f,
		Procs:  dynTeam(t, skills...),
		Set:    implement.NewSetN(implement.ThickMarker, f.Colors(), 4),
		Policy: PullColorAffinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dynamic.Verify(f); err != nil {
		t.Fatal(err)
	}
	if dynamic.Makespan >= static.Makespan {
		t.Fatalf("dynamic (%v) should beat static slices (%v) with a slow teammate",
			dynamic.Makespan, static.Makespan)
	}
}

func TestDynamicSingleProcessor(t *testing.T) {
	res := runDynamic(t, flagspec.Mauritius, PullColorAffinity, 1)
	if res.Procs[0].Cells != 96 {
		t.Fatalf("solo dynamic painted %d cells", res.Procs[0].Cells)
	}
}

func TestDynamicLayeredFlagHonorsDependencies(t *testing.T) {
	res, err := RunDynamic(DynamicConfig{
		Flag:   flagspec.GreatBritain,
		Procs:  dynTeam(t, 1, 1, 1, 1),
		Set:    implement.NewSet(implement.ThickMarker, flagspec.GreatBritain.Colors()),
		Policy: PullOrdered,
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(flagspec.GreatBritain); err != nil {
		t.Fatal(err)
	}
	// The executed assignment must respect layer order per trace: no
	// white paint before the last blue-field cell.
	var fieldEnd, firstWhite int64 = 0, 1 << 62
	for _, sp := range res.Trace {
		if sp.Kind != SpanPaint {
			continue
		}
		if sp.Color == flagspec.GreatBritain.Layers[0].Color && int64(sp.End) > fieldEnd {
			fieldEnd = int64(sp.End)
		}
		if sp.Color == flagspec.GreatBritain.Layers[1].Color && int64(sp.Start) < firstWhite {
			firstWhite = int64(sp.Start)
		}
	}
	if firstWhite < fieldEnd {
		t.Fatalf("white painting started at %d before blue field finished at %d", firstWhite, fieldEnd)
	}
}

func TestDynamicValidation(t *testing.T) {
	if _, err := RunDynamic(DynamicConfig{}); err == nil {
		t.Fatal("nil flag should error")
	}
	if _, err := RunDynamic(DynamicConfig{Flag: flagspec.Mauritius}); err == nil {
		t.Fatal("no processors should error")
	}
	if _, err := RunDynamic(DynamicConfig{
		Flag:  flagspec.Mauritius,
		Procs: dynTeam(t, 1),
		Set:   implement.NewSet(implement.ThickMarker, flagspec.France.Colors()),
	}); err == nil {
		t.Fatal("uncovered colors should error")
	}
}

func TestDynamicDeterministic(t *testing.T) {
	a := runDynamic(t, flagspec.Mauritius, PullColorAffinity, 1, 1)
	b := runDynamic(t, flagspec.Mauritius, PullColorAffinity, 1, 1)
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Fatalf("dynamic runs differ: %v/%d vs %v/%d", a.Makespan, a.Events, b.Makespan, b.Events)
	}
}

// staticSlicesPlan builds the scenario-4 style plan used by the
// heterogeneity comparison.
func staticSlicesPlan(f *flagspec.Flag, p int) (*workplan.Plan, error) {
	return workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, p, true)
}
