package sim

import (
	"fmt"
	"sync"
	"time"

	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/workplan"
)

// ConcurrentConfig describes a run on the real-goroutine executor: the same
// workload as Run, but each processor is an OS-scheduled goroutine, the
// grid is a shared mutable structure guarded by a mutex, implements are
// FIFO-queued condition-variable pools, and layer dependencies are counter
// barriers. Virtual durations are slept, scaled down by Scale.
//
// The concurrent executor exists for two reasons: it demonstrates that the
// activity's phenomena (contention, pipelining, dependency stalls) emerge
// from real parallel execution and not just from the DES model, and it
// gives the test suite a race-detector workout over the shared-state code
// paths. Its timings are nondeterministic; tests assert correctness of the
// final image and conservation laws, not exact times.
type ConcurrentConfig struct {
	Plan  *workplan.Plan
	Procs []*ConcurrentProc
	Set   *implement.Set
	// Scale divides virtual durations: a Scale of 10000 runs 1s of
	// virtual time in 100µs of wall time. Values <= 0 default to 10000.
	Scale float64
	// Trace records spans in the shared SpanKind vocabulary, with wall
	// offsets scaled back to virtual time, so the Gantt and Chrome-trace
	// renderers draw concurrent runs too. Span boundaries come from the
	// OS scheduler and are therefore nondeterministic.
	Trace bool
}

// ConcurrentProc is the per-processor timing model for the concurrent
// executor: a fixed per-cell cost per implement class (no warmup or
// jitter; those are DES concerns) so runs finish quickly.
type ConcurrentProc struct {
	Name  string
	Skill float64
}

// ConcurrentResult is the outcome of a concurrent run.
type ConcurrentResult struct {
	Wall     time.Duration // real elapsed time
	Virtual  time.Duration // Wall scaled back to virtual units
	Grid     *grid.Grid
	Cells    []int           // cells painted per processor
	Waits    []time.Duration // wall time spent blocked per processor
	Finishes []time.Duration // wall finish time per processor
	Names    []string        // processor names, for rendering
	Trace    []Span          // nil unless ConcurrentConfig.Trace
}

// GanttResult adapts the concurrent run to the renderers' *Result shape
// (trace, processor lanes, makespan) so report.Gantt, report.SVGGantt,
// and WriteChromeTrace draw all three executors alike. Only those fields
// are populated.
func (r *ConcurrentResult) GanttResult() *Result {
	res := &Result{Makespan: r.Virtual, Trace: r.Trace, Grid: r.Grid}
	for i, name := range r.Names {
		res.Procs = append(res.Procs, ProcStats{Name: name, Cells: r.Cells[i]})
	}
	return res
}

// colorPool is a FIFO pool of implements of one color.
type colorPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	free    []*implement.Implement
	next    uint64 // next ticket to serve
	tickets uint64 // tickets issued
}

func newColorPool(impls []*implement.Implement) *colorPool {
	p := &colorPool{free: append([]*implement.Implement(nil), impls...)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire blocks until an implement is available and this caller is at the
// head of the FIFO.
func (p *colorPool) acquire() *implement.Implement {
	p.mu.Lock()
	defer p.mu.Unlock()
	ticket := p.tickets
	p.tickets++
	for p.next != ticket || len(p.free) == 0 {
		p.cond.Wait()
	}
	p.next++
	im := p.free[0]
	p.free = p.free[1:]
	p.cond.Broadcast()
	return im
}

func (p *colorPool) release(im *implement.Implement) {
	p.mu.Lock()
	p.free = append(p.free, im)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// layerBarrier tracks per-layer remaining cell counts.
type layerBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	remaining []int
}

func newLayerBarrier(counts []int) *layerBarrier {
	b := &layerBarrier{remaining: append([]int(nil), counts...)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *layerBarrier) cellDone(layer int) {
	b.mu.Lock()
	b.remaining[layer]--
	done := b.remaining[layer] == 0
	b.mu.Unlock()
	if done {
		b.cond.Broadcast()
	}
}

func (b *layerBarrier) waitFor(deps []int) {
	b.mu.Lock()
	for {
		ready := true
		for _, d := range deps {
			if b.remaining[d] > 0 {
				ready = false
				break
			}
		}
		if ready {
			b.mu.Unlock()
			return
		}
		b.cond.Wait()
	}
}

// RunConcurrent executes the plan with real goroutines and returns the
// measured result. The final grid is always verified paintable; callers
// verify image correctness with Result-style comparison against the flag
// raster.
func RunConcurrent(cfg ConcurrentConfig) (*ConcurrentResult, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("sim: nil plan")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Procs) != cfg.Plan.NumProcs() {
		return nil, fmt.Errorf("sim: plan wants %d processors, got %d", cfg.Plan.NumProcs(), len(cfg.Procs))
	}
	if cfg.Set == nil {
		return nil, fmt.Errorf("sim: nil implement set")
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 10000
	}

	pools := make(map[palette.Color]*colorPool)
	for _, c := range cfg.Set.Colors() {
		pools[c] = newColorPool(cfg.Set.ForColor(c))
	}
	for _, tasks := range cfg.Plan.PerProc {
		for _, t := range tasks {
			if pools[t.Color] == nil {
				return nil, fmt.Errorf("sim: no implement for color %s", t.Color)
			}
		}
	}

	g := grid.New(cfg.Plan.W, cfg.Plan.H)
	barrier := newLayerBarrier(cfg.Plan.LayerCellCount)
	res := &ConcurrentResult{
		Grid:     g,
		Cells:    make([]int, len(cfg.Procs)),
		Waits:    make([]time.Duration, len(cfg.Procs)),
		Finishes: make([]time.Duration, len(cfg.Procs)),
		Names:    make([]string, len(cfg.Procs)),
	}
	for i, pr := range cfg.Procs {
		res.Names[i] = pr.Name
	}
	var errMu sync.Mutex
	var firstErr error
	sleep := func(virtual time.Duration) {
		time.Sleep(time.Duration(float64(virtual) / scale))
	}

	// traces[pi] is goroutine-local; merged after the join so tracing
	// needs no extra synchronization on the hot path.
	traces := make([][]Span, len(cfg.Procs))

	start := time.Now()
	var wg sync.WaitGroup
	for pi := range cfg.Procs {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			pr := cfg.Procs[pi]
			skill := pr.Skill
			if skill <= 0 {
				skill = 1
			}
			// vnow maps wall offsets to virtual time for span boundaries.
			vnow := func() time.Duration {
				return time.Duration(float64(time.Since(start)) * scale)
			}
			span := func(kind SpanKind, from time.Duration, t workplan.Task) {
				if !cfg.Trace {
					return
				}
				sp := Span{Proc: pi, Kind: kind, Start: from, End: vnow(), Color: t.Color}
				if kind == SpanPaint {
					sp.Cell = t.Cell
				}
				traces[pi] = append(traces[pi], sp)
			}
			var holding *implement.Implement
			for _, t := range cfg.Plan.PerProc[pi] {
				deps := cfg.Plan.LayerDeps[t.Layer]
				if len(deps) > 0 {
					if holding != nil {
						pools[holding.Color].release(holding)
						holding = nil
					}
					w0 := time.Now()
					v0 := vnow()
					barrier.waitFor(deps)
					if wait := time.Since(w0); wait > 0 {
						res.Waits[pi] += wait
						span(SpanWaitLayer, v0, workplan.Task{})
					}
				}
				if holding != nil && holding.Color != t.Color {
					v0 := vnow()
					sleep(holding.Spec.PutDown)
					span(SpanPutDown, v0, workplan.Task{Color: holding.Color})
					pools[holding.Color].release(holding)
					holding = nil
				}
				if holding == nil {
					w0 := time.Now()
					v0 := vnow()
					holding = pools[t.Color].acquire()
					if wait := time.Since(w0); wait > 0 {
						res.Waits[pi] += wait
						span(SpanWaitImplement, v0, t)
					}
					v0 = vnow()
					sleep(holding.Spec.Pickup)
					span(SpanPickup, v0, t)
				}
				service := float64(processorBaseCellTime) * holding.Spec.SpeedFactor / skill
				v0 := vnow()
				sleep(time.Duration(service))
				span(SpanPaint, v0, t)
				if err := g.PaintLocked(t.Cell, t.Color); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				res.Cells[pi]++
				barrier.cellDone(t.Layer)
			}
			if holding != nil {
				pools[holding.Color].release(holding)
			}
			res.Finishes[pi] = time.Since(start)
		}(pi)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Virtual = time.Duration(float64(res.Wall) * scale)
	if cfg.Trace {
		for _, spans := range traces {
			res.Trace = append(res.Trace, spans...)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// processorBaseCellTime mirrors processor.BaseCellTime without importing
// the processor package (the concurrent executor has its own simplified
// timing model).
const processorBaseCellTime = time.Second
