package sim

import (
	"testing"

	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/workplan"
)

func concurrentTeam(n int) []*ConcurrentProc {
	out := make([]*ConcurrentProc, n)
	for i := range out {
		out[i] = &ConcurrentProc{Name: "P", Skill: 1}
	}
	return out
}

func runConcurrentScenario(t *testing.T, plan *workplan.Plan, f *flagspec.Flag, extra int) *ConcurrentResult {
	t.Helper()
	set := implement.NewSetN(implement.ThickMarker, f.Colors(), extra)
	res, err := RunConcurrent(ConcurrentConfig{
		Plan:  plan,
		Procs: concurrentTeam(plan.NumProcs()),
		Set:   set,
		Scale: 50000, // 1 virtual second = 20µs wall
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConcurrentScenario3Correct(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := workplan.LayerBlocks(f, f.DefaultW, f.DefaultH, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := runConcurrentScenario(t, plan, f, 1)
	want, _ := grid.RasterizeDefault(f)
	if !res.Grid.Equal(want) {
		t.Fatalf("concurrent run painted the wrong image:\n%s", res.Grid)
	}
	total := 0
	for _, c := range res.Cells {
		total += c
	}
	if total != plan.TotalTasks() {
		t.Fatalf("painted %d cells, want %d", total, plan.TotalTasks())
	}
}

func TestConcurrentScenario4ContentionCorrectness(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res := runConcurrentScenario(t, plan, f, 1)
	want, _ := grid.RasterizeDefault(f)
	if !res.Grid.Equal(want) {
		t.Fatal("contended concurrent run painted the wrong image")
	}
}

func TestConcurrentLayeredFlagDependencies(t *testing.T) {
	f := flagspec.GreatBritain
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res := runConcurrentScenario(t, plan, f, 1)
	want, _ := grid.RasterizeDefault(f)
	// Layer barriers make the final image exact even under real
	// goroutine interleaving; this is the race-detector workout.
	if !res.Grid.Equal(want) {
		t.Fatal("layered concurrent run violated paint order")
	}
}

func TestConcurrentRejectsBadConfig(t *testing.T) {
	f := flagspec.Mauritius
	plan, _ := workplan.Sequential(f, f.DefaultW, f.DefaultH)
	if _, err := RunConcurrent(ConcurrentConfig{Plan: plan, Procs: nil, Set: implement.NewSet(implement.ThickMarker, f.Colors())}); err == nil {
		t.Fatal("wrong team size should error")
	}
	if _, err := RunConcurrent(ConcurrentConfig{Plan: nil}); err == nil {
		t.Fatal("nil plan should error")
	}
	if _, err := RunConcurrent(ConcurrentConfig{
		Plan: plan, Procs: concurrentTeam(1),
		Set: implement.NewSet(implement.ThickMarker, flagspec.France.Colors()),
	}); err == nil {
		t.Fatal("uncovered colors should error")
	}
}

func TestConcurrentManyRunsStayCorrect(t *testing.T) {
	// Repeat to give the scheduler room to interleave differently.
	f := flagspec.Mauritius
	plan, _ := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, true)
	want, _ := grid.RasterizeDefault(f)
	for i := 0; i < 10; i++ {
		res := runConcurrentScenario(t, plan, f, 1)
		if !res.Grid.Equal(want) {
			t.Fatalf("run %d painted the wrong image", i)
		}
	}
}

func TestConcurrentTraceSharedVocabulary(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConcurrent(ConcurrentConfig{
		Plan:  plan,
		Procs: concurrentTeam(4),
		Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
		Scale: 50000,
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("traced concurrent run recorded no spans")
	}
	paints := 0
	for _, sp := range res.Trace {
		if sp.Proc < 0 || sp.Proc >= 4 {
			t.Fatalf("span with bad lane: %+v", sp)
		}
		if sp.End < sp.Start {
			t.Fatalf("span runs backward: %+v", sp)
		}
		if sp.Kind == SpanPaint {
			paints++
		}
	}
	if paints != plan.TotalTasks() {
		t.Errorf("trace has %d paint spans, want %d", paints, plan.TotalTasks())
	}

	g := res.GanttResult()
	if len(g.Procs) != 4 || g.Makespan != res.Virtual || len(g.Trace) != len(res.Trace) {
		t.Fatalf("GanttResult adapter mismatch: procs=%d makespan=%v spans=%d",
			len(g.Procs), g.Makespan, len(g.Trace))
	}
}

func TestConcurrentUntracedHasNoTrace(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConcurrent(ConcurrentConfig{
		Plan:  plan,
		Procs: concurrentTeam(2),
		Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
		Scale: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced run stored spans")
	}
}
