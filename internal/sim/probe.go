package sim

// Probes are the engine's observer layer: metrics, Chrome tracing, and
// live dashboards hook engine execution without the engine knowing about
// them. A probe receives a callback on every grant, release, block,
// cell-completion, and processor-retirement event, plus every span the
// engine materializes (the same vocabulary the Gantt renderers and the
// Chrome-trace exporter consume).
//
// Installing a probe forces span materialization even when Config.Trace
// is off, so a collector probe sees exactly what a traced run records.
//
// Goroutine safety: one engine run is single-threaded, so a probe
// installed on exactly one run never sees concurrent callbacks. A probe
// instance shared across runs that may execute in parallel — the sweep
// pool's process-wide metrics probe is the canonical case — receives
// interleaved callbacks from many engines at once and must be goroutine-
// safe. Of the probes shipped here, CountingProbe is safe to share
// (atomic counters); SpanCollector is not (it appends to a slice and
// would interleave spans from unrelated runs) — install a fresh one per
// run.

import (
	"sync/atomic"
	"time"

	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/workplan"
)

// Probe observes engine execution. Embed BaseProbe to implement only the
// callbacks you need and stay compatible as the interface grows. See the
// package note above for the goroutine-safety contract when one probe
// instance is shared across concurrent runs.
type Probe interface {
	// Grant fires when pi acquires an implement (including handoffs).
	Grant(pi int, im *implement.Implement, at time.Duration)
	// Release fires when pi puts an implement back.
	Release(pi int, im *implement.Implement, at time.Duration)
	// Block fires when pi parks: kind is SpanWaitImplement (color set) or
	// SpanWaitLayer (color is palette.None).
	Block(pi int, kind SpanKind, color palette.Color, at time.Duration)
	// Complete fires after pi's painted cell lands on the grid.
	Complete(pi int, task workplan.Task, at time.Duration)
	// ProcDone fires when pi retires with no further work.
	ProcDone(pi int, at time.Duration)
	// Span receives every materialized trace span as it is emitted.
	Span(sp Span)
}

// ResultProbe is an optional extension: a Probe that also implements it
// receives the completed run's Result once, after the event loop drains
// and the executor assembles it. This is where run-level aggregates live
// that no event callback can see — steal counts, migrated cells, total
// events, the kernel's event-queue high-water mark.
type ResultProbe interface {
	ObserveResult(res *Result)
}

// RunScopedProbe is an optional extension for probes that need per-run
// state but are installed in a shared place (sweep.Options.Probes hands
// one probe slice to every pooled compute). When the engine starts a run
// it calls BeginRun on every such probe and installs the returned child
// for that run's callbacks instead of the parent; the parent never sees
// engine events directly. BeginRun must be goroutine-safe (pooled runs
// start concurrently); the child it returns is single-run state and is
// the value that receives ObserveResult if it implements ResultProbe.
type RunScopedProbe interface {
	Probe
	BeginRun() Probe
}

// notifyResultProbes fans a completed result out to every probe that
// opted into result observation.
func notifyResultProbes(probes []Probe, res *Result) {
	for _, p := range probes {
		if rp, ok := p.(ResultProbe); ok {
			rp.ObserveResult(res)
		}
	}
}

// BaseProbe is a no-op Probe for embedding.
type BaseProbe struct{}

// Grant implements Probe.
func (BaseProbe) Grant(int, *implement.Implement, time.Duration) {}

// Release implements Probe.
func (BaseProbe) Release(int, *implement.Implement, time.Duration) {}

// Block implements Probe.
func (BaseProbe) Block(int, SpanKind, palette.Color, time.Duration) {}

// Complete implements Probe.
func (BaseProbe) Complete(int, workplan.Task, time.Duration) {}

// ProcDone implements Probe.
func (BaseProbe) ProcDone(int, time.Duration) {}

// Span implements Probe.
func (BaseProbe) Span(Span) {}

// CountingProbe tallies engine events — the cheapest metrics hook. Its
// counters are atomics, so one CountingProbe may be shared across
// concurrently executing runs (e.g. installed pool-wide on a sweep) and
// tallies the aggregate.
type CountingProbe struct {
	BaseProbe
	grants    atomic.Int64
	releases  atomic.Int64
	blocks    atomic.Int64
	completes atomic.Int64
	retired   atomic.Int64
	spans     atomic.Int64
}

// Grant implements Probe.
func (c *CountingProbe) Grant(int, *implement.Implement, time.Duration) { c.grants.Add(1) }

// Release implements Probe.
func (c *CountingProbe) Release(int, *implement.Implement, time.Duration) { c.releases.Add(1) }

// Block implements Probe.
func (c *CountingProbe) Block(int, SpanKind, palette.Color, time.Duration) { c.blocks.Add(1) }

// Complete implements Probe.
func (c *CountingProbe) Complete(int, workplan.Task, time.Duration) { c.completes.Add(1) }

// ProcDone implements Probe.
func (c *CountingProbe) ProcDone(int, time.Duration) { c.retired.Add(1) }

// Span implements Probe.
func (c *CountingProbe) Span(Span) { c.spans.Add(1) }

// Grants returns the number of implement acquisitions observed.
func (c *CountingProbe) Grants() int { return int(c.grants.Load()) }

// Releases returns the number of implement put-downs observed.
func (c *CountingProbe) Releases() int { return int(c.releases.Load()) }

// Blocks returns the number of processor blocks observed.
func (c *CountingProbe) Blocks() int { return int(c.blocks.Load()) }

// Completes returns the number of painted cells observed.
func (c *CountingProbe) Completes() int { return int(c.completes.Load()) }

// Retired returns the number of processor retirements observed.
func (c *CountingProbe) Retired() int { return int(c.retired.Load()) }

// Spans returns the number of spans observed.
func (c *CountingProbe) Spans() int { return int(c.spans.Load()) }

// SpanCollector accumulates every span the engine emits — a traced run's
// Result.Trace, reconstructed through the probe layer. It lets exporters
// (Gantt, Chrome trace, animations) observe an untraced run. A collector
// is single-run state: install a fresh one per run, never share one
// across concurrent runs.
type SpanCollector struct {
	BaseProbe
	Spans []Span
}

// Span implements Probe.
func (s *SpanCollector) Span(sp Span) { s.Spans = append(s.Spans, sp) }
