package sim

// Probes are the engine's observer layer: metrics, Chrome tracing, and
// live dashboards hook engine execution without the engine knowing about
// them. A probe receives a callback on every grant, release, block,
// cell-completion, and processor-retirement event, plus every span the
// engine materializes (the same vocabulary the Gantt renderers and the
// Chrome-trace exporter consume).
//
// Installing a probe forces span materialization even when Config.Trace
// is off, so a collector probe sees exactly what a traced run records.

import (
	"time"

	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/workplan"
)

// Probe observes engine execution. Embed BaseProbe to implement only the
// callbacks you need and stay compatible as the interface grows.
type Probe interface {
	// Grant fires when pi acquires an implement (including handoffs).
	Grant(pi int, im *implement.Implement, at time.Duration)
	// Release fires when pi puts an implement back.
	Release(pi int, im *implement.Implement, at time.Duration)
	// Block fires when pi parks: kind is SpanWaitImplement (color set) or
	// SpanWaitLayer (color is palette.None).
	Block(pi int, kind SpanKind, color palette.Color, at time.Duration)
	// Complete fires after pi's painted cell lands on the grid.
	Complete(pi int, task workplan.Task, at time.Duration)
	// ProcDone fires when pi retires with no further work.
	ProcDone(pi int, at time.Duration)
	// Span receives every materialized trace span as it is emitted.
	Span(sp Span)
}

// BaseProbe is a no-op Probe for embedding.
type BaseProbe struct{}

// Grant implements Probe.
func (BaseProbe) Grant(int, *implement.Implement, time.Duration) {}

// Release implements Probe.
func (BaseProbe) Release(int, *implement.Implement, time.Duration) {}

// Block implements Probe.
func (BaseProbe) Block(int, SpanKind, palette.Color, time.Duration) {}

// Complete implements Probe.
func (BaseProbe) Complete(int, workplan.Task, time.Duration) {}

// ProcDone implements Probe.
func (BaseProbe) ProcDone(int, time.Duration) {}

// Span implements Probe.
func (BaseProbe) Span(Span) {}

// CountingProbe tallies engine events — the cheapest metrics hook.
type CountingProbe struct {
	BaseProbe
	Grants    int
	Releases  int
	Blocks    int
	Completes int
	Retired   int
	Spans     int
}

// Grant implements Probe.
func (c *CountingProbe) Grant(int, *implement.Implement, time.Duration) { c.Grants++ }

// Release implements Probe.
func (c *CountingProbe) Release(int, *implement.Implement, time.Duration) { c.Releases++ }

// Block implements Probe.
func (c *CountingProbe) Block(int, SpanKind, palette.Color, time.Duration) { c.Blocks++ }

// Complete implements Probe.
func (c *CountingProbe) Complete(int, workplan.Task, time.Duration) { c.Completes++ }

// ProcDone implements Probe.
func (c *CountingProbe) ProcDone(int, time.Duration) { c.Retired++ }

// Span implements Probe.
func (c *CountingProbe) Span(Span) { c.Spans++ }

// SpanCollector accumulates every span the engine emits — a traced run's
// Result.Trace, reconstructed through the probe layer. It lets exporters
// (Gantt, Chrome trace, animations) observe an untraced run.
type SpanCollector struct {
	BaseProbe
	Spans []Span
}

// Span implements Probe.
func (s *SpanCollector) Span(sp Span) { s.Spans = append(s.Spans, sp) }
