package sim

// The engine's fault-injection hook. The discussion section of the paper
// treats the activity as a real machine — students slow down mid-run,
// markers get handed over sluggishly, a crayon snaps, a cell has to be
// recolored because the first pass barely left pigment — and the engine
// models those failure modes through one seam: a FaultInjector installed
// on the run's config. The injector is consulted at four points of the
// event loop (advance, grant, service computation, paint completion), so
// every TaskSource policy — static plans, the shared bag, work stealing —
// experiences exactly the same physics under the same fault plan.
//
// Contract: an injector must be deterministic (a pure function of its
// configuration and the call arguments — no internal mutable state, no
// wall clock) and goroutine-safe, because one injector value may be
// shared by many concurrently executing pooled runs. The engine does all
// the tallying: per-run fault counts land in Result.Faults, never inside
// the injector. A nil injector is the fast path — the engine only pays a
// nil check per decision point.
//
// Faults injected through this interface are *safe* by construction:
// they add virtual time or extra work, but the run still paints every
// cell and the final grid still matches the flag's reference raster.
// The one deliberate exception is the UnsoundInjector extension below,
// which exists so correctness oracles have a real engine bug to catch.

import (
	"time"

	"flagsim/internal/implement"
	"flagsim/internal/workplan"
)

// FaultInjector is the engine's fault hook. All three executors consult
// the same injector at the same decision points, so a fault plan is
// executor-independent. Implementations must be deterministic and
// goroutine-safe (see the package note above).
type FaultInjector interface {
	// StallUntil returns the virtual time until which processor pi is
	// stalled, given that it is about to act at now. A return <= now
	// means no stall. The engine re-asks after the stall elapses, so an
	// implementation must eventually return <= now for time to advance.
	StallUntil(pi int, now time.Duration) time.Duration
	// ServiceFactor multiplies pi's service time for task (degraded
	// implement classes, a tired student). Must be > 0; 1 means no
	// degradation. Factors < 1 would let a fault plan speed a run up and
	// are rejected by fault.Plan validation.
	ServiceFactor(pi int, task workplan.Task) float64
	// ForcedBreak reports whether this paint breaks the implement over
	// and above the implement's own stochastic breakage model.
	ForcedBreak(pi int, task workplan.Task) bool
	// HandoffDelay returns extra pickup time when pi acquires im in a
	// handoff (any acquisition after the implement's first).
	HandoffDelay(pi int, im *implement.Implement, at time.Duration) time.Duration
	// PaintFails reports whether pi's attempt at task fails, forcing a
	// full repaint of the cell. attempt is 0-based; an implementation
	// must return false for some attempt or the cell never completes.
	PaintFails(pi int, task workplan.Task, attempt int) bool
}

// UnsoundInjector is the oracle self-test backdoor: an injector that also
// implements it can instruct the engine to drop a cell's grid write while
// still reporting the task complete — a seeded lost-update bug. The run
// finishes normally, the statistics look plausible, and the final grid is
// silently wrong, which is exactly the failure class the check package's
// invariant oracle and differential harness must detect. Never use outside
// verification tests.
type UnsoundInjector interface {
	// LosePaint reports whether the grid write for pi's completed task
	// should be dropped.
	LosePaint(pi int, task workplan.Task) bool
}

// FaultStats tallies what a run's fault injector actually did. The engine
// counts; injectors stay stateless.
type FaultStats struct {
	// Injected reports whether a fault injector was installed at all —
	// a plan whose faults never triggered still marks the run as faulted.
	Injected bool
	// Stalls counts stall windows served; StallTime is their total
	// inserted delay.
	Stalls    int
	StallTime time.Duration
	// DegradedCells counts paints whose service time was multiplied.
	DegradedCells int
	// ForcedBreaks counts injector-forced implement breakages (the
	// implement's own stochastic breaks are Result.Breaks).
	ForcedBreaks int
	// HandoffDelays counts delayed handoffs; HandoffDelayTime is their
	// total inserted delay.
	HandoffDelays    int
	HandoffDelayTime time.Duration
	// Repaints counts failed paint attempts that forced a repaint.
	Repaints int
	// LostPaints counts grid writes dropped by an UnsoundInjector. Any
	// non-zero value means the run is intentionally corrupt.
	LostPaints int
}

// Any reports whether the injector changed anything about the run.
func (f FaultStats) Any() bool {
	return f.Stalls > 0 || f.DegradedCells > 0 || f.ForcedBreaks > 0 ||
		f.HandoffDelays > 0 || f.Repaints > 0 || f.LostPaints > 0
}
