package sim

// Run arenas: the allocation story of the engine.
//
// Every executor run needs the same per-run state — the engine's flat
// processor/implement slices, the per-color index tables and wait rings,
// the layer counters, a grid, the task source's scratch, and a Result.
// An Arena owns all of it in reusable buffers, so a *warm* run (second
// and later runs of same-shaped workloads through one arena) performs
// zero heap allocations: every buffer is capacity-checked and resliced
// instead of remade, the kernel's event queue is recycled via
// devent.Kernel.Reset, and continuations are op-coded events rather
// than closures.
//
// Two ownership modes:
//
//   - Owned (NewArena): the caller holds the arena and runs through it
//     via Config.Arena / DynamicConfig.Arena. The returned Result — its
//     stats slices, trace, synthesized plan, and Grid — is arena memory,
//     valid only until the arena's next run. Maximum reuse, caller takes
//     the aliasing contract. An owned arena is not safe for concurrent
//     use; give each goroutine its own.
//
//   - Pooled (no Arena configured): runs draw a shared arena from a
//     sync.Pool. Engine-internal scratch is recycled, but everything the
//     Result can see (the Result itself, stats slices, trace, grid,
//     synthesized plans) is allocated fresh, because callers — the
//     Sweeper memoizes *sim.Result indefinitely — may hold the Result
//     long after the arena has moved on to another run.
//
// Sizing is deterministic: every buffer's required capacity is a
// function of run-invariant quantities (processor count, implement
// count, total task count, layer count, grid size), never of stochastic
// run outcomes. That is what makes "warm" well-defined — one cold run
// grows every buffer to its final size and every subsequent run of the
// same shape allocates nothing, even though service times and breakages
// differ run to run.
//
// The arena also memoizes pointer-keyed validation: re-running the same
// *workplan.Plan / *implement.Set / *flagspec.Flag through one arena
// skips the O(tasks) validation walk and the strategy-string formatting.
// Holding the cached pointer in the arena pins the object, so pointer
// equality is a sound cache key for these immutable-by-convention
// inputs.

import (
	"fmt"
	"sync"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/workplan"
)

// Arena is a reusable run context: engine state, task-source scratch,
// and (in owned mode) result storage, recycled across runs. The zero
// value is NOT ready — use NewArena, or leave Config.Arena nil to use
// the internal pool.
type Arena struct {
	e     Engine
	owned bool

	// Engine scratch.
	procBuf       []procState
	implBuf       []implState
	byColorBuf    []int32
	layerRemBuf   []int
	layerIsDepBuf []bool
	grid          grid.Grid

	// Task-source scratch (one of each policy; an arena can alternate
	// between executors without reallocating).
	plan  planSource
	bag   bagSource
	steal stealSource
	rec   assignRecorder

	// Owned-mode result storage.
	result       Result
	traceBuf     []Span
	procStatsBuf []ProcStats
	implStatsBuf []ImplementStats
	synthPlan    workplan.Plan
	perProcBuf   [][]workplan.Task
	taskBuf      []workplan.Task

	// Pointer-keyed validation and formatting caches.
	vPlan           *workplan.Plan
	vSet            *implement.Set
	vDynFlag        *flagspec.Flag
	vDynSet         *implement.Set
	seqFlag         *flagspec.Flag
	seqW, seqH      int
	seqPlan         *workplan.Plan
	stratPolicy     PullPolicy
	stratProcs      int
	stratDyn        string
	stealPlanCached *workplan.Plan
	stratSteal      string
}

// NewArena returns an owned arena. Configure it on Config.Arena or
// DynamicConfig.Arena; each run through it reuses the arena's buffers,
// and the returned Result aliases arena memory valid only until the next
// run through the same arena.
func NewArena() *Arena {
	a := &Arena{owned: true}
	a.e.kernel.SetHandler(a.e.dispatch)
	return a
}

// arenaPool recycles pooled arenas across runs that did not bring their
// own. Pooled arenas never own result-visible memory (see bind and
// buildResult), so returning one to the pool cannot invalidate any
// Result a caller still holds.
var arenaPool = sync.Pool{New: func() any {
	a := &Arena{}
	a.e.kernel.SetHandler(a.e.dispatch)
	return a
}}

// acquireArena resolves the run's arena: the caller's own, or one from
// the pool. pooled tells the caller to return it when the run is done.
func acquireArena(explicit *Arena) (a *Arena, pooled bool) {
	if explicit != nil {
		return explicit, false
	}
	return arenaPool.Get().(*Arena), true
}

// bind configures the arena's engine for one run, reusing every scratch
// buffer whose capacity suffices. It also selects the dispatch variant
// (fast vs instrumented) once, so the event loop never re-checks.
func (a *Arena) bind(cfg engineConfig) *Engine {
	e := &a.e
	e.kernel.Reset()
	e.ctx = cfg.ctx
	e.source = cfg.source
	e.hold = cfg.hold
	e.setup = cfg.setup
	e.tracing = cfg.trace
	e.observing = cfg.trace || len(cfg.probes) > 0
	e.probes = resolveProbes(cfg.probes)
	e.faults = cfg.faults
	e.unsound = nil
	e.fstats = FaultStats{}
	if cfg.faults != nil {
		e.fstats.Injected = true
		if u, ok := cfg.faults.(UnsoundInjector); ok {
			e.unsound = u
		}
	}

	// The one-time specialization: with no probe, no trace, and no fault
	// injector, the run executes the fast opcode bodies, which contain no
	// hook sites at all. Anything observable selects the instrumented
	// twins.
	e.instrumented = e.observing || cfg.faults != nil
	if e.instrumented {
		e.opAdvance, e.opPaintDone, e.opPutDown = opAdvanceInst, opPaintDoneInst, opPutDownInst
	} else {
		e.opAdvance, e.opPaintDone, e.opPutDown = opAdvanceFast, opPaintDoneFast, opPutDownFast
	}
	// Downcast the source once so the event loop calls it directly (see
	// srcSelect). Span batching additionally requires the fast opcodes,
	// which only ever run when instrumented is false.
	e.plansrc, e.bagsrc, e.stealsrc = nil, nil, nil
	switch s := cfg.source.(type) {
	case *planSource:
		e.plansrc = s
	case *bagSource:
		e.bagsrc = s
	case *stealSource:
		e.stealsrc = s
	}

	e.trace = nil
	if e.tracing && a.owned {
		e.trace = a.traceBuf[:0]
	}

	n := len(cfg.procs)
	if cap(a.procBuf) < n {
		a.procBuf = make([]procState, n)
	}
	e.procs = a.procBuf[:n]
	for i, pr := range cfg.procs {
		pr.ResetRun()
		e.procs[i] = procState{proc: pr, holding: -1, stats: ProcStats{Name: pr.Name}}
	}

	all := cfg.set.All()
	m := len(all)
	if cap(a.implBuf) < m {
		a.implBuf = make([]implState, m)
	}
	e.impls = a.implBuf[:m]
	var counts [palette.NColors]int
	for i, im := range all {
		e.impls[i] = implState{im: im, holder: -1,
			stats: ImplementStats{ID: im.ID, Color: im.Color, Kind: im.Kind}}
		counts[im.Color]++
	}
	// Carve the per-color index table out of one backing array. The
	// three-index sub-slices cap each segment exactly, so the appends
	// below fill in place and can never spill into a neighbor.
	if cap(a.byColorBuf) < m {
		a.byColorBuf = make([]int32, m)
	}
	pos := 0
	for c := range e.byColor {
		e.byColor[c] = a.byColorBuf[pos : pos : pos+counts[c]]
		pos += counts[c]
	}
	for i, im := range all {
		e.byColor[im.Color] = append(e.byColor[im.Color], int32(i))
	}
	for c := range e.queues {
		e.queues[c].reset(n)
	}

	layers := len(cfg.layerCellCount)
	if cap(a.layerRemBuf) < layers {
		a.layerRemBuf = make([]int, layers)
	}
	e.layerRemaining = a.layerRemBuf[:layers]
	copy(e.layerRemaining, cfg.layerCellCount)
	e.layerDeps = cfg.layerDeps
	if cap(a.layerIsDepBuf) < layers {
		a.layerIsDepBuf = make([]bool, layers)
	}
	e.layerIsDep = a.layerIsDepBuf[:layers]
	for i := range e.layerIsDep {
		e.layerIsDep[i] = false
	}
	for _, deps := range cfg.layerDeps {
		for _, d := range deps {
			e.layerIsDep[d] = true
		}
	}

	if a.owned {
		a.grid.Reuse(cfg.w, cfg.h)
		e.grid = &a.grid
	} else {
		// Pooled: the grid is result-visible, so it must outlive the
		// arena's next run.
		e.grid = grid.New(cfg.w, cfg.h)
	}

	e.breaks = 0
	e.err = nil
	e.synthEvents = 0
	return e
}

// buildResult assembles the shared Result fields; the caller supplies
// the workload description (static plans pass theirs, bag/steal sources
// synthesize the executed assignment). Owned arenas reuse their result
// storage; pooled arenas allocate it fresh because the Result escapes.
func (a *Arena) buildResult(e *Engine, plan *workplan.Plan, makespan time.Duration) *Result {
	var res *Result
	if a.owned {
		res = &a.result
		*res = Result{}
		if cap(a.procStatsBuf) < len(e.procs) {
			a.procStatsBuf = make([]ProcStats, len(e.procs))
		}
		res.Procs = a.procStatsBuf[:len(e.procs)]
		if cap(a.implStatsBuf) < len(e.impls) {
			a.implStatsBuf = make([]ImplementStats, len(e.impls))
		}
		res.Implements = a.implStatsBuf[:len(e.impls)]
		if e.trace != nil {
			// Keep the grown span buffer for the next traced run.
			a.traceBuf = e.trace
		}
	} else {
		res = &Result{
			Procs:      make([]ProcStats, len(e.procs)),
			Implements: make([]ImplementStats, len(e.impls)),
		}
	}
	for i := range e.procs {
		res.Procs[i] = e.procs[i].stats
	}
	for i := range e.impls {
		res.Implements[i] = e.impls[i].stats
	}
	res.Plan = plan
	res.Makespan = makespan
	res.SetupTime = e.setup
	res.Grid = e.grid
	res.Breaks = e.breaks
	res.Trace = e.trace
	// Events counts logical engine events: kernel events plus the
	// per-cell completions elided by fast-path span batching, so batched
	// and unbatched runs report identical event counts.
	res.Events = e.kernel.Processed() + e.synthEvents
	res.MaxEventQueue = e.kernel.MaxDepth()
	res.Faults = e.fstats
	return res
}

// validateStatic rejects inconsistent static configurations up front so
// the event loop never deadlocks on impossible inputs. The O(tasks)
// walks (plan validation, color coverage) are memoized on the
// (plan, set) pointer pair — the arena pins both, so pointer equality
// implies the same already-validated inputs.
func (a *Arena) validateStatic(cfg *Config) error {
	if cfg.Plan == nil {
		return fmt.Errorf("sim: nil plan")
	}
	cached := a.vPlan == cfg.Plan && a.vSet == cfg.Set
	if !cached {
		if err := cfg.Plan.Validate(); err != nil {
			return err
		}
	}
	if len(cfg.Procs) != cfg.Plan.NumProcs() {
		return fmt.Errorf("sim: plan wants %d processors, got %d", cfg.Plan.NumProcs(), len(cfg.Procs))
	}
	if cfg.Set == nil {
		return fmt.Errorf("sim: nil implement set")
	}
	if !cached {
		var need [palette.NColors]bool
		for _, tasks := range cfg.Plan.PerProc {
			for _, t := range tasks {
				need[t.Color] = true
			}
		}
		for _, c := range palette.All() {
			if need[c] && !cfg.Set.Has(c) {
				return fmt.Errorf("implement: set has no %s implement", c)
			}
		}
		a.vPlan, a.vSet = cfg.Plan, cfg.Set
	}
	if cfg.Setup < 0 {
		return fmt.Errorf("sim: negative setup time")
	}
	return nil
}

// planSourceFor rebinds the arena's static plan policy to plan.
func (a *Arena) planSourceFor(plan *workplan.Plan) *planSource {
	s := &a.plan
	s.plan = plan
	n := plan.NumProcs()
	if cap(s.next) < n {
		s.next = make([]int, n)
	} else {
		s.next = s.next[:n]
	}
	for i := range s.next {
		s.next[i] = 0
	}
	s.layerWaiters = reuseWaiters(s.layerWaiters, len(plan.LayerCellCount), n)
	return s
}

// reuseWaiters resizes a per-layer waiter table to layers entries, each
// an empty slice with capacity for every processor, keeping grown
// backing arrays.
func reuseWaiters(buf [][]int, layers, procs int) [][]int {
	if cap(buf) < layers {
		nbuf := make([][]int, layers)
		copy(nbuf, buf[:cap(buf)])
		buf = nbuf
	} else {
		buf = buf[:layers]
	}
	for i := range buf {
		if cap(buf[i]) < procs {
			buf[i] = make([]int, 0, procs)
		} else {
			buf[i] = buf[i][:0]
		}
	}
	return buf
}

// assignRecorder captures the executed (processor, task) assignment of a
// dynamic or stealing run in flat append-only arrays, deferring the
// per-processor plan construction to one materialize pass at the end —
// the zero-alloc replacement for growing per-processor task slices
// during the run.
type assignRecorder struct {
	tasks  []workplan.Task
	procs  []int32
	counts []int
}

// reset prepares the recorder for a run of at most total completions
// across nprocs processors.
func (r *assignRecorder) reset(nprocs, total int) {
	if cap(r.tasks) < total {
		r.tasks = make([]workplan.Task, 0, total)
	}
	r.tasks = r.tasks[:0]
	if cap(r.procs) < total {
		r.procs = make([]int32, 0, total)
	}
	r.procs = r.procs[:0]
	if cap(r.counts) < nprocs {
		r.counts = make([]int, nprocs)
	}
	r.counts = r.counts[:nprocs]
	for i := range r.counts {
		r.counts[i] = 0
	}
}

func (r *assignRecorder) record(pi int, t workplan.Task) {
	r.tasks = append(r.tasks, t)
	r.procs = append(r.procs, int32(pi))
	r.counts[pi]++
}

// materialize builds the per-processor task lists in completion order.
// Owned arenas carve them out of reusable backing; pooled arenas
// allocate fresh because the lists land in the escaping Result's plan.
// Processors that painted nothing get a nil list, matching what
// incremental appends would have produced.
func (r *assignRecorder) materialize(a *Arena, nprocs int) [][]workplan.Task {
	var heads [][]workplan.Task
	var backing []workplan.Task
	total := len(r.tasks)
	if a.owned {
		if cap(a.perProcBuf) < nprocs {
			a.perProcBuf = make([][]workplan.Task, nprocs)
		}
		heads = a.perProcBuf[:nprocs]
		if cap(a.taskBuf) < total {
			a.taskBuf = make([]workplan.Task, total)
		}
		backing = a.taskBuf[:total]
	} else {
		heads = make([][]workplan.Task, nprocs)
		backing = make([]workplan.Task, total)
	}
	pos := 0
	for pi := 0; pi < nprocs; pi++ {
		if r.counts[pi] == 0 {
			heads[pi] = nil
			continue
		}
		heads[pi] = backing[pos : pos : pos+r.counts[pi]]
		pos += r.counts[pi]
	}
	for i, t := range r.tasks {
		pi := r.procs[i]
		heads[pi] = append(heads[pi], t)
	}
	return heads
}
