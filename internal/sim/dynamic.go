package sim

import (
	"fmt"
	"time"

	"flagsim/internal/devent"
	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/processor"
	"flagsim/internal/workplan"
)

// Dynamic (self-scheduling) execution: instead of a fixed per-processor
// plan, every cell sits in a shared bag and an idle processor pulls its
// next task at run time. This is how a team actually behaves when told
// "just finish the flag together", and it is the classic answer to the
// load-imbalance lesson: a slow student simply colors fewer cells.
//
// Two pull policies are modeled:
//
//   - PullOrdered: take the globally next unpainted cell (lowest layer,
//     reading order) — maximally fair, maximally implement-thrashing;
//   - PullColorAffinity: prefer the next cell matching the implement
//     already in hand, falling back to the global order — what students
//     converge on after the contention discussion.
//
// Layer dependencies are honored: a cell becomes available only when
// every prerequisite layer is fully painted.

// PullPolicy selects how an idle processor chooses its next cell.
type PullPolicy uint8

// Pull policies.
const (
	PullOrdered PullPolicy = iota
	PullColorAffinity
)

// String names the policy.
func (p PullPolicy) String() string {
	switch p {
	case PullOrdered:
		return "pull-ordered"
	case PullColorAffinity:
		return "pull-color-affinity"
	default:
		return fmt.Sprintf("pull-policy(%d)", uint8(p))
	}
}

// DynamicConfig describes a self-scheduled run.
type DynamicConfig struct {
	// Flag and W, H define the workload (the full layered paint job).
	Flag *flagspec.Flag
	W, H int
	// Procs are the students; any number >= 1.
	Procs []*processor.Processor
	// Set is the shared implement pool.
	Set *implement.Set
	// Policy selects the pull rule; default PullOrdered.
	Policy PullPolicy
	// Setup is the serial organization phase.
	Setup time.Duration
	// Trace records spans.
	Trace bool
}

// dynState extends the static machinery with the shared bag.
type dynState struct {
	cfg    *DynamicConfig
	kernel *devent.Kernel
	grid   *grid.Grid
	procs  []*procState
	impls  []*implState

	byColor map[palette.Color][]*implState
	queues  map[palette.Color][]int

	// bag[l] holds the unclaimed tasks of layer l in reading order.
	bag            [][]workplan.Task
	layerRemaining []int // unpainted cells per layer (for dependencies)
	layerDeps      [][]int
	idle           []bool // processors parked because nothing was available
	trace          []Span
	breaks         int
	err            error
	assigned       [][]workplan.Task // executed tasks per proc, for the Result
}

// RunDynamic executes the self-scheduled run.
func RunDynamic(cfg DynamicConfig) (*Result, error) {
	if cfg.Flag == nil {
		return nil, fmt.Errorf("sim: nil flag")
	}
	w, h := cfg.W, cfg.H
	if w <= 0 {
		w = cfg.Flag.DefaultW
	}
	if h <= 0 {
		h = cfg.Flag.DefaultH
	}
	if len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("sim: no processors")
	}
	if cfg.Set == nil {
		return nil, fmt.Errorf("sim: nil implement set")
	}
	if err := cfg.Set.Covers(cfg.Flag.Colors()); err != nil {
		return nil, err
	}
	if cfg.Setup < 0 {
		return nil, fmt.Errorf("sim: negative setup")
	}
	// Build the bag from a sequential plan: one entry per (layer, cell).
	seq, err := workplan.Sequential(cfg.Flag, w, h)
	if err != nil {
		return nil, err
	}
	st := &dynState{
		cfg:     &cfg,
		kernel:  devent.New(),
		grid:    grid.New(w, h),
		byColor: make(map[palette.Color][]*implState),
		queues:  make(map[palette.Color][]int),
		bag:     make([][]workplan.Task, len(cfg.Flag.Layers)),
		idle:    make([]bool, len(cfg.Procs)),
	}
	for _, t := range seq.PerProc[0] {
		st.bag[t.Layer] = append(st.bag[t.Layer], t)
	}
	st.layerRemaining = append([]int(nil), seq.LayerCellCount...)
	st.layerDeps = seq.LayerDeps
	st.assigned = make([][]workplan.Task, len(cfg.Procs))

	for _, pr := range cfg.Procs {
		pr.ResetRun()
		st.procs = append(st.procs, &procState{proc: pr, stats: ProcStats{Name: pr.Name}})
	}
	for _, im := range cfg.Set.All() {
		is := &implState{im: im, holder: -1,
			stats: ImplementStats{ID: im.ID, Color: im.Color, Kind: im.Kind}}
		st.impls = append(st.impls, is)
		st.byColor[im.Color] = append(st.byColor[im.Color], is)
	}

	if cfg.Trace && cfg.Setup > 0 {
		for i := range st.procs {
			st.trace = append(st.trace, Span{Proc: i, Kind: SpanSetup, Start: 0, End: cfg.Setup})
		}
	}
	for i := range st.procs {
		i := i
		if err := st.kernel.Schedule(cfg.Setup, func() { st.advance(i) }); err != nil {
			return nil, err
		}
	}
	makespan := st.kernel.Run()
	if st.err != nil {
		return nil, st.err
	}
	for _, remaining := range st.layerRemaining {
		if remaining != 0 {
			return nil, fmt.Errorf("sim: dynamic run stalled with %d cells left", remaining)
		}
	}

	// Synthesize the executed assignment as a Plan so the Result carries
	// the usual workload description.
	plan := &workplan.Plan{
		FlagName: cfg.Flag.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("dynamic-%s(p=%d)", cfg.Policy, len(cfg.Procs)),
		PerProc:        st.assigned,
		LayerDeps:      st.layerDeps,
		LayerCellCount: seq.LayerCellCount,
		Overpainted:    true,
	}
	res := &Result{
		Plan:      plan,
		Makespan:  makespan,
		SetupTime: cfg.Setup,
		Grid:      st.grid,
		Breaks:    st.breaks,
		Trace:     st.trace,
		Events:    st.kernel.Processed(),
	}
	for _, ps := range st.procs {
		res.Procs = append(res.Procs, ps.stats)
	}
	for _, is := range st.impls {
		res.Implements = append(res.Implements, is.stats)
	}
	return res, nil
}

// nextTask claims the next available task for processor pi under the
// configured policy, or reports none.
func (st *dynState) nextTask(pi int) (workplan.Task, bool) {
	ps := st.procs[pi]
	// Availability: every layer whose deps are complete.
	available := func(l int) bool {
		for _, d := range st.layerDeps[l] {
			if st.layerRemaining[d] > 0 {
				return false
			}
		}
		return len(st.bag[l]) > 0
	}
	if st.cfg.Policy == PullColorAffinity {
		if ps.holding != nil {
			// Prefer cells matching the implement in hand.
			for l := range st.bag {
				if !available(l) {
					continue
				}
				for i, t := range st.bag[l] {
					if t.Color == ps.holding.Color {
						st.bag[l] = append(st.bag[l][:i], st.bag[l][i+1:]...)
						return t, true
					}
				}
			}
		} else {
			// Empty-handed: prefer a color whose implement is free right
			// now — a student grabs an idle marker rather than queueing
			// behind a teammate.
			for l := range st.bag {
				if !available(l) {
					continue
				}
				for i, t := range st.bag[l] {
					if st.freeImplement(t.Color) != nil {
						st.bag[l] = append(st.bag[l][:i], st.bag[l][i+1:]...)
						return t, true
					}
				}
			}
		}
	}
	for l := range st.bag {
		if available(l) {
			t := st.bag[l][0]
			st.bag[l] = st.bag[l][1:]
			return t, true
		}
	}
	return workplan.Task{}, false
}

// anyBagged reports whether any cell remains unclaimed.
func (st *dynState) anyBagged() bool {
	for _, b := range st.bag {
		if len(b) > 0 {
			return true
		}
	}
	return false
}

// advance drives processor pi: claim a task, secure the implement, paint.
func (st *dynState) advance(pi int) {
	if st.err != nil {
		return
	}
	ps := st.procs[pi]
	now := st.kernel.Now()

	task, ok := st.nextTask(pi)
	if !ok {
		if !st.anyBagged() {
			// Fully done (or only in-flight cells remain): release and
			// finish.
			if ps.holding != nil {
				st.release(pi, now)
			}
			if ps.stats.Finish < now {
				ps.stats.Finish = now
			}
			return
		}
		// Cells remain but are dependency-blocked: park as idle; painters
		// finishing layer cells will wake us.
		if ps.holding != nil {
			st.putDown(pi, now)
			return
		}
		st.idle[pi] = true
		ps.waitStart = now
		return
	}

	// Need the implement for task.Color.
	if ps.holding != nil && ps.holding.Color != task.Color {
		// Put the task back (front of its layer) and switch implements.
		st.bag[task.Layer] = append([]workplan.Task{task}, st.bag[task.Layer]...)
		st.putDown(pi, now)
		return
	}
	if ps.holding == nil {
		if is := st.freeImplement(task.Color); is != nil {
			// Re-bag the task; after pickup the processor re-advances and
			// claims again (possibly the same cell).
			st.bag[task.Layer] = append([]workplan.Task{task}, st.bag[task.Layer]...)
			st.grant(pi, is, now)
			return
		}
		// Queue for the color, task goes back in the bag.
		st.bag[task.Layer] = append([]workplan.Task{task}, st.bag[task.Layer]...)
		st.queues[task.Color] = append(st.queues[task.Color], pi)
		ps.waitStart = now
		depth := len(st.queues[task.Color])
		for _, is := range st.byColor[task.Color] {
			if depth > is.stats.MaxQueue {
				is.stats.MaxQueue = depth
			}
		}
		return
	}

	// Holding the right implement: paint.
	service := ps.proc.ServiceTime(task.Cell, ps.holding)
	var repair time.Duration
	if ps.proc.Breaks(ps.holding) {
		repair = ps.holding.Spec.Repair
		st.breaks++
		st.implStateOfDyn(ps.holding).stats.Breakages++
		if st.cfg.Trace && repair > 0 {
			st.trace = append(st.trace, Span{Proc: pi, Kind: SpanRepair,
				Start: now + service, End: now + service + repair, Color: task.Color})
		}
	}
	if st.cfg.Trace {
		st.trace = append(st.trace, Span{Proc: pi, Kind: SpanPaint,
			Start: now, End: now + service, Color: task.Color, Cell: task.Cell})
	}
	if !ps.painted {
		ps.painted = true
		ps.stats.FirstPaint = now
	}
	ps.stats.PaintTime += service
	ps.stats.Overhead += repair
	st.scheduleAfter(service+repair, func() {
		if err := st.grid.Paint(task.Cell, task.Color); err != nil {
			st.err = err
			return
		}
		ps.stats.Cells++
		st.assigned[pi] = append(st.assigned[pi], task)
		st.layerRemaining[task.Layer]--
		if st.layerRemaining[task.Layer] == 0 {
			st.wakeIdle()
		}
		st.advance(pi)
	})
}

// wakeIdle reschedules every idle processor (a layer completed, so new
// work may be available).
func (st *dynState) wakeIdle() {
	now := st.kernel.Now()
	for pi, parked := range st.idle {
		if !parked {
			continue
		}
		st.idle[pi] = false
		ps := st.procs[pi]
		ps.stats.WaitLayer += now - ps.waitStart
		if st.cfg.Trace && now > ps.waitStart {
			st.trace = append(st.trace, Span{Proc: pi, Kind: SpanWaitLayer,
				Start: ps.waitStart, End: now})
		}
		pi := pi
		st.scheduleAfter(0, func() { st.advance(pi) })
	}
}

// putDown spends put-down time and releases, then re-advances.
func (st *dynState) putDown(pi int, now time.Duration) {
	ps := st.procs[pi]
	d := ps.holding.Spec.PutDown
	if st.cfg.Trace && d > 0 {
		st.trace = append(st.trace, Span{Proc: pi, Kind: SpanPutDown,
			Start: now, End: now + d, Color: ps.holding.Color})
	}
	ps.stats.Overhead += d
	st.scheduleAfter(d, func() {
		st.release(pi, st.kernel.Now())
		st.advance(pi)
	})
}

// The following mirror the static executor's resource mechanics.

func (st *dynState) freeImplement(c palette.Color) *implState {
	for _, is := range st.byColor[c] {
		if is.holder == -1 {
			return is
		}
	}
	return nil
}

func (st *dynState) grant(pi int, is *implState, now time.Duration) {
	ps := st.procs[pi]
	is.holder = pi
	is.busySince = now
	is.acquired++
	if is.acquired > 1 {
		is.stats.Handoffs++
	}
	pickup := is.im.Spec.Pickup
	if st.cfg.Trace && pickup > 0 {
		st.trace = append(st.trace, Span{Proc: pi, Kind: SpanPickup,
			Start: now, End: now + pickup, Color: is.im.Color})
	}
	ps.stats.Overhead += pickup
	ps.holding = is.im
	st.scheduleAfter(pickup, func() { st.advance(pi) })
}

func (st *dynState) release(pi int, now time.Duration) {
	ps := st.procs[pi]
	is := st.implStateOfDyn(ps.holding)
	ps.holding = nil
	is.holder = -1
	is.stats.BusyTime += now - is.busySince

	c := is.im.Color
	q := st.queues[c]
	if len(q) == 0 {
		return
	}
	next := q[0]
	st.queues[c] = q[1:]
	waiter := st.procs[next]
	waiter.stats.WaitImplement += now - waiter.waitStart
	if st.cfg.Trace && now > waiter.waitStart {
		st.trace = append(st.trace, Span{Proc: next, Kind: SpanWaitImplement,
			Start: waiter.waitStart, End: now, Color: c})
	}
	st.grant(next, is, now)
}

func (st *dynState) implStateOfDyn(im *implement.Implement) *implState {
	for _, is := range st.byColor[im.Color] {
		if is.im == im {
			return is
		}
	}
	panic("sim: implement not in set")
}

func (st *dynState) scheduleAfter(d time.Duration, fn func()) {
	if err := st.kernel.Schedule(d, fn); err != nil && st.err == nil {
		st.err = err
	}
}
