package sim

import (
	"context"
	"fmt"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/processor"
	"flagsim/internal/workplan"
)

// Dynamic (self-scheduling) execution: instead of a fixed per-processor
// plan, every cell sits in a shared bag and an idle processor pulls its
// next task at run time. This is how a team actually behaves when told
// "just finish the flag together", and it is the classic answer to the
// load-imbalance lesson: a slow student simply colors fewer cells.
//
// Two pull policies are modeled:
//
//   - PullOrdered: take the globally next unpainted cell (lowest layer,
//     reading order) — maximally fair, maximally implement-thrashing;
//   - PullColorAffinity: prefer the next cell matching the implement
//     already in hand, falling back to the global order — what students
//     converge on after the contention discussion.
//
// Layer dependencies are honored: a cell becomes available only when
// every prerequisite layer is fully painted.

// PullPolicy selects how an idle processor chooses its next cell.
type PullPolicy uint8

// Pull policies.
const (
	PullOrdered PullPolicy = iota
	PullColorAffinity
)

// String names the policy.
func (p PullPolicy) String() string {
	switch p {
	case PullOrdered:
		return "pull-ordered"
	case PullColorAffinity:
		return "pull-color-affinity"
	default:
		return fmt.Sprintf("pull-policy(%d)", uint8(p))
	}
}

// DynamicConfig describes a self-scheduled run.
type DynamicConfig struct {
	// Flag and W, H define the workload (the full layered paint job).
	Flag *flagspec.Flag
	W, H int
	// Procs are the students; any number >= 1.
	Procs []*processor.Processor
	// Set is the shared implement pool.
	Set *implement.Set
	// Policy selects the pull rule; default PullOrdered.
	Policy PullPolicy
	// Setup is the serial organization phase.
	Setup time.Duration
	// Trace records spans.
	Trace bool
	// Probes observe engine events.
	Probes []Probe
	// Faults, when non-nil, injects deterministic faults into the run;
	// see FaultInjector.
	Faults FaultInjector
	// Arena, when non-nil, runs through the caller-owned arena (the
	// Result aliases arena memory — see Config.Arena and arena.go).
	Arena *Arena
}

// bagSource is the self-scheduling policy: a shared bag of unclaimed
// tasks, pulled at run time under the configured policy. Processors that
// find no available work park globally and wake on any layer completion.
//
// Layout: the bag is an intrusive doubly-linked ring per layer, threaded
// through index arrays over the fixed sequential task list. Claiming
// unlinks a node and requeueing relinks it at the ring's front — both
// O(1) with zero allocation and zero copying, where the slice-splice
// representation this replaced spent half the dynamic executor's CPU in
// memmove. Per-layer color counts let the affinity policy skip whole
// layers without walking their rings.
type bagSource struct {
	policy PullPolicy
	// tasks is the sequential task list (one entry per layer cell), read
	// only; ring links address tasks by index into it.
	tasks []workplan.Task
	// next and prev hold the rings. Nodes 0..len(tasks)-1 are tasks;
	// node len(tasks)+l is layer l's sentinel. next[sentinel] is the
	// layer's head (claim order), prev[sentinel] its tail.
	next, prev []int32
	nlayers    int
	w, wh      int
	// taskIdx maps layer*wh + y*w + x to the task's ring node, for O(1)
	// requeue of a claimed task.
	taskIdx []int32
	// colorCount[l][c] counts bagged tasks of color c in layer l.
	colorCount [][palette.NColors]int32
	// bagged counts unclaimed tasks across all layers.
	bagged int
	// idle marks processors parked because nothing was available.
	idle []bool
	// rec records executed tasks per proc, for the Result's plan.
	rec *assignRecorder

	// Initial-state snapshot, keyed on the task list identity. Rebinding
	// to the same tasks (the arena caches the sequential plan, so warm
	// runs always are) restores the rings with three bulk copies instead
	// of relinking every node. taskIdx is not snapshotted: claims and
	// requeues never modify it, so it stays valid as built.
	initFor            *workplan.Task
	initN, initLayers  int
	initW              int
	initNext, initPrev []int32
	initColor          [][palette.NColors]int32
}

// sentinel returns layer l's ring sentinel node.
func (s *bagSource) sentinel(l int) int32 { return int32(len(s.tasks) + l) }

// bagSourceFor rebinds the arena's bag policy to a fresh run over tasks.
func (a *Arena) bagSourceFor(policy PullPolicy, layers, procs int, tasks []workplan.Task, w, h int) *bagSource {
	s := &a.bag
	s.policy = policy
	s.tasks = tasks
	s.nlayers = layers
	s.w, s.wh = w, w*h
	n := len(tasks)
	sz := n + layers
	// Same task list as the previous build (the arena pins the cached
	// sequential plan, so the pointer identifies immutable content, like
	// the other pointer-keyed caches): restore the snapshot instead of
	// relinking node by node.
	if n > 0 && s.initFor == &tasks[0] && s.initN == n && s.initLayers == layers && s.initW == w {
		copy(s.next, s.initNext)
		copy(s.prev, s.initPrev)
		copy(s.colorCount, s.initColor)
	} else {
		if cap(s.next) < sz {
			s.next = make([]int32, sz)
			s.prev = make([]int32, sz)
		} else {
			s.next = s.next[:sz]
			s.prev = s.prev[:sz]
		}
		if cap(s.colorCount) < layers {
			s.colorCount = make([][palette.NColors]int32, layers)
		} else {
			s.colorCount = s.colorCount[:layers]
		}
		for l := range s.colorCount {
			s.colorCount[l] = [palette.NColors]int32{}
		}
		for l := 0; l < layers; l++ {
			si := int32(n + l)
			s.next[si], s.prev[si] = si, si
		}
		idxLen := layers * s.wh
		if cap(s.taskIdx) < idxLen {
			s.taskIdx = make([]int32, idxLen)
		} else {
			s.taskIdx = s.taskIdx[:idxLen]
		}
		for i, t := range tasks {
			// Append at the layer tail: rings hold tasks in input (reading)
			// order, exactly the claim order of the slice bag this replaced.
			si := s.sentinel(t.Layer)
			node := int32(i)
			last := s.prev[si]
			s.next[last] = node
			s.prev[node] = last
			s.next[node] = si
			s.prev[si] = node
			s.colorCount[t.Layer][t.Color]++
			s.taskIdx[t.Layer*s.wh+t.Cell.Y*s.w+t.Cell.X] = node
		}
		if n > 0 {
			if cap(s.initNext) < sz {
				s.initNext = make([]int32, sz)
				s.initPrev = make([]int32, sz)
			} else {
				s.initNext = s.initNext[:sz]
				s.initPrev = s.initPrev[:sz]
			}
			if cap(s.initColor) < layers {
				s.initColor = make([][palette.NColors]int32, layers)
			} else {
				s.initColor = s.initColor[:layers]
			}
			copy(s.initNext, s.next)
			copy(s.initPrev, s.prev)
			copy(s.initColor, s.colorCount)
			s.initFor, s.initN, s.initLayers, s.initW = &tasks[0], n, layers, w
		}
	}
	s.bagged = n
	if cap(s.idle) < procs {
		s.idle = make([]bool, procs)
	} else {
		s.idle = s.idle[:procs]
	}
	for i := range s.idle {
		s.idle[i] = false
	}
	s.rec = &a.rec
	s.rec.reset(procs, n)
	return s
}

// available reports whether layer l has unclaimed tasks whose
// prerequisites are all complete.
func (s *bagSource) available(e *Engine, l int) bool {
	if _, blocked := e.LayerBlocked(l); blocked {
		return false
	}
	si := s.sentinel(l)
	return s.next[si] != si
}

// claim unlinks ring node i and returns its task.
func (s *bagSource) claim(i int32) workplan.Task {
	s.next[s.prev[i]] = s.next[i]
	s.prev[s.next[i]] = s.prev[i]
	t := s.tasks[i]
	s.colorCount[t.Layer][t.Color]--
	s.bagged--
	return t
}

// nextTask claims the next available task for processor pi under the
// configured policy, or reports none.
func (s *bagSource) nextTask(e *Engine, pi int) (workplan.Task, bool) {
	if s.policy == PullColorAffinity {
		if holding := e.Holding(pi); holding != nil {
			// Prefer cells matching the implement in hand. The per-layer
			// color counts skip layers with no match without a ring walk.
			c := holding.Color
			for l := 0; l < s.nlayers; l++ {
				if s.colorCount[l][c] == 0 || !s.available(e, l) {
					continue
				}
				si := s.sentinel(l)
				for i := s.next[si]; i != si; i = s.next[i] {
					if s.tasks[i].Color == c {
						return s.claim(i), true
					}
				}
			}
		} else {
			// Empty-handed: prefer a color whose implement is free right
			// now — a student grabs an idle marker rather than queueing
			// behind a teammate. Layers with no free-implement color are
			// skipped by count before walking the ring.
			for l := 0; l < s.nlayers; l++ {
				if !s.available(e, l) {
					continue
				}
				anyFree := false
				for c := palette.Color(1); c < palette.NColors; c++ {
					if s.colorCount[l][c] > 0 && e.HasFreeImplement(c) {
						anyFree = true
						break
					}
				}
				if !anyFree {
					continue
				}
				si := s.sentinel(l)
				for i := s.next[si]; i != si; i = s.next[i] {
					if e.HasFreeImplement(s.tasks[i].Color) {
						return s.claim(i), true
					}
				}
			}
		}
	}
	for l := 0; l < s.nlayers; l++ {
		if s.available(e, l) {
			return s.claim(s.next[s.sentinel(l)]), true
		}
	}
	return workplan.Task{}, false
}

// Select implements TaskSource: claim a task, park when cells remain but
// are dependency-blocked, retire when the bag is empty (in-flight cells
// may still be painting).
func (s *bagSource) Select(e *Engine, pi int) Selection {
	if task, ok := s.nextTask(e, pi); ok {
		return Selection{Kind: SelectTask, Task: task}
	}
	if s.bagged > 0 {
		return Selection{Kind: SelectWait}
	}
	return Selection{Kind: SelectDone}
}

// Requeue implements TaskSource: the task goes back to the front of its
// layer (after pickup the processor re-advances and claims again,
// possibly the same cell).
func (s *bagSource) Requeue(_ *Engine, _ int, task workplan.Task) {
	i := s.taskIdx[task.Layer*s.wh+task.Cell.Y*s.w+task.Cell.X]
	si := s.sentinel(task.Layer)
	first := s.next[si]
	s.next[si] = i
	s.prev[i] = si
	s.next[i] = first
	s.prev[first] = i
	s.colorCount[task.Layer][task.Color]++
	s.bagged++
}

// Park implements TaskSource: pi idles until any layer completes.
func (s *bagSource) Park(_ *Engine, pi int, _ Selection) {
	s.idle[pi] = true
}

// CellDone implements TaskSource: record the assignment and wake every
// idle processor when a layer completes (new work may be available).
func (s *bagSource) CellDone(e *Engine, pi int, task workplan.Task) {
	s.rec.record(pi, task)
	if e.LayerRemaining(task.Layer) != 0 {
		return
	}
	for w, parked := range s.idle {
		if !parked {
			continue
		}
		s.idle[w] = false
		e.Wake(w)
	}
}

// HasMore implements TaskSource.
func (s *bagSource) HasMore(*Engine, int) bool { return s.bagged > 0 }

// CheckComplete implements TaskSource.
func (s *bagSource) CheckComplete(e *Engine) error {
	for l := 0; l < e.Layers(); l++ {
		if remaining := e.LayerRemaining(l); remaining != 0 {
			return fmt.Errorf("sim: dynamic run stalled with %d cells left", remaining)
		}
	}
	return nil
}

// RunDynamic executes the self-scheduled run.
func RunDynamic(cfg DynamicConfig) (*Result, error) { return RunDynamicCtx(nil, cfg) }

// RunDynamicCtx is RunDynamic with a cancellation context (see RunCtx).
func RunDynamicCtx(ctx context.Context, cfg DynamicConfig) (*Result, error) {
	a, pooled := acquireArena(cfg.Arena)
	if pooled {
		defer arenaPool.Put(a)
	}
	if cfg.Flag == nil {
		return nil, fmt.Errorf("sim: nil flag")
	}
	w, h := cfg.W, cfg.H
	if w <= 0 {
		w = cfg.Flag.DefaultW
	}
	if h <= 0 {
		h = cfg.Flag.DefaultH
	}
	if len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("sim: no processors")
	}
	if cfg.Set == nil {
		return nil, fmt.Errorf("sim: nil implement set")
	}
	// Coverage is memoized on the (flag, set) pointer pair; the arena
	// pins both, so pointer equality implies already-checked inputs.
	if a.vDynFlag != cfg.Flag || a.vDynSet != cfg.Set {
		if err := cfg.Set.Covers(cfg.Flag.Colors()); err != nil {
			return nil, err
		}
		a.vDynFlag, a.vDynSet = cfg.Flag, cfg.Set
	}
	if cfg.Setup < 0 {
		return nil, fmt.Errorf("sim: negative setup")
	}
	// Build the bag from a sequential plan: one entry per (layer, cell).
	// The decomposition is pure in (flag, w, h), so the arena caches it.
	var seq *workplan.Plan
	if a.seqFlag == cfg.Flag && a.seqW == w && a.seqH == h {
		seq = a.seqPlan
	} else {
		var err error
		seq, err = workplan.Sequential(cfg.Flag, w, h)
		if err != nil {
			return nil, err
		}
		a.seqFlag, a.seqW, a.seqH, a.seqPlan = cfg.Flag, w, h, seq
	}
	source := a.bagSourceFor(cfg.Policy, len(cfg.Flag.Layers), len(cfg.Procs), seq.PerProc[0], w, h)
	e := a.bind(engineConfig{
		ctx:            ctx,
		source:         source,
		procs:          cfg.Procs,
		set:            cfg.Set,
		setup:          cfg.Setup,
		trace:          cfg.Trace,
		probes:         cfg.Probes,
		faults:         cfg.Faults,
		w:              w,
		h:              h,
		layerDeps:      seq.LayerDeps,
		layerCellCount: seq.LayerCellCount,
	})
	makespan, err := e.run()
	if err != nil {
		return nil, err
	}

	// Synthesize the executed assignment as a Plan so the Result carries
	// the usual workload description.
	if a.stratDyn == "" || a.stratPolicy != cfg.Policy || a.stratProcs != len(cfg.Procs) {
		a.stratPolicy, a.stratProcs = cfg.Policy, len(cfg.Procs)
		a.stratDyn = fmt.Sprintf("dynamic-%s(p=%d)", cfg.Policy, len(cfg.Procs))
	}
	var plan *workplan.Plan
	if a.owned {
		plan = &a.synthPlan
	} else {
		plan = &workplan.Plan{}
	}
	*plan = workplan.Plan{
		FlagName: cfg.Flag.Name, W: w, H: h,
		Strategy:       a.stratDyn,
		PerProc:        a.rec.materialize(a, len(cfg.Procs)),
		LayerDeps:      seq.LayerDeps,
		LayerCellCount: seq.LayerCellCount,
		Overpainted:    true,
	}
	res := a.buildResult(e, plan, makespan)
	e.notifyResult(res)
	return res, nil
}
