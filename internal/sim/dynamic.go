package sim

import (
	"context"
	"fmt"
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/processor"
	"flagsim/internal/workplan"
)

// Dynamic (self-scheduling) execution: instead of a fixed per-processor
// plan, every cell sits in a shared bag and an idle processor pulls its
// next task at run time. This is how a team actually behaves when told
// "just finish the flag together", and it is the classic answer to the
// load-imbalance lesson: a slow student simply colors fewer cells.
//
// Two pull policies are modeled:
//
//   - PullOrdered: take the globally next unpainted cell (lowest layer,
//     reading order) — maximally fair, maximally implement-thrashing;
//   - PullColorAffinity: prefer the next cell matching the implement
//     already in hand, falling back to the global order — what students
//     converge on after the contention discussion.
//
// Layer dependencies are honored: a cell becomes available only when
// every prerequisite layer is fully painted.

// PullPolicy selects how an idle processor chooses its next cell.
type PullPolicy uint8

// Pull policies.
const (
	PullOrdered PullPolicy = iota
	PullColorAffinity
)

// String names the policy.
func (p PullPolicy) String() string {
	switch p {
	case PullOrdered:
		return "pull-ordered"
	case PullColorAffinity:
		return "pull-color-affinity"
	default:
		return fmt.Sprintf("pull-policy(%d)", uint8(p))
	}
}

// DynamicConfig describes a self-scheduled run.
type DynamicConfig struct {
	// Flag and W, H define the workload (the full layered paint job).
	Flag *flagspec.Flag
	W, H int
	// Procs are the students; any number >= 1.
	Procs []*processor.Processor
	// Set is the shared implement pool.
	Set *implement.Set
	// Policy selects the pull rule; default PullOrdered.
	Policy PullPolicy
	// Setup is the serial organization phase.
	Setup time.Duration
	// Trace records spans.
	Trace bool
	// Probes observe engine events.
	Probes []Probe
	// Faults, when non-nil, injects deterministic faults into the run;
	// see FaultInjector.
	Faults FaultInjector
}

// bagSource is the self-scheduling policy: a shared bag of unclaimed
// tasks, pulled at run time under the configured policy. Processors that
// find no available work park globally and wake on any layer completion.
type bagSource struct {
	policy PullPolicy
	// bag[l] holds the unclaimed tasks of layer l in reading order.
	bag [][]workplan.Task
	// idle marks processors parked because nothing was available.
	idle []bool
	// assigned records executed tasks per proc, for the Result's plan.
	assigned [][]workplan.Task
}

func newBagSource(policy PullPolicy, layers, procs int, tasks []workplan.Task) *bagSource {
	s := &bagSource{
		policy:   policy,
		bag:      make([][]workplan.Task, layers),
		idle:     make([]bool, procs),
		assigned: make([][]workplan.Task, procs),
	}
	for _, t := range tasks {
		s.bag[t.Layer] = append(s.bag[t.Layer], t)
	}
	return s
}

// available reports whether layer l has unclaimed tasks whose
// prerequisites are all complete.
func (s *bagSource) available(e *Engine, l int) bool {
	if _, blocked := e.LayerBlocked(l); blocked {
		return false
	}
	return len(s.bag[l]) > 0
}

// claim removes and returns the i-th unclaimed task of layer l.
func (s *bagSource) claim(l, i int) workplan.Task {
	t := s.bag[l][i]
	s.bag[l] = append(s.bag[l][:i], s.bag[l][i+1:]...)
	return t
}

// nextTask claims the next available task for processor pi under the
// configured policy, or reports none.
func (s *bagSource) nextTask(e *Engine, pi int) (workplan.Task, bool) {
	if s.policy == PullColorAffinity {
		if holding := e.Holding(pi); holding != nil {
			// Prefer cells matching the implement in hand.
			for l := range s.bag {
				if !s.available(e, l) {
					continue
				}
				for i, t := range s.bag[l] {
					if t.Color == holding.Color {
						return s.claim(l, i), true
					}
				}
			}
		} else {
			// Empty-handed: prefer a color whose implement is free right
			// now — a student grabs an idle marker rather than queueing
			// behind a teammate.
			for l := range s.bag {
				if !s.available(e, l) {
					continue
				}
				for i, t := range s.bag[l] {
					if e.HasFreeImplement(t.Color) {
						return s.claim(l, i), true
					}
				}
			}
		}
	}
	for l := range s.bag {
		if s.available(e, l) {
			return s.claim(l, 0), true
		}
	}
	return workplan.Task{}, false
}

// anyBagged reports whether any cell remains unclaimed.
func (s *bagSource) anyBagged() bool {
	for _, b := range s.bag {
		if len(b) > 0 {
			return true
		}
	}
	return false
}

// Select implements TaskSource: claim a task, park when cells remain but
// are dependency-blocked, retire when the bag is empty (in-flight cells
// may still be painting).
func (s *bagSource) Select(e *Engine, pi int) Selection {
	if task, ok := s.nextTask(e, pi); ok {
		return Selection{Kind: SelectTask, Task: task}
	}
	if s.anyBagged() {
		return Selection{Kind: SelectWait}
	}
	return Selection{Kind: SelectDone}
}

// Requeue implements TaskSource: the task goes back to the front of its
// layer (after pickup the processor re-advances and claims again,
// possibly the same cell).
func (s *bagSource) Requeue(_ *Engine, _ int, task workplan.Task) {
	s.bag[task.Layer] = append([]workplan.Task{task}, s.bag[task.Layer]...)
}

// Park implements TaskSource: pi idles until any layer completes.
func (s *bagSource) Park(_ *Engine, pi int, _ Selection) {
	s.idle[pi] = true
}

// CellDone implements TaskSource: record the assignment and wake every
// idle processor when a layer completes (new work may be available).
func (s *bagSource) CellDone(e *Engine, pi int, task workplan.Task) {
	s.assigned[pi] = append(s.assigned[pi], task)
	if e.LayerRemaining(task.Layer) != 0 {
		return
	}
	for w, parked := range s.idle {
		if !parked {
			continue
		}
		s.idle[w] = false
		e.Wake(w)
	}
}

// HasMore implements TaskSource.
func (s *bagSource) HasMore(*Engine, int) bool { return s.anyBagged() }

// CheckComplete implements TaskSource.
func (s *bagSource) CheckComplete(e *Engine) error {
	for l := 0; l < e.Layers(); l++ {
		if remaining := e.LayerRemaining(l); remaining != 0 {
			return fmt.Errorf("sim: dynamic run stalled with %d cells left", remaining)
		}
	}
	return nil
}

// RunDynamic executes the self-scheduled run.
func RunDynamic(cfg DynamicConfig) (*Result, error) { return RunDynamicCtx(nil, cfg) }

// RunDynamicCtx is RunDynamic with a cancellation context (see RunCtx).
func RunDynamicCtx(ctx context.Context, cfg DynamicConfig) (*Result, error) {
	if cfg.Flag == nil {
		return nil, fmt.Errorf("sim: nil flag")
	}
	w, h := cfg.W, cfg.H
	if w <= 0 {
		w = cfg.Flag.DefaultW
	}
	if h <= 0 {
		h = cfg.Flag.DefaultH
	}
	if len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("sim: no processors")
	}
	if cfg.Set == nil {
		return nil, fmt.Errorf("sim: nil implement set")
	}
	if err := cfg.Set.Covers(cfg.Flag.Colors()); err != nil {
		return nil, err
	}
	if cfg.Setup < 0 {
		return nil, fmt.Errorf("sim: negative setup")
	}
	// Build the bag from a sequential plan: one entry per (layer, cell).
	seq, err := workplan.Sequential(cfg.Flag, w, h)
	if err != nil {
		return nil, err
	}
	source := newBagSource(cfg.Policy, len(cfg.Flag.Layers), len(cfg.Procs), seq.PerProc[0])
	e := newEngine(engineConfig{
		ctx:            ctx,
		source:         source,
		procs:          cfg.Procs,
		set:            cfg.Set,
		setup:          cfg.Setup,
		trace:          cfg.Trace,
		probes:         cfg.Probes,
		faults:         cfg.Faults,
		w:              w,
		h:              h,
		layerDeps:      seq.LayerDeps,
		layerCellCount: seq.LayerCellCount,
	})
	makespan, err := e.run()
	if err != nil {
		return nil, err
	}

	// Synthesize the executed assignment as a Plan so the Result carries
	// the usual workload description.
	plan := &workplan.Plan{
		FlagName: cfg.Flag.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("dynamic-%s(p=%d)", cfg.Policy, len(cfg.Procs)),
		PerProc:        source.assigned,
		LayerDeps:      seq.LayerDeps,
		LayerCellCount: seq.LayerCellCount,
		Overpainted:    true,
	}
	res := e.buildResult(plan, makespan)
	e.notifyResult(res)
	return res, nil
}
