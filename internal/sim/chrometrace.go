package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WriteChromeTrace exports a traced run in the Chrome trace-event format
// (the JSON array form), viewable in chrome://tracing or Perfetto. Each
// processor becomes a thread; paint, wait, and overhead spans become
// complete ("X") events with microsecond timestamps in virtual time.
//
// This gives the activity's runs the same tooling a real parallel program
// gets from a profiler — students can scrub through scenario 4 and watch
// P2–P4 blocked on the red marker.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	if r.Trace == nil {
		return fmt.Errorf("sim: run has no trace; set Config.Trace")
	}
	procs := make([]string, len(r.Procs))
	for i, p := range r.Procs {
		procs[i] = p.Name
	}
	return WriteChromeTraceSpans(w, procs, r.Trace)
}

// WriteChromeTraceSpans exports an arbitrary span timeline in the Chrome
// trace-event format — the span-level core of WriteChromeTrace, usable
// with spans reconstructed through a SpanCollector probe (the HTTP
// service's run ring serves traces this way) as well as with a traced
// Result. procs names the processor threads; Span.Proc indexes it.
func WriteChromeTraceSpans(w io.Writer, procs []string, spans []Span) error {
	type traceEvent struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   int64             `json:"ts"`  // microseconds
		Dur  int64             `json:"dur"` // microseconds
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	events := make([]traceEvent, 0, len(spans)+len(procs))
	// Thread-name metadata so the viewer shows P1..Pn.
	type metaEvent struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	metas := make([]metaEvent, 0, len(procs))
	for i, name := range procs {
		metas = append(metas, metaEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]string{"name": name},
		})
	}
	for _, sp := range spans {
		name := sp.Kind.String()
		args := map[string]string{}
		switch sp.Kind {
		case SpanPaint:
			name = "paint " + sp.Color.String()
			args["cell"] = sp.Cell.String()
		case SpanWaitImplement:
			name = "wait " + sp.Color.String()
		case SpanPickup, SpanPutDown:
			args["color"] = sp.Color.String()
		}
		events = append(events, traceEvent{
			Name: name,
			Cat:  sp.Kind.String(),
			Ph:   "X",
			TS:   sp.Start.Microseconds(),
			Dur:  (sp.End - sp.Start).Microseconds(),
			PID:  1,
			TID:  sp.Proc + 1,
			Args: args,
		})
	}
	// Emit as one JSON array: metadata first, then events.
	var out []interface{}
	for _, m := range metas {
		out = append(out, m)
	}
	for _, e := range events {
		out = append(out, e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TraceDuration reports the total traced span time per kind — a quick
// integrity check that the trace accounts for the run.
func (r *Result) TraceDuration(kind SpanKind) time.Duration {
	var total time.Duration
	for _, sp := range r.Trace {
		if sp.Kind == kind {
			total += sp.End - sp.Start
		}
	}
	return total
}
