package sim

import (
	"context"
	"fmt"

	"flagsim/internal/geom"
	"flagsim/internal/workplan"
)

// Work stealing: processors start from a fixed plan (any static strategy),
// but a processor that empties its own queue steals the trailing half of
// the most-loaded teammate's queue instead of retiring. This is the
// classroom fix for load imbalance that keeps the locality of a good
// static split: a fast student finishes their slice, then walks over and
// takes work off the slowest student's pile — without the every-cell
// contention of a fully shared bag.
//
// Determinism: the victim is the processor with the most queued cells
// (ties break toward the lowest index), and the stolen cells move in plan
// order, so a fixed seed reproduces the same migrations.

// stealSource executes per-processor queues with work stealing. Like
// planSource it peeks (a selected task is consumed only when painted), so
// a victim's head cell — possibly in flight — is never stolen.
type stealSource struct {
	// queues[pi] is the processor's remaining tasks, head first.
	queues [][]workplan.Task
	// layerWaiters holds processors parked on a layer's completion.
	layerWaiters [][]int
	// assigned records executed tasks per proc, for the Result's plan.
	assigned [][]workplan.Task
	// owner maps each task (layers may overpaint a cell, so the key is
	// layer+cell) to the processor the starting plan assigned, so CellDone
	// can count migrated cells independently of steal batches.
	owner    map[taskKey]int
	steals   int
	migrated int
}

// taskKey identifies one task of a plan; overpainting layers make the
// cell alone ambiguous.
type taskKey struct {
	layer int
	cell  geom.Pt
}

func newStealSource(plan *workplan.Plan) *stealSource {
	s := &stealSource{
		queues:       make([][]workplan.Task, plan.NumProcs()),
		layerWaiters: make([][]int, len(plan.LayerCellCount)),
		assigned:     make([][]workplan.Task, plan.NumProcs()),
		owner:        make(map[taskKey]int),
	}
	for i, tasks := range plan.PerProc {
		s.queues[i] = append([]workplan.Task(nil), tasks...)
		for _, t := range tasks {
			s.owner[taskKey{t.Layer, t.Cell}] = i
		}
	}
	return s
}

// steal moves the trailing half of the most-loaded queue to pi, leaving
// at least the victim's head (it may already be painting). It reports
// whether anything moved.
func (s *stealSource) steal(pi int) bool {
	victim, best := -1, 1 // a queue of one cell has nothing to spare
	for v, q := range s.queues {
		if v != pi && len(q) > best {
			victim, best = v, len(q)
		}
	}
	if victim == -1 {
		return false
	}
	q := s.queues[victim]
	k := len(q) / 2 // len >= 2, so 1 <= k <= len-1: head always stays
	cut := len(q) - k
	s.queues[pi] = append(s.queues[pi], q[cut:]...)
	s.queues[victim] = q[:cut]
	s.steals++
	return true
}

// Select implements TaskSource: peek the own queue, steal when it is
// empty, retire when no teammate has anything to spare.
func (s *stealSource) Select(e *Engine, pi int) Selection {
	if len(s.queues[pi]) == 0 && !s.steal(pi) {
		return Selection{Kind: SelectDone}
	}
	task := s.queues[pi][0]
	if dep, blocked := e.LayerBlocked(task.Layer); blocked {
		return Selection{Kind: SelectWait, Layer: dep}
	}
	return Selection{Kind: SelectTask, Task: task}
}

// Requeue implements TaskSource. Peek semantics: the task is still at the
// queue head, so there is nothing to hand back.
func (s *stealSource) Requeue(*Engine, int, workplan.Task) {}

// Park implements TaskSource: pi waits on the blocking layer.
func (s *stealSource) Park(_ *Engine, pi int, sel Selection) {
	s.layerWaiters[sel.Layer] = append(s.layerWaiters[sel.Layer], pi)
}

// CellDone implements TaskSource: consume the head task and wake
// processors parked on the layer once it completes.
func (s *stealSource) CellDone(e *Engine, pi int, task workplan.Task) {
	s.queues[pi] = s.queues[pi][1:]
	s.assigned[pi] = append(s.assigned[pi], task)
	if s.owner[taskKey{task.Layer, task.Cell}] != pi {
		s.migrated++
	}
	if e.LayerRemaining(task.Layer) > 0 {
		return
	}
	waiters := s.layerWaiters[task.Layer]
	s.layerWaiters[task.Layer] = nil
	for _, w := range waiters {
		e.Wake(w)
	}
}

// HasMore implements TaskSource.
func (s *stealSource) HasMore(_ *Engine, pi int) bool {
	return len(s.queues[pi]) > 0
}

// CheckComplete implements TaskSource.
func (s *stealSource) CheckComplete(*Engine) error {
	for i, q := range s.queues {
		if len(q) != 0 {
			return fmt.Errorf("sim: deadlock: processor %d stranded with %d stolen-proof tasks", i, len(q))
		}
	}
	return nil
}

// RunSteal executes the plan under work stealing. The Config is the same
// as Run's; the plan's per-processor split is the starting assignment,
// and the Result's plan records who actually painted what.
func RunSteal(cfg Config) (*Result, error) { return RunStealCtx(nil, cfg) }

// RunStealCtx is RunSteal with a cancellation context (see RunCtx).
func RunStealCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	source := newStealSource(cfg.Plan)
	e := newEngine(engineConfig{
		ctx:            ctx,
		source:         source,
		procs:          cfg.Procs,
		set:            cfg.Set,
		hold:           cfg.Hold,
		setup:          cfg.Setup,
		trace:          cfg.Trace,
		probes:         cfg.Probes,
		faults:         cfg.Faults,
		w:              cfg.Plan.W,
		h:              cfg.Plan.H,
		layerDeps:      cfg.Plan.LayerDeps,
		layerCellCount: cfg.Plan.LayerCellCount,
	})
	makespan, err := e.run()
	if err != nil {
		return nil, err
	}
	plan := &workplan.Plan{
		FlagName: cfg.Plan.FlagName, W: cfg.Plan.W, H: cfg.Plan.H,
		Strategy:       cfg.Plan.Strategy + "+steal",
		PerProc:        source.assigned,
		LayerDeps:      cfg.Plan.LayerDeps,
		LayerCellCount: cfg.Plan.LayerCellCount,
		Overpainted:    cfg.Plan.Overpainted,
	}
	res := e.buildResult(plan, makespan)
	res.Steals = source.steals
	res.Migrated = source.migrated
	e.notifyResult(res)
	return res, nil
}
