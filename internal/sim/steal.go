package sim

import (
	"context"
	"fmt"

	"flagsim/internal/geom"
	"flagsim/internal/workplan"
)

// Work stealing: processors start from a fixed plan (any static strategy),
// but a processor that empties its own queue steals the trailing half of
// the most-loaded teammate's queue instead of retiring. This is the
// classroom fix for load imbalance that keeps the locality of a good
// static split: a fast student finishes their slice, then walks over and
// takes work off the slowest student's pile — without the every-cell
// contention of a fully shared bag.
//
// Determinism: the victim is the processor with the most queued cells
// (ties break toward the lowest index), and the stolen cells move in plan
// order, so a fixed seed reproduces the same migrations.

// stealSource executes per-processor queues with work stealing. Like
// planSource it peeks (a selected task is consumed only when painted), so
// a victim's head cell — possibly in flight — is never stolen.
//
// Layout: each processor's queue is a head/tail window over a flat
// per-processor buffer sized to the whole plan, so steals are a copy of
// the stolen span plus two cursor updates — no slice growth during a
// run. A queue that would overflow its buffer (possible only through
// repeated re-stealing) first compacts its live window to the front,
// which keeps every buffer bounded by the total task count.
type stealSource struct {
	// bufs[pi] is processor pi's task buffer; the live queue is
	// bufs[pi][head[pi]:tail[pi]], head first.
	bufs       [][]workplan.Task
	head, tail []int
	// layerWaiters holds processors parked on a layer's completion.
	layerWaiters [][]int
	// owner maps layer*wh + y*w + x to the processor the starting plan
	// assigned (layers may overpaint a cell, so the key includes the
	// layer), so CellDone can count migrated cells independently of
	// steal batches.
	owner            []int32
	w, wh            int
	steals, migrated int
	// rec records executed tasks per proc, for the Result's plan.
	rec *assignRecorder
}

// taskKey identifies one task of a plan; overpainting layers make the
// cell alone ambiguous.
type taskKey struct {
	layer int
	cell  geom.Pt
}

// stealSourceFor rebinds the arena's stealing policy to plan.
func (a *Arena) stealSourceFor(plan *workplan.Plan) *stealSource {
	s := &a.steal
	n := plan.NumProcs()
	total := plan.TotalTasks()
	s.w, s.wh = plan.W, plan.W*plan.H
	if cap(s.bufs) < n {
		nbufs := make([][]workplan.Task, n)
		copy(nbufs, s.bufs[:cap(s.bufs)])
		s.bufs = nbufs
	} else {
		s.bufs = s.bufs[:n]
	}
	if cap(s.head) < n {
		s.head = make([]int, n)
		s.tail = make([]int, n)
	} else {
		s.head = s.head[:n]
		s.tail = s.tail[:n]
	}
	layers := len(plan.LayerCellCount)
	ownerLen := layers * s.wh
	if cap(s.owner) < ownerLen {
		s.owner = make([]int32, ownerLen)
	} else {
		s.owner = s.owner[:ownerLen]
	}
	for i, tasks := range plan.PerProc {
		if cap(s.bufs[i]) < total {
			s.bufs[i] = make([]workplan.Task, total)
		} else {
			s.bufs[i] = s.bufs[i][:total]
		}
		copy(s.bufs[i], tasks)
		s.head[i] = 0
		s.tail[i] = len(tasks)
		for _, t := range tasks {
			s.owner[t.Layer*s.wh+t.Cell.Y*s.w+t.Cell.X] = int32(i)
		}
	}
	s.layerWaiters = reuseWaiters(s.layerWaiters, layers, n)
	s.steals, s.migrated = 0, 0
	s.rec = &a.rec
	s.rec.reset(n, total)
	return s
}

// qlen returns processor v's live queue length.
func (s *stealSource) qlen(v int) int { return s.tail[v] - s.head[v] }

// pushBack appends tasks to pi's queue, compacting the live window to
// the buffer front first if the tail would overflow. pi's queue is empty
// whenever this runs (only an out-of-work processor steals), so the
// compacted window plus the stolen span always fits.
func (s *stealSource) pushBack(pi int, tasks []workplan.Task) {
	b := s.bufs[pi]
	if s.tail[pi]+len(tasks) > len(b) {
		n := copy(b, b[s.head[pi]:s.tail[pi]])
		s.head[pi], s.tail[pi] = 0, n
	}
	copy(b[s.tail[pi]:], tasks)
	s.tail[pi] += len(tasks)
}

// steal moves the trailing half of the most-loaded queue to pi, leaving
// at least the victim's head (it may already be painting). It reports
// whether anything moved.
func (s *stealSource) steal(pi int) bool {
	victim, best := -1, 1 // a queue of one cell has nothing to spare
	for v := range s.bufs {
		if v != pi && s.qlen(v) > best {
			victim, best = v, s.qlen(v)
		}
	}
	if victim == -1 {
		return false
	}
	k := s.qlen(victim) / 2 // len >= 2, so 1 <= k <= len-1: head always stays
	cut := s.tail[victim] - k
	s.pushBack(pi, s.bufs[victim][cut:s.tail[victim]])
	s.tail[victim] = cut
	s.steals++
	return true
}

// Select implements TaskSource: peek the own queue, steal when it is
// empty, retire when no teammate has anything to spare.
func (s *stealSource) Select(e *Engine, pi int) Selection {
	if s.qlen(pi) == 0 && !s.steal(pi) {
		return Selection{Kind: SelectDone}
	}
	task := s.bufs[pi][s.head[pi]]
	if dep, blocked := e.LayerBlocked(task.Layer); blocked {
		return Selection{Kind: SelectWait, Layer: dep}
	}
	return Selection{Kind: SelectTask, Task: task}
}

// Requeue implements TaskSource. Peek semantics: the task is still at the
// queue head, so there is nothing to hand back.
func (s *stealSource) Requeue(*Engine, int, workplan.Task) {}

// Park implements TaskSource: pi waits on the blocking layer.
func (s *stealSource) Park(_ *Engine, pi int, sel Selection) {
	s.layerWaiters[sel.Layer] = append(s.layerWaiters[sel.Layer], pi)
}

// CellDone implements TaskSource: consume the head task and wake
// processors parked on the layer once it completes.
func (s *stealSource) CellDone(e *Engine, pi int, task workplan.Task) {
	s.head[pi]++
	s.rec.record(pi, task)
	if s.owner[task.Layer*s.wh+task.Cell.Y*s.w+task.Cell.X] != int32(pi) {
		s.migrated++
	}
	if e.LayerRemaining(task.Layer) > 0 {
		return
	}
	// Reslice to zero, not nil, to keep the arena's waiter backing; a
	// completed layer never gains a waiter again, so the old header is
	// safe to iterate (see planSource.CellDone).
	waiters := s.layerWaiters[task.Layer]
	s.layerWaiters[task.Layer] = waiters[:0]
	for _, w := range waiters {
		e.Wake(w)
	}
}

// HasMore implements TaskSource.
func (s *stealSource) HasMore(_ *Engine, pi int) bool {
	return s.qlen(pi) > 0
}

// CheckComplete implements TaskSource.
func (s *stealSource) CheckComplete(*Engine) error {
	for i := range s.bufs {
		if s.qlen(i) != 0 {
			return fmt.Errorf("sim: deadlock: processor %d stranded with %d stolen-proof tasks", i, s.qlen(i))
		}
	}
	return nil
}

// RunSteal executes the plan under work stealing. The Config is the same
// as Run's; the plan's per-processor split is the starting assignment,
// and the Result's plan records who actually painted what.
func RunSteal(cfg Config) (*Result, error) { return RunStealCtx(nil, cfg) }

// RunStealCtx is RunSteal with a cancellation context (see RunCtx).
func RunStealCtx(ctx context.Context, cfg Config) (*Result, error) {
	a, pooled := acquireArena(cfg.Arena)
	if pooled {
		defer arenaPool.Put(a)
	}
	if err := a.validateStatic(&cfg); err != nil {
		return nil, err
	}
	source := a.stealSourceFor(cfg.Plan)
	e := a.bind(engineConfig{
		ctx:            ctx,
		source:         source,
		procs:          cfg.Procs,
		set:            cfg.Set,
		hold:           cfg.Hold,
		setup:          cfg.Setup,
		trace:          cfg.Trace,
		probes:         cfg.Probes,
		faults:         cfg.Faults,
		w:              cfg.Plan.W,
		h:              cfg.Plan.H,
		layerDeps:      cfg.Plan.LayerDeps,
		layerCellCount: cfg.Plan.LayerCellCount,
	})
	makespan, err := e.run()
	if err != nil {
		return nil, err
	}
	if a.stealPlanCached != cfg.Plan {
		a.stealPlanCached = cfg.Plan
		a.stratSteal = cfg.Plan.Strategy + "+steal"
	}
	var plan *workplan.Plan
	if a.owned {
		plan = &a.synthPlan
	} else {
		plan = &workplan.Plan{}
	}
	*plan = workplan.Plan{
		FlagName: cfg.Plan.FlagName, W: cfg.Plan.W, H: cfg.Plan.H,
		Strategy:       a.stratSteal,
		PerProc:        a.rec.materialize(a, len(cfg.Procs)),
		LayerDeps:      cfg.Plan.LayerDeps,
		LayerCellCount: cfg.Plan.LayerCellCount,
		Overpainted:    cfg.Plan.Overpainted,
	}
	res := a.buildResult(e, plan, makespan)
	res.Steals = source.steals
	res.Migrated = source.migrated
	e.notifyResult(res)
	return res, nil
}
