package flagspec

import (
	"strings"
	"testing"

	"flagsim/internal/geom"
	"flagsim/internal/palette"
)

func TestAllBuiltinsValidate(t *testing.T) {
	for _, f := range All() {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestLookup(t *testing.T) {
	f, err := Lookup("mauritius")
	if err != nil {
		t.Fatal(err)
	}
	if f != Mauritius {
		t.Fatal("Lookup returned a different flag instance")
	}
	if _, err := Lookup("atlantis"); err == nil {
		t.Fatal("expected error for unknown flag")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names has %d entries, All has %d", len(names), len(All()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
	for _, want := range []string{"mauritius", "france", "canada", "greatbritain", "jordan"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing built-in flag %q", want)
		}
	}
}

func TestMauritiusStructure(t *testing.T) {
	f := Mauritius
	if len(f.Layers) != 4 {
		t.Fatalf("mauritius has %d layers, want 4", len(f.Layers))
	}
	wantColors := []palette.Color{palette.Red, palette.Blue, palette.Yellow, palette.Green}
	for i, l := range f.Layers {
		if l.Color != wantColors[i] {
			t.Fatalf("layer %d color %v, want %v", i, l.Color, wantColors[i])
		}
		if len(l.DependsOn) != 0 {
			t.Fatalf("mauritius stripes must be independent; layer %q depends on %v", l.Name, l.DependsOn)
		}
	}
	// The stripes are disjoint, so no implied overlap dependencies either.
	overlaps := f.Overlaps(f.DefaultW, f.DefaultH)
	for i, os := range overlaps {
		if len(os) != 0 {
			t.Fatalf("mauritius layer %d overlaps %v", i, os)
		}
	}
}

func TestJordanDependencies(t *testing.T) {
	f := Jordan
	tri := f.Layer("red-triangle")
	if tri == nil {
		t.Fatal("jordan has no red-triangle layer")
	}
	if len(tri.DependsOn) != 3 {
		t.Fatalf("red-triangle depends on %v, want all three stripes", tri.DependsOn)
	}
	star := f.Layer("white-star")
	if star == nil || len(star.DependsOn) != 1 || star.DependsOn[0] != "red-triangle" {
		t.Fatal("white-star must depend exactly on red-triangle")
	}
}

func TestGreatBritainLayerChain(t *testing.T) {
	f := GreatBritain
	// Every non-background layer must transitively depend on blue-field.
	for _, l := range f.Layers[1:] {
		if len(l.DependsOn) == 0 {
			t.Fatalf("layer %q has no dependencies", l.Name)
		}
	}
	// Overlaps must imply that later layers overlap the field.
	overlaps := f.Overlaps(f.DefaultW, f.DefaultH)
	for i := 1; i < len(f.Layers); i++ {
		found := false
		for _, j := range overlaps[i] {
			if j == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("layer %q does not overlap the blue field", f.Layers[i].Name)
		}
	}
}

func TestColors(t *testing.T) {
	got := Mauritius.Colors()
	if len(got) != 4 {
		t.Fatalf("mauritius needs %d colors, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("Colors() must be sorted")
		}
	}
	if len(Japan.Colors()) != 2 {
		t.Fatalf("japan needs %d colors, want 2", len(Japan.Colors()))
	}
}

func TestLayerNamesOrder(t *testing.T) {
	names := Jordan.LayerNames()
	want := []string{"black-stripe", "white-stripe", "green-stripe", "red-triangle", "white-star"}
	if len(names) != len(want) {
		t.Fatalf("got %d names", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("layer %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		flag *Flag
		want string
	}{
		{"no name", &Flag{DefaultW: 4, DefaultH: 4, Layers: []Layer{{Name: "x", Color: palette.Red, Shape: geom.Full{}}}}, "no name"},
		{"bad size", &Flag{Name: "f", DefaultW: 0, DefaultH: 4, Layers: []Layer{{Name: "x", Color: palette.Red, Shape: geom.Full{}}}}, "size"},
		{"no layers", &Flag{Name: "f", DefaultW: 4, DefaultH: 4}, "no layers"},
		{"dup layer", &Flag{Name: "f", DefaultW: 4, DefaultH: 4, Layers: []Layer{
			{Name: "x", Color: palette.Red, Shape: geom.Full{}},
			{Name: "x", Color: palette.Blue, Shape: geom.Full{}},
		}}, "duplicate"},
		{"none color", &Flag{Name: "f", DefaultW: 4, DefaultH: 4, Layers: []Layer{
			{Name: "x", Color: palette.None, Shape: geom.Full{}},
		}}, "invalid color"},
		{"nil shape", &Flag{Name: "f", DefaultW: 4, DefaultH: 4, Layers: []Layer{
			{Name: "x", Color: palette.Red},
		}}, "no shape"},
		{"unknown dep", &Flag{Name: "f", DefaultW: 4, DefaultH: 4, Layers: []Layer{
			{Name: "x", Color: palette.Red, Shape: geom.Full{}, DependsOn: []string{"ghost"}},
		}}, "unknown"},
		{"forward dep", &Flag{Name: "f", DefaultW: 4, DefaultH: 4, Layers: []Layer{
			{Name: "x", Color: palette.Red, Shape: geom.Full{}, DependsOn: []string{"y"}},
			{Name: "y", Color: palette.Blue, Shape: geom.Full{}},
		}}, "unknown or later"},
	}
	for _, tc := range cases {
		err := tc.flag.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestLayerLookupMissing(t *testing.T) {
	if Mauritius.Layer("maple-leaf") != nil {
		t.Fatal("mauritius should not have a maple leaf")
	}
}

func TestCanadaLeafDependsOnField(t *testing.T) {
	leaf := Canada.Layer("maple-leaf")
	if leaf == nil {
		t.Fatal("canada has no maple-leaf layer")
	}
	found := false
	for _, d := range leaf.DependsOn {
		if d == "white-field" {
			found = true
		}
	}
	if !found {
		t.Fatal("maple-leaf must depend on white-field")
	}
}
