// Package flagspec declares the flags used by the unplugged activity as
// layered paint programs.
//
// A flag is a sequence of Layers painted back-to-front, exactly the
// Painter's-algorithm structure the paper's Knox follow-up discusses for the
// flag of Great Britain (§III-D): "the background must be colored before the
// diagonals, which must be colored before the rectilinear lines." Layer
// order is therefore semantic — it induces the dependency graphs of
// package depgraph — and not merely a rendering convenience.
//
// Shapes are declared in normalized coordinates so the same spec rasterizes
// onto any grid size; the paper's handouts are coarse grids (on the order of
// 12×8 for Mauritius, 25×12 for the Canadian handout) and all defaults here
// match that scale.
package flagspec

import (
	"fmt"
	"sort"

	"flagsim/internal/geom"
	"flagsim/internal/palette"
)

// Layer is one paint pass: fill every cell of Shape with Color. Layers
// within a flag are ordered; a later layer overpaints earlier ones where
// they overlap.
type Layer struct {
	// Name identifies the layer in dependency graphs and schedules,
	// e.g. "background", "saltire", "red-triangle".
	Name string
	// Color is the paint color for this layer.
	Color palette.Color
	// Shape selects the cells the layer covers.
	Shape geom.Shape
	// DependsOn lists names of layers that must be fully painted before
	// this one may begin. An empty list means the layer depends only on
	// the layers it visually overpaints (computed by Overlaps); flags with
	// purely disjoint layers (Mauritius) have fully independent layers.
	DependsOn []string
}

// Flag is a named, ordered stack of layers plus the default grid size used
// by the activity's handouts.
type Flag struct {
	// Name is the lowercase flag identifier ("mauritius", "canada", ...).
	Name string
	// DefaultW and DefaultH are the handout grid dimensions in cells.
	DefaultW, DefaultH int
	// Layers are painted in order.
	Layers []Layer
}

// Validate checks structural invariants: non-empty layers, unique layer
// names, valid colors, and DependsOn references that resolve to earlier
// layers (a layer may not depend on one painted after it).
func (f *Flag) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("flagspec: flag has no name")
	}
	if f.DefaultW <= 0 || f.DefaultH <= 0 {
		return fmt.Errorf("flagspec: %s: non-positive default size %dx%d", f.Name, f.DefaultW, f.DefaultH)
	}
	if len(f.Layers) == 0 {
		return fmt.Errorf("flagspec: %s: no layers", f.Name)
	}
	seen := make(map[string]int, len(f.Layers))
	for i, l := range f.Layers {
		if l.Name == "" {
			return fmt.Errorf("flagspec: %s: layer %d has no name", f.Name, i)
		}
		if _, dup := seen[l.Name]; dup {
			return fmt.Errorf("flagspec: %s: duplicate layer %q", f.Name, l.Name)
		}
		if !l.Color.Valid() || l.Color == palette.None {
			return fmt.Errorf("flagspec: %s: layer %q has invalid color", f.Name, l.Name)
		}
		if l.Shape == nil {
			return fmt.Errorf("flagspec: %s: layer %q has no shape", f.Name, l.Name)
		}
		for _, dep := range l.DependsOn {
			j, ok := seen[dep]
			if !ok {
				return fmt.Errorf("flagspec: %s: layer %q depends on unknown or later layer %q", f.Name, l.Name, dep)
			}
			if j >= i {
				return fmt.Errorf("flagspec: %s: layer %q depends on non-earlier layer %q", f.Name, l.Name, dep)
			}
		}
		seen[l.Name] = i
	}
	return nil
}

// Layer returns the named layer, or nil.
func (f *Flag) Layer(name string) *Layer {
	for i := range f.Layers {
		if f.Layers[i].Name == name {
			return &f.Layers[i]
		}
	}
	return nil
}

// LayerNames returns layer names in paint order.
func (f *Flag) LayerNames() []string {
	out := make([]string, len(f.Layers))
	for i, l := range f.Layers {
		out[i] = l.Name
	}
	return out
}

// Colors returns the distinct paint colors the flag needs, in stable order.
// This is the set of implements a team must be handed.
func (f *Flag) Colors() []palette.Color {
	set := make(map[palette.Color]bool)
	for _, l := range f.Layers {
		set[l.Color] = true
	}
	out := make([]palette.Color, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Overlaps reports, for each layer index i, the indices j < i whose shapes
// share at least one cell with layer i at the given raster size. These are
// the implied paint-order dependencies of the Painter's algorithm.
func (f *Flag) Overlaps(w, h int) [][]int {
	masks := make([][]bool, len(f.Layers))
	for i, l := range f.Layers {
		m := make([]bool, w*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if l.Shape.Contains(geom.Pt{X: x, Y: y}, w, h) {
					m[y*w+x] = true
				}
			}
		}
		masks[i] = m
	}
	out := make([][]int, len(f.Layers))
	for i := range f.Layers {
		for j := 0; j < i; j++ {
			if masksIntersect(masks[i], masks[j]) {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

func masksIntersect(a, b []bool) bool {
	for i := range a {
		if a[i] && b[i] {
			return true
		}
	}
	return false
}

// registry holds the built-in flags keyed by name.
var registry = map[string]*Flag{}

func register(f *Flag) *Flag {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[f.Name]; dup {
		panic("flagspec: duplicate flag " + f.Name)
	}
	registry[f.Name] = f
	return f
}

// Lookup returns the flag with the given name: a built-in, or — for
// prefixed names like "gen:v1:42:7" — whatever a registered dynamic
// resolver produces (see RegisterDynamic). A malformed dynamic name
// returns the resolver's own typed error, not the unknown-flag error.
func Lookup(name string) (*Flag, error) {
	f, ok := registry[name]
	if !ok {
		if df, handled, err := resolveDynamic(name); handled {
			return df, err
		}
		return nil, fmt.Errorf("flagspec: unknown flag %q (have %v)", name, Names())
	}
	return f, nil
}

// Names returns the sorted names of all built-in flags.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered flag, sorted by name.
func All() []*Flag {
	names := Names()
	out := make([]*Flag, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}
