package flagspec

import (
	"flagsim/internal/geom"
	"flagsim/internal/palette"
)

// The built-in flags. Mauritius is the paper's core-activity flag (four
// equal horizontal stripes: red, blue, yellow, green — §III-A). France and
// Canada are the Webster variation (§III-D). Great Britain and Jordan drive
// the Knox dependency follow-up. The remaining flags extend the library for
// the decomposition ablations (E19): they span the interesting structural
// cases (vertical stripes, disc on field, nordic cross).

// Mauritius is the core activity flag: four equal horizontal stripes.
// All four layers are disjoint, so all four are mutually independent —
// maximal parallelism, which is exactly why the paper picked it.
var Mauritius = register(&Flag{
	Name:     "mauritius",
	DefaultW: 12, DefaultH: 8,
	Layers: []Layer{
		{Name: "red-stripe", Color: palette.Red, Shape: geom.HStripe(0, 4)},
		{Name: "blue-stripe", Color: palette.Blue, Shape: geom.HStripe(1, 4)},
		{Name: "yellow-stripe", Color: palette.Yellow, Shape: geom.HStripe(2, 4)},
		{Name: "green-stripe", Color: palette.Green, Shape: geom.HStripe(3, 4)},
	},
})

// France has three equal vertical stripes — the "simple" flag of the
// Webster load-balancing comparison.
var France = register(&Flag{
	Name:     "france",
	DefaultW: 12, DefaultH: 8,
	Layers: []Layer{
		{Name: "blue-stripe", Color: palette.Blue, Shape: geom.VStripe(0, 3)},
		{Name: "white-stripe", Color: palette.White, Shape: geom.VStripe(1, 3)},
		{Name: "red-stripe", Color: palette.Red, Shape: geom.VStripe(2, 3)},
	},
})

// Canada is the "intricate" flag of the Webster comparison: white field,
// red side bands, and the gridded maple leaf of the paper's Fig. 2 handout.
// The leaf overlaps the white field, so the field must be painted first.
var Canada = register(&Flag{
	Name:     "canada",
	DefaultW: 25, DefaultH: 12,
	Layers: []Layer{
		{Name: "white-field", Color: palette.White, Shape: geom.Band{X0: 0.25, Y0: 0, X1: 0.75, Y1: 1}},
		{Name: "left-band", Color: palette.Red, Shape: geom.Band{X0: 0, Y0: 0, X1: 0.25, Y1: 1}},
		{Name: "right-band", Color: palette.Red, Shape: geom.Band{X0: 0.75, Y0: 0, X1: 1, Y1: 1}},
		{
			Name: "maple-leaf", Color: palette.Red,
			Shape:     geom.MapleLeaf{CX: 0.5, CY: 0.5, Scale: 0.42},
			DependsOn: []string{"white-field"},
		},
	},
})

// GreatBritain is the layered flag of the Knox follow-up (Fig. 3): blue
// background, then the white saltire, then the red saltire and the
// white-fimbriated red St George's cross. The explicit DependsOn chain is
// the dependency structure students are asked to recognize.
var GreatBritain = register(&Flag{
	Name:     "greatbritain",
	DefaultW: 24, DefaultH: 12,
	Layers: []Layer{
		{Name: "blue-field", Color: palette.Blue, Shape: geom.Full{}},
		{
			Name: "white-saltire", Color: palette.White,
			Shape:     geom.Saltire{HalfWidth: 0.09},
			DependsOn: []string{"blue-field"},
		},
		{
			Name: "red-saltire", Color: palette.Red,
			Shape:     geom.Saltire{HalfWidth: 0.035},
			DependsOn: []string{"white-saltire"},
		},
		{
			Name: "white-cross", Color: palette.White,
			Shape:     geom.Cross{CX: 0.5, CY: 0.5, HalfWidth: 0.11},
			DependsOn: []string{"white-saltire"},
		},
		{
			Name: "red-cross", Color: palette.Red,
			Shape:     geom.Cross{CX: 0.5, CY: 0.5, HalfWidth: 0.065},
			DependsOn: []string{"white-cross"},
		},
	},
})

// Jordan is the dependency-graph exercise flag (Fig. 4): three horizontal
// stripes (black, white, green), a red hoist triangle over all three, and a
// white star (drawn as a dot at handout resolution) on the triangle. The
// DependsOn edges encode the paper's intended solution (Fig. 9): stripes
// first, then the triangle, then the star.
var Jordan = register(&Flag{
	Name:     "jordan",
	DefaultW: 16, DefaultH: 9,
	Layers: []Layer{
		{Name: "black-stripe", Color: palette.Black, Shape: geom.HStripe(0, 3)},
		{Name: "white-stripe", Color: palette.White, Shape: geom.HStripe(1, 3)},
		{Name: "green-stripe", Color: palette.Green, Shape: geom.HStripe(2, 3)},
		{
			Name: "red-triangle", Color: palette.Red,
			Shape:     geom.Triangle{AX: 0, AY: 0, BX: 0, BY: 1, CX: 0.42, CY: 0.5},
			DependsOn: []string{"black-stripe", "white-stripe", "green-stripe"},
		},
		{
			Name: "white-star", Color: palette.White,
			Shape:     geom.Star{CX: 0.155, CY: 0.5, R: 0.11, Inner: 0.5, Points: 7},
			DependsOn: []string{"red-triangle"},
		},
	},
})

// Germany: three horizontal stripes — a second fully parallel flag at a
// different stripe count for the decomposition ablation.
var Germany = register(&Flag{
	Name:     "germany",
	DefaultW: 12, DefaultH: 9,
	Layers: []Layer{
		{Name: "black-stripe", Color: palette.Black, Shape: geom.HStripe(0, 3)},
		{Name: "red-stripe", Color: palette.Red, Shape: geom.HStripe(1, 3)},
		{Name: "yellow-stripe", Color: palette.Yellow, Shape: geom.HStripe(2, 3)},
	},
})

// Japan: disc on a field — minimal two-layer dependency.
var Japan = register(&Flag{
	Name:     "japan",
	DefaultW: 15, DefaultH: 10,
	Layers: []Layer{
		{Name: "white-field", Color: palette.White, Shape: geom.Full{}},
		{
			Name: "red-disc", Color: palette.Red,
			Shape:     geom.Disc{CX: 0.5, CY: 0.5, R: 0.3},
			DependsOn: []string{"white-field"},
		},
	},
})

// Sweden: nordic cross — two-layer with an off-center cross, used by the
// block/cyclic decomposition ablation because its color regions are very
// unbalanced.
var Sweden = register(&Flag{
	Name:     "sweden",
	DefaultW: 16, DefaultH: 10,
	Layers: []Layer{
		{Name: "blue-field", Color: palette.Blue, Shape: geom.Full{}},
		{
			Name: "yellow-cross", Color: palette.Yellow,
			Shape:     geom.Cross{CX: 0.375, CY: 0.5, HalfWidth: 0.08},
			DependsOn: []string{"blue-field"},
		},
	},
})

// Poland: two stripes — the smallest multi-stripe flag, handy in tests.
var Poland = register(&Flag{
	Name:     "poland",
	DefaultW: 10, DefaultH: 8,
	Layers: []Layer{
		{Name: "white-stripe", Color: palette.White, Shape: geom.HStripe(0, 2)},
		{Name: "red-stripe", Color: palette.Red, Shape: geom.HStripe(1, 2)},
	},
})
