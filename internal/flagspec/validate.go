package flagspec

// Raster-aware validation and the dynamic-name resolver registry.
//
// Flag.Validate checks the structural invariants a hand-written spec can
// get wrong (names, colors, dependency ordering). Procedurally generated
// flags need a stronger contract — a shape drawn too thin for its grid
// rasterizes to zero cells and the planners then build empty layers — so
// the package-level Validate re-checks the spec against a concrete
// raster: every layer must cover at least one cell, and a full-coverage
// flag must leave no cell unpainted.
//
// The resolver registry lets a name scheme like "gen:v1:42:7" resolve
// anywhere a builtin name does today: Lookup consults the registry for
// prefixed names after the builtin table misses, so every caller of
// Lookup — sweep specs, wire DTOs, the differential harness, the CLI —
// inherits generated flags without knowing the generator exists.

import (
	"fmt"
	"strings"
	"sync"

	"flagsim/internal/geom"
)

// Validate checks f against a concrete w×h raster on top of the flag's
// structural invariants (Flag.Validate): every layer's shape must cover
// at least one cell, dependency references must resolve acyclically
// (guaranteed structurally: a layer may only depend on earlier layers),
// and, when fullCoverage is set, the union of all layers must paint
// every cell. Non-positive w or h fall back to the flag's defaults.
func Validate(f *Flag, w, h int, fullCoverage bool) error {
	if f == nil {
		return fmt.Errorf("flagspec: nil flag")
	}
	if err := f.Validate(); err != nil {
		return err
	}
	if w <= 0 {
		w = f.DefaultW
	}
	if h <= 0 {
		h = f.DefaultH
	}
	if w <= 0 || h <= 0 {
		return fmt.Errorf("flagspec: %s: non-positive raster %dx%d", f.Name, w, h)
	}
	painted := make([]bool, w*h)
	for _, l := range f.Layers {
		covered := 0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if l.Shape.Contains(geom.Pt{X: x, Y: y}, w, h) {
					covered++
					painted[y*w+x] = true
				}
			}
		}
		if covered == 0 {
			return fmt.Errorf("flagspec: %s: layer %q covers no cell at %dx%d", f.Name, l.Name, w, h)
		}
	}
	if fullCoverage {
		for i, p := range painted {
			if !p {
				return fmt.Errorf("flagspec: %s: cell (%d,%d) unpainted at %dx%d (full coverage required)",
					f.Name, i%w, i/w, w, h)
			}
		}
	}
	return nil
}

// resolvers maps a name-scheme prefix (the text before the first colon)
// to its resolver. Registration happens in package init functions, but
// the table is still guarded: tests exercise Lookup concurrently.
var resolvers struct {
	sync.RWMutex
	m map[string]func(name string) (*Flag, error)
}

// RegisterDynamic installs a resolver for names of the form
// "<prefix>:...". Lookup consults it after the builtin table misses, so
// a registered scheme's names work anywhere a builtin name does. The
// resolver must be deterministic — same name, same flag — because the
// sweep layer content-addresses results by what the name denotes.
// Registering a prefix twice panics, like a duplicate builtin would.
func RegisterDynamic(prefix string, fn func(name string) (*Flag, error)) {
	if prefix == "" || strings.Contains(prefix, ":") || fn == nil {
		panic("flagspec: invalid dynamic resolver registration")
	}
	resolvers.Lock()
	defer resolvers.Unlock()
	if resolvers.m == nil {
		resolvers.m = make(map[string]func(string) (*Flag, error))
	}
	if _, dup := resolvers.m[prefix]; dup {
		panic("flagspec: duplicate dynamic resolver " + prefix)
	}
	resolvers.m[prefix] = fn
}

// resolveDynamic routes a prefixed name to its registered resolver.
func resolveDynamic(name string) (*Flag, bool, error) {
	prefix, _, ok := strings.Cut(name, ":")
	if !ok {
		return nil, false, nil
	}
	resolvers.RLock()
	fn := resolvers.m[prefix]
	resolvers.RUnlock()
	if fn == nil {
		return nil, false, nil
	}
	f, err := fn(name)
	return f, true, err
}
