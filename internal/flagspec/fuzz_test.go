package flagspec

import (
	"strings"
	"testing"

	"flagsim/internal/geom"
)

func pt(x, y int) geom.Pt { return geom.Pt{X: x, Y: y} }

// FuzzDecodeJSON hardens the custom-flag parser: any input either decodes
// to a flag that validates and rasterizes without panicking, or returns an
// error — never both, never a crash.
func FuzzDecodeJSON(f *testing.F) {
	f.Add(`{"name":"x","w":4,"h":4,"layers":[{"name":"a","color":"red","shape":{"type":"full"}}]}`)
	f.Add(`{"name":"x","w":8,"h":8,"layers":[
		{"name":"bg","color":"white","shape":{"type":"full"}},
		{"name":"d","color":"red","depends_on":["bg"],"shape":{"type":"disc","cx":0.5,"cy":0.5,"r":0.3}}]}`)
	f.Add(`{"name":"u","w":4,"h":4,"layers":[{"name":"a","color":"blue",
		"shape":{"type":"union","shapes":[{"type":"hstripe","i":0,"n":2},{"type":"saltire","half_width":0.1}]}}]}`)
	f.Add(`{"layers":[{"shape":{"type":"star"}}]}`)
	f.Add(`not json at all`)
	f.Add(`{"name":"x","w":-1,"h":4,"layers":[]}`)
	f.Fuzz(func(t *testing.T, src string) {
		flag, err := DecodeJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		if flag.Validate() != nil {
			t.Fatalf("DecodeJSON returned an invalid flag for %q", src)
		}
		// Rasterization must not panic on any accepted spec.
		w, h := flag.DefaultW, flag.DefaultH
		if w > 64 {
			w = 64
		}
		if h > 64 {
			h = 64
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for _, l := range flag.Layers {
					_ = l.Shape.Contains(pt(x, y), w, h)
				}
			}
		}
	})
}
