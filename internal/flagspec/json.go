package flagspec

import (
	"encoding/json"
	"fmt"
	"io"

	"flagsim/internal/geom"
	"flagsim/internal/palette"
)

// JSON flag specifications let instructors define their own flags for the
// activity without recompiling — the paper's "Other flags can also be
// used" made concrete. The wire schema mirrors the Layer/Shape model with
// a tagged-union shape encoding:
//
//	{
//	  "name": "myflag", "w": 12, "h": 8,
//	  "layers": [
//	    {"name": "field", "color": "blue", "shape": {"type": "full"}},
//	    {"name": "disc", "color": "red", "depends_on": ["field"],
//	     "shape": {"type": "disc", "cx": 0.5, "cy": 0.5, "r": 0.3}}
//	  ]
//	}
//
// Supported shape types: full, band, hstripe, vstripe, disc, triangle,
// diagonal, cross, saltire, star, mapleleaf, union.

type jsonFlag struct {
	Name   string      `json:"name"`
	W      int         `json:"w"`
	H      int         `json:"h"`
	Layers []jsonLayer `json:"layers"`
}

type jsonLayer struct {
	Name      string          `json:"name"`
	Color     string          `json:"color"`
	Shape     json.RawMessage `json:"shape"`
	DependsOn []string        `json:"depends_on,omitempty"`
}

// Shape parameters by type (all coordinates normalized to [0,1]):
//
//	full       —
//	band       x0 y0 x1 y1
//	hstripe    i n          (i-th of n horizontal stripes)
//	vstripe    i n
//	disc       cx cy r
//	triangle   ax ay bx by cx cy
//	diagonal   x0 y0 x1 y1 half_width
//	cross      cx cy half_width
//	saltire    half_width
//	star       cx cy r inner points rotation
//	mapleleaf  cx cy scale
//	union      shapes: [shape, ...]
func decodeShape(raw json.RawMessage) (geom.Shape, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("flagspec: shape: %w", err)
	}
	var typ string
	if err := json.Unmarshal(m["type"], &typ); err != nil {
		return nil, fmt.Errorf("flagspec: shape has no type: %w", err)
	}
	f := func(key string, def float64) float64 {
		raw, ok := m[key]
		if !ok {
			return def
		}
		var v float64
		if json.Unmarshal(raw, &v) != nil {
			return def
		}
		return v
	}
	i := func(key string, def int) int {
		raw, ok := m[key]
		if !ok {
			return def
		}
		var v int
		if json.Unmarshal(raw, &v) != nil {
			return def
		}
		return v
	}
	switch typ {
	case "full":
		return geom.Full{}, nil
	case "band":
		return geom.Band{X0: f("x0", 0), Y0: f("y0", 0), X1: f("x1", 1), Y1: f("y1", 1)}, nil
	case "hstripe":
		n := i("n", 0)
		idx := i("i", -1)
		if n <= 0 || idx < 0 || idx >= n {
			return nil, fmt.Errorf("flagspec: hstripe needs 0 <= i < n, got i=%d n=%d", idx, n)
		}
		return geom.HStripe(idx, n), nil
	case "vstripe":
		n := i("n", 0)
		idx := i("i", -1)
		if n <= 0 || idx < 0 || idx >= n {
			return nil, fmt.Errorf("flagspec: vstripe needs 0 <= i < n, got i=%d n=%d", idx, n)
		}
		return geom.VStripe(idx, n), nil
	case "disc":
		r := f("r", 0)
		if r <= 0 {
			return nil, fmt.Errorf("flagspec: disc needs positive r")
		}
		return geom.Disc{CX: f("cx", 0.5), CY: f("cy", 0.5), R: r}, nil
	case "triangle":
		return geom.Triangle{
			AX: f("ax", 0), AY: f("ay", 0),
			BX: f("bx", 0), BY: f("by", 1),
			CX: f("cx", 0.5), CY: f("cy", 0.5),
		}, nil
	case "diagonal":
		hw := f("half_width", 0)
		if hw <= 0 {
			return nil, fmt.Errorf("flagspec: diagonal needs positive half_width")
		}
		return geom.DiagonalStripe{
			X0: f("x0", 0), Y0: f("y0", 0), X1: f("x1", 1), Y1: f("y1", 1),
			HalfWidth: hw,
		}, nil
	case "cross":
		hw := f("half_width", 0)
		if hw <= 0 {
			return nil, fmt.Errorf("flagspec: cross needs positive half_width")
		}
		return geom.Cross{CX: f("cx", 0.5), CY: f("cy", 0.5), HalfWidth: hw}, nil
	case "saltire":
		hw := f("half_width", 0)
		if hw <= 0 {
			return nil, fmt.Errorf("flagspec: saltire needs positive half_width")
		}
		return geom.Saltire{HalfWidth: hw}, nil
	case "star":
		points := i("points", 5)
		if points < 2 {
			return nil, fmt.Errorf("flagspec: star needs at least 2 points")
		}
		r := f("r", 0)
		if r <= 0 {
			return nil, fmt.Errorf("flagspec: star needs positive r")
		}
		return geom.Star{
			CX: f("cx", 0.5), CY: f("cy", 0.5), R: r,
			Inner: f("inner", 0.5), Points: points, Rotation: f("rotation", 0),
		}, nil
	case "mapleleaf":
		scale := f("scale", 0)
		if scale <= 0 {
			return nil, fmt.Errorf("flagspec: mapleleaf needs positive scale")
		}
		return geom.MapleLeaf{CX: f("cx", 0.5), CY: f("cy", 0.5), Scale: scale}, nil
	case "union":
		rawShapes, ok := m["shapes"]
		if !ok {
			return nil, fmt.Errorf("flagspec: union needs shapes")
		}
		var members []json.RawMessage
		if err := json.Unmarshal(rawShapes, &members); err != nil {
			return nil, fmt.Errorf("flagspec: union shapes: %w", err)
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("flagspec: empty union")
		}
		u := make(geom.Union, 0, len(members))
		for _, member := range members {
			s, err := decodeShape(member)
			if err != nil {
				return nil, err
			}
			u = append(u, s)
		}
		return u, nil
	default:
		return nil, fmt.Errorf("flagspec: unknown shape type %q", typ)
	}
}

// DecodeJSON reads a flag specification from r and validates it. The flag
// is not registered; pass it directly to grid.Rasterize or the planners.
func DecodeJSON(r io.Reader) (*Flag, error) {
	var jf jsonFlag
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jf); err != nil {
		return nil, fmt.Errorf("flagspec: decode: %w", err)
	}
	f := &Flag{Name: jf.Name, DefaultW: jf.W, DefaultH: jf.H}
	for _, jl := range jf.Layers {
		color, err := palette.Parse(jl.Color)
		if err != nil {
			return nil, fmt.Errorf("flagspec: layer %q: %w", jl.Name, err)
		}
		if jl.Shape == nil {
			return nil, fmt.Errorf("flagspec: layer %q has no shape", jl.Name)
		}
		shape, err := decodeShape(jl.Shape)
		if err != nil {
			return nil, fmt.Errorf("flagspec: layer %q: %w", jl.Name, err)
		}
		f.Layers = append(f.Layers, Layer{
			Name: jl.Name, Color: color, Shape: shape, DependsOn: jl.DependsOn,
		})
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
