package flagspec

import (
	"strings"
	"testing"

	"flagsim/internal/geom"
	"flagsim/internal/palette"
)

func decode(t *testing.T, src string) *Flag {
	t.Helper()
	f, err := DecodeJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDecodeJSONMinimal(t *testing.T) {
	f := decode(t, `{
		"name": "dot", "w": 10, "h": 10,
		"layers": [
			{"name": "field", "color": "white", "shape": {"type": "full"}},
			{"name": "disc", "color": "red", "depends_on": ["field"],
			 "shape": {"type": "disc", "cx": 0.5, "cy": 0.5, "r": 0.3}}
		]
	}`)
	if f.Name != "dot" || f.DefaultW != 10 || f.DefaultH != 10 {
		t.Fatalf("header %+v", f)
	}
	if len(f.Layers) != 2 {
		t.Fatalf("%d layers", len(f.Layers))
	}
	if f.Layers[1].Color != palette.Red {
		t.Fatalf("disc color %v", f.Layers[1].Color)
	}
	if len(f.Layers[1].DependsOn) != 1 || f.Layers[1].DependsOn[0] != "field" {
		t.Fatalf("deps %v", f.Layers[1].DependsOn)
	}
	// The decoded shape must behave like the built-in equivalent.
	if !f.Layers[1].Shape.Contains(geom.Pt{X: 5, Y: 5}, 10, 10) {
		t.Fatal("decoded disc misses its center")
	}
}

func TestDecodeJSONAllShapeTypes(t *testing.T) {
	shapes := []string{
		`{"type": "full"}`,
		`{"type": "band", "x0": 0, "y0": 0, "x1": 0.5, "y1": 1}`,
		`{"type": "hstripe", "i": 0, "n": 3}`,
		`{"type": "vstripe", "i": 2, "n": 3}`,
		`{"type": "disc", "cx": 0.5, "cy": 0.5, "r": 0.2}`,
		`{"type": "triangle", "ax": 0, "ay": 0, "bx": 0, "by": 1, "cx": 0.4, "cy": 0.5}`,
		`{"type": "diagonal", "x0": 0, "y0": 0, "x1": 1, "y1": 1, "half_width": 0.1}`,
		`{"type": "cross", "cx": 0.5, "cy": 0.5, "half_width": 0.1}`,
		`{"type": "saltire", "half_width": 0.1}`,
		`{"type": "star", "cx": 0.5, "cy": 0.5, "r": 0.3, "inner": 0.5, "points": 5}`,
		`{"type": "mapleleaf", "cx": 0.5, "cy": 0.5, "scale": 0.4}`,
		`{"type": "union", "shapes": [{"type": "hstripe", "i": 0, "n": 2}, {"type": "hstripe", "i": 1, "n": 2}]}`,
	}
	for _, s := range shapes {
		src := `{"name": "x", "w": 8, "h": 8, "layers": [
			{"name": "bg", "color": "white", "shape": {"type": "full"}},
			{"name": "fg", "color": "red", "depends_on": ["bg"], "shape": ` + s + `}
		]}`
		f := decode(t, src)
		// Every shape must contain at least one cell on an 8x8 canvas.
		found := false
		for y := 0; y < 8 && !found; y++ {
			for x := 0; x < 8 && !found; x++ {
				if f.Layers[1].Shape.Contains(geom.Pt{X: x, Y: y}, 8, 8) {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("shape %s covers no cells", s)
		}
	}
}

func TestDecodeJSONRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"not json", `nope`},
		{"no layers", `{"name": "x", "w": 4, "h": 4, "layers": []}`},
		{"bad color", `{"name": "x", "w": 4, "h": 4, "layers": [
			{"name": "a", "color": "chartreuse", "shape": {"type": "full"}}]}`},
		{"no shape", `{"name": "x", "w": 4, "h": 4, "layers": [
			{"name": "a", "color": "red"}]}`},
		{"unknown shape", `{"name": "x", "w": 4, "h": 4, "layers": [
			{"name": "a", "color": "red", "shape": {"type": "pentagon"}}]}`},
		{"bad hstripe", `{"name": "x", "w": 4, "h": 4, "layers": [
			{"name": "a", "color": "red", "shape": {"type": "hstripe", "i": 3, "n": 3}}]}`},
		{"zero disc", `{"name": "x", "w": 4, "h": 4, "layers": [
			{"name": "a", "color": "red", "shape": {"type": "disc"}}]}`},
		{"empty union", `{"name": "x", "w": 4, "h": 4, "layers": [
			{"name": "a", "color": "red", "shape": {"type": "union", "shapes": []}}]}`},
		{"bad dep", `{"name": "x", "w": 4, "h": 4, "layers": [
			{"name": "a", "color": "red", "shape": {"type": "full"}, "depends_on": ["ghost"]}]}`},
		{"bad size", `{"name": "x", "w": 0, "h": 4, "layers": [
			{"name": "a", "color": "red", "shape": {"type": "full"}}]}`},
	}
	for _, tc := range cases {
		if _, err := DecodeJSON(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDecodedFlagRasterizesLikeBuiltin(t *testing.T) {
	// Rebuild France in JSON and compare cell-for-cell with the builtin.
	src := `{"name": "france-json", "w": 12, "h": 8, "layers": [
		{"name": "blue-stripe", "color": "blue", "shape": {"type": "vstripe", "i": 0, "n": 3}},
		{"name": "white-stripe", "color": "white", "shape": {"type": "vstripe", "i": 1, "n": 3}},
		{"name": "red-stripe", "color": "red", "shape": {"type": "vstripe", "i": 2, "n": 3}}
	]}`
	f := decode(t, src)
	for y := 0; y < 8; y++ {
		for x := 0; x < 12; x++ {
			p := geom.Pt{X: x, Y: y}
			for li := range f.Layers {
				got := f.Layers[li].Shape.Contains(p, 12, 8)
				want := France.Layers[li].Shape.Contains(p, 12, 8)
				if got != want {
					t.Fatalf("layer %d cell %v: json %v builtin %v", li, p, got, want)
				}
			}
		}
	}
}
