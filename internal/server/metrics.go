package server

// Hand-rolled Prometheus metrics: counters, gauges, and histograms with
// a text-format (exposition format 0.0.4) writer. The whole point is to
// keep the module dependency-free — the service exports the handful of
// serving metrics that matter (request counts by endpoint/status, queue
// depth, in-flight, latency histograms, sweep cache hit/miss) without
// pulling in client_golang.
//
// Concurrency: counters and histogram buckets are lock-free atomics on
// the request path; the only lock is the label-map lookup on first use
// of a new (endpoint, code) pair. Scrapes take the same lock briefly to
// snapshot the label set.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// counter is a monotonically increasing uint64.
type counter struct{ v atomic.Uint64 }

func (c *counter) inc()          { c.v.Add(1) }
func (c *counter) value() uint64 { return c.v.Load() }

// labeledCounter is a counter family keyed by one label tuple rendered
// as a string (e.g. `endpoint="/v1/run",code="200"`).
type labeledCounter struct {
	mu sync.Mutex
	m  map[string]*counter
}

func newLabeledCounter() *labeledCounter {
	return &labeledCounter{m: make(map[string]*counter)}
}

func (l *labeledCounter) get(labels string) *counter {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.m[labels]
	if !ok {
		c = &counter{}
		l.m[labels] = c
	}
	return c
}

// snapshot returns the label tuples in sorted order with their values,
// so scrapes are deterministic.
func (l *labeledCounter) snapshot() []labeledValue {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]labeledValue, 0, len(l.m))
	for labels, c := range l.m {
		out = append(out, labeledValue{labels, float64(c.value())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

type labeledValue struct {
	labels string
	value  float64
}

// latencyBuckets are the histogram upper bounds in seconds — the usual
// Prometheus latency ladder, wide enough for cold multi-second sweeps.
var latencyBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket cumulative histogram of durations.
type histogram struct {
	bounds   []float64 // upper bounds, seconds, ascending
	buckets  []atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, b := range h.bounds {
		if s <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// metrics is the service's metric registry.
type metrics struct {
	start time.Time
	// requests counts completed HTTP requests by endpoint and status.
	requests *labeledCounter
	// rejected counts admission fast-fails (the 429s), by endpoint.
	rejected *labeledCounter
	// latency histograms per simulation endpoint.
	runLatency   *histogram
	sweepLatency *histogram
	// canceled counts runs aborted by client disconnect or deadline.
	canceled counter
}

func newMetrics() *metrics {
	return &metrics{
		start:        time.Now(),
		requests:     newLabeledCounter(),
		rejected:     newLabeledCounter(),
		runLatency:   newHistogram(latencyBuckets),
		sweepLatency: newHistogram(latencyBuckets),
	}
}

func requestLabels(endpoint string, code int) string {
	return fmt.Sprintf("endpoint=%q,code=%q", endpoint, strconv.Itoa(code))
}

func endpointLabels(endpoint string) string {
	return fmt.Sprintf("endpoint=%q", endpoint)
}

// gaugeSnapshot carries the point-in-time serving state a scrape reads
// from the admission gate and the sweeper.
type gaugeSnapshot struct {
	inFlight, queued                   int
	cacheHits, cacheMisses, cacheCount int
}

// writeTo renders the registry in Prometheus text format.
func (m *metrics) writeTo(w io.Writer, g gaugeSnapshot) {
	fmt.Fprintf(w, "# HELP flagsimd_requests_total Completed HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_requests_total counter\n")
	for _, lv := range m.requests.snapshot() {
		fmt.Fprintf(w, "flagsimd_requests_total{%s} %g\n", lv.labels, lv.value)
	}
	fmt.Fprintf(w, "# HELP flagsimd_rejected_total Requests fast-failed by admission control (HTTP 429).\n")
	fmt.Fprintf(w, "# TYPE flagsimd_rejected_total counter\n")
	for _, lv := range m.rejected.snapshot() {
		fmt.Fprintf(w, "flagsimd_rejected_total{%s} %g\n", lv.labels, lv.value)
	}
	fmt.Fprintf(w, "# HELP flagsimd_runs_canceled_total Simulation runs aborted by client disconnect or deadline.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_runs_canceled_total counter\n")
	fmt.Fprintf(w, "flagsimd_runs_canceled_total %d\n", m.canceled.value())

	fmt.Fprintf(w, "# HELP flagsimd_in_flight Requests currently executing on the worker pool.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_in_flight gauge\n")
	fmt.Fprintf(w, "flagsimd_in_flight %d\n", g.inFlight)
	fmt.Fprintf(w, "# HELP flagsimd_queue_depth Requests waiting for a worker slot.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_queue_depth gauge\n")
	fmt.Fprintf(w, "flagsimd_queue_depth %d\n", g.queued)

	fmt.Fprintf(w, "# HELP flagsimd_sweep_cache_hits_total Sweep memo-cache hits since process start.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_sweep_cache_hits_total counter\n")
	fmt.Fprintf(w, "flagsimd_sweep_cache_hits_total %d\n", g.cacheHits)
	fmt.Fprintf(w, "# HELP flagsimd_sweep_cache_misses_total Sweep memo-cache misses since process start.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_sweep_cache_misses_total counter\n")
	fmt.Fprintf(w, "flagsimd_sweep_cache_misses_total %d\n", g.cacheMisses)
	fmt.Fprintf(w, "# HELP flagsimd_sweep_cache_entries Memoized results resident in the sweep cache.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_sweep_cache_entries gauge\n")
	fmt.Fprintf(w, "flagsimd_sweep_cache_entries %d\n", g.cacheCount)

	m.writeHistogram(w, "flagsimd_run_seconds", "Wall time of /v1/run requests.", m.runLatency)
	m.writeHistogram(w, "flagsimd_sweep_seconds", "Wall time of /v1/sweep requests.", m.sweepLatency)

	fmt.Fprintf(w, "# HELP flagsimd_uptime_seconds Seconds since process start.\n")
	fmt.Fprintf(w, "# TYPE flagsimd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "flagsimd_uptime_seconds %g\n", time.Since(m.start).Seconds())
}

func (m *metrics) writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	count := h.count.Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}
