package server

// The service's metric registry, assembled on the shared observability
// core (internal/obs). One obs.Registry carries three layers of families
// so a single /metrics scrape reflects the whole stack:
//
//   - serving state (flagsimd_*): request counts by endpoint/status,
//     admission gate occupancy, latency histograms, sweep-cache and
//     worker-pool health — registered here;
//   - engine state (flagsim_engine_*): cells painted, implement traffic,
//     blocks by kind/color, steals — fed by the obs.MetricsProbe the
//     Server installs on its sweep pool;
//   - runtime state (go_*): goroutines, heap, GC — obs.RegisterGoRuntime.
//
// Concurrency: counters and histogram buckets are lock-free atomics on
// the request path; gauges read from the gate and the sweeper at scrape
// time through closures, so a scrape is always a point-in-time snapshot.

import (
	"time"

	"flagsim/internal/obs"
	"flagsim/internal/sweep"
)

// metrics bundles the registry and the serving-layer instruments the
// request path updates directly.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	// requests counts completed HTTP requests by endpoint and status.
	requests *obs.CounterVec
	// rejected counts admission fast-fails (the 429s), by endpoint.
	rejected *obs.CounterVec
	// canceled counts runs aborted by client disconnect or deadline.
	canceled *obs.Counter
	// latency histograms per simulation endpoint.
	runLatency   *obs.Histogram
	sweepLatency *obs.Histogram

	// engine feeds the flagsim_engine_* families; the Server installs it
	// on the sweep pool so every compute reports here.
	engine *obs.MetricsProbe
}

// sweepReader is the slice of the Sweeper the scrape-time gauges read.
// It is an interface so New can hand newMetrics a late-bound view: the
// registry's engine probe must exist before the Sweeper it is installed
// on.
type sweepReader interface {
	Stats() sweep.CacheStats
	PoolDepth() (running, queued int)
}

// newMetrics builds the registry. gate and sweeper back the scrape-time
// gauges; they must outlive the returned metrics.
func newMetrics(gate *gate, sweeper sweepReader) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{start: time.Now(), reg: reg}

	m.requests = reg.CounterVec("flagsimd_requests_total",
		"Completed HTTP requests by endpoint and status code.", "endpoint", "code")
	m.rejected = reg.CounterVec("flagsimd_rejected_total",
		"Requests fast-failed by admission control (HTTP 429).", "endpoint")
	m.canceled = reg.Counter("flagsimd_runs_canceled_total",
		"Simulation runs aborted by client disconnect or deadline.")

	reg.GaugeFunc("flagsimd_in_flight",
		"Requests currently executing on the worker pool.",
		func() float64 { inFlight, _ := gate.depth(); return float64(inFlight) })
	reg.GaugeFunc("flagsimd_queue_depth",
		"Requests waiting for a worker slot.",
		func() float64 { _, queued := gate.depth(); return float64(queued) })

	reg.CounterFunc("flagsimd_sweep_cache_hits_total",
		"Sweep memo-cache hits since process start.",
		func() float64 { return float64(sweeper.Stats().Hits) })
	reg.CounterFunc("flagsimd_sweep_cache_misses_total",
		"Sweep memo-cache misses since process start.",
		func() float64 { return float64(sweeper.Stats().Misses) })
	reg.GaugeFunc("flagsimd_sweep_cache_entries",
		"Memoized results resident in the sweep cache.",
		func() float64 { return float64(sweeper.Stats().Entries) })
	reg.CounterFunc("flagsimd_sweep_cache_evictions_total",
		"Sweep cache entries evicted (canceled computes are never memoized).",
		func() float64 { return float64(sweeper.Stats().Evictions) })
	reg.GaugeFunc("flagsimd_sweep_pool_running",
		"Sweep pool workers currently computing a spec.",
		func() float64 { running, _ := sweeper.PoolDepth(); return float64(running) })
	reg.GaugeFunc("flagsimd_sweep_pool_queued",
		"Specs waiting for a sweep pool worker slot.",
		func() float64 { _, queued := sweeper.PoolDepth(); return float64(queued) })

	m.runLatency = reg.Histogram("flagsimd_run_seconds",
		"Wall time of /v1/run requests.", obs.DefaultLatencyBuckets)
	m.sweepLatency = reg.Histogram("flagsimd_sweep_seconds",
		"Wall time of /v1/sweep requests.", obs.DefaultLatencyBuckets)

	reg.GaugeFunc("flagsimd_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(m.start).Seconds() })

	m.engine = obs.NewMetricsProbe(reg)
	obs.RegisterGoRuntime(reg)
	return m
}
