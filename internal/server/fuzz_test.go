package server

// Wire-DTO robustness: the run endpoint's decode/resolve path is fed
// adversarial JSON. The invariants under fuzzing are (1) decoding and
// spec resolution never panic, and (2) a request the resolver rejects
// comes back as a client error (400), never a server error (500) — a
// malformed fault plan or duration must not look like a service fault.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fuzzSeedBodies is the corpus: valid requests, every rejection branch
// of RunRequest.spec and FaultRequest.plan, and structurally hostile
// payloads.
var fuzzSeedBodies = []string{
	`{}`,
	`{"flag":"mauritius","scenario":4,"pipelined":true}`,
	`{"exec":"dynamic","workers":3,"policy":"pull-color-affinity"}`,
	`{"exec":"warp"}`,
	`{"flag":"atlantis"}`,
	`{"scenario":9}`,
	`{"scenario":2,"pipelined":true}`,
	`{"kind":"quill"}`,
	`{"setup":"twenty seconds"}`,
	`{"setup":"-5s"}`,
	`{"hold":"never"}`,
	`{"policy":"pull-random"}`,
	`{"skills":[1.5]}`,
	`{"faults":{"preset":"heavy","seed":7}}`,
	`{"faults":{"preset":"catastrophic"}}`,
	`{"faults":{"preset":"light","degrade_prob":0.5}}`,
	`{"faults":{"degrade_prob":0.5}}`,
	`{"faults":{"degrade_prob":0.1,"degrade_factor":0.5}}`,
	`{"faults":{"degrade_prob":2,"degrade_factor":2}}`,
	`{"faults":{"handoff_delay_prob":0.5}}`,
	`{"faults":{"handoff_delay_prob":0.5,"handoff_delay":"soon"}}`,
	`{"faults":{"stalls":[{"proc":-2,"at":"1s","for":"1s"}]}}`,
	`{"faults":{"stalls":[{"proc":0,"at":"nope","for":"1s"}]}}`,
	`{"faults":{"stalls":[{"proc":0,"at":"1s","for":"-1s"}]}}`,
	`{"faults":{"lost_paint_prob":0.5}}`,
	`{"w":-1,"h":-1}`,
	`{"w":1000000000,"h":1000000000}`,
	`{"seed":18446744073709551615}`,
	`{"unknown_field":1}`,
	`[1,2,3]`,
	`"run"`,
	`{"flag":`,
	"{\"flag\":\"\x00\"}",
	`{"faults":null}`,
	`{"faults":{}}`,
}

// FuzzRunRequest drives raw bodies through the exact decode+resolve
// stack the handler uses. Panics surface as fuzz failures; every error
// is fine — this fuzzer pins "malformed input is an error, not a crash".
func FuzzRunRequest(f *testing.F) {
	for _, body := range fuzzSeedBodies {
		f.Add([]byte(body))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := http.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
		if err != nil {
			t.Skip()
		}
		var run RunRequest
		if err := decodeJSON(req, &run); err != nil {
			return
		}
		// Decoded fine: resolution must not panic either, whatever the
		// field values. (SweepRequest resolution reuses this same path
		// per grid cell, so this covers /v1/sweep's resolver too.)
		_, _ = run.Spec()
	})
}

// TestRunRequestErrorsAre400 posts every rejection-branch body through
// the real handler stack and requires a 400 — proving resolver errors
// are classified as the client's fault, not mapped to 500 by accident.
func TestRunRequestErrorsAre400(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range fuzzSeedBodies {
		var run RunRequest
		req, _ := http.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
		decodeErr := decodeJSON(req, &run)
		resolveErr := error(nil)
		if decodeErr == nil {
			_, resolveErr = run.Spec()
		}
		if decodeErr == nil && resolveErr == nil {
			continue // a valid request; covered by the handler tests
		}
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("body %q: %v", body, err)
		}
		var payload map[string]any
		decodeFailed := json.NewDecoder(resp.Body).Decode(&payload) != nil
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if decodeFailed || payload["error"] == "" {
			t.Errorf("body %q: 400 without a JSON error payload", body)
		}
	}
}

// TestRunRequestFaultsRoundTrip pins the fault DTO's happy path: a
// preset request executes, reports its injection tally in the response,
// and hashes to a different spec than its fault-free twin — while the
// fault-free response carries no faults section at all.
func TestRunRequestFaultsRoundTrip(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) RunResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %q: status %d", body, resp.StatusCode)
		}
		var out RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	clean := post(`{"scenario":4,"pipelined":true,"seed":7}`)
	if clean.Result.Faults != nil {
		t.Fatalf("fault-free response carries a faults section: %+v", clean.Result.Faults)
	}
	faulted := post(`{"scenario":4,"pipelined":true,"seed":7,"faults":{"preset":"heavy","seed":3}}`)
	if faulted.Result.Faults == nil {
		t.Fatal("heavy-preset response carries no faults section")
	}
	if faulted.Result.Faults.DegradedCells == 0 {
		t.Errorf("heavy preset degraded no cells: %+v", faulted.Result.Faults)
	}
	if faulted.Spec == clean.Spec {
		t.Error("faulted spec label identical to fault-free label")
	}
	if faulted.Result.GridSHA256 != clean.Result.GridSHA256 {
		t.Error("faults changed the final grid")
	}
	if faulted.Result.MakespanNS <= clean.Result.MakespanNS {
		t.Errorf("heavy faults did not slow the run: %d vs %d ns",
			faulted.Result.MakespanNS, clean.Result.MakespanNS)
	}
	// Determinism over the wire: the same faulted request replays to the
	// identical result section (second request is a cache hit).
	again := post(`{"scenario":4,"pipelined":true,"seed":7,"faults":{"preset":"heavy","seed":3}}`)
	if !again.CacheHit {
		t.Error("identical faulted request missed the cache")
	}
	a, _ := json.Marshal(faulted.Result)
	b, _ := json.Marshal(again.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("faulted result section not byte-identical across requests:\n%s\n%s", a, b)
	}
}
