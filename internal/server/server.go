// Package server is flagsim's network surface: a production-shaped HTTP
// JSON service that runs scenario simulations and parameter sweeps on
// demand. The serving core is a bounded admission queue (MaxInFlight
// executing, MaxQueue waiting, fast-fail 429 beyond that) in front of
// the sweep subsystem's worker pool, whose content-addressed memo cache
// lives for the process lifetime — identical requests are served warm
// across clients.
//
// Endpoints:
//
//	POST /v1/run     one scenario run (JSON spec in, full result out);
//	                 ?trace=chrome streams the run's Chrome trace instead
//	POST /v1/sweep   a cartesian grid batch (compact per-run rows out)
//	GET  /v1/flags   the built-in flag catalog
//	GET  /v1/runs    recent run summaries from the bounded run ring
//	GET  /v1/runs/{id}/trace  a recent run's Chrome trace by run ID
//	GET  /healthz    liveness + serving gauges
//	GET  /metrics    Prometheus text exposition (serving + engine + runtime)
//
// Observability: every request gets a run ID (X-Run-ID header, pprof
// labels, structured log line, run-ring key); the /metrics registry is
// the shared internal/obs one, with an engine MetricsProbe installed on
// the sweep pool so a scrape reflects the simulator itself, not just the
// HTTP layer.
//
// Cancellation contract: every run executes under the request's context
// (optionally bounded by RequestTimeout), threaded through the sweep
// pool into the engine's event loop — a client that disconnects mid-run
// stops the simulation at the next engine checkpoint instead of burning
// CPU to the end, and canceled computes are never memoized.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"flagsim/internal/obs"
	"flagsim/internal/sim"
	"flagsim/internal/sweep"
)

// Config parameterizes the service. The zero value serves with sensible
// bounds (see the field comments).
type Config struct {
	// Addr is the listen address; default ":8080".
	Addr string
	// MaxInFlight bounds concurrently executing simulation requests;
	// <= 0 means runtime.GOMAXPROCS(0).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// the service fast-fails with 429. < 0 means 0 (no queue);
	// 0 means the default of 64.
	MaxQueue int
	// RequestTimeout caps each simulation request's execution time;
	// <= 0 disables the per-request deadline.
	RequestTimeout time.Duration
	// SweepWorkers sizes the underlying sweep pool; <= 0 means
	// runtime.GOMAXPROCS(0).
	SweepWorkers int
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the serve context is canceled; default 30s.
	DrainTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses;
	// default 1s.
	RetryAfter time.Duration
	// MaxSweepSpecs caps the expanded grid size of one /v1/sweep request;
	// default 4096.
	MaxSweepSpecs int
	// Logger receives the request-scoped structured log (run ID, endpoint,
	// spec, cache outcome, latency). Nil discards everything.
	Logger *slog.Logger
	// SlowRequest promotes a simulation request's log line to Warn when
	// its wall time exceeds this threshold; <= 0 disables the promotion.
	SlowRequest time.Duration
	// RunRingSize bounds the in-memory ring of recent run summaries that
	// backs /v1/runs and the trace endpoint; default 128.
	RunRingSize int
	// Capture, when non-nil, receives every simulation request/response
	// exchange (the /v1/run and /v1/sweep POST surface) after the
	// response is written — the hook live traffic is recorded through
	// (see internal/workload's trace format and flagsimd -capture). The
	// hook runs on the request goroutine and may be called concurrently;
	// it must be goroutine-safe and should return quickly.
	Capture func(CapturedExchange)
}

// CapturedExchange is one request/response pair handed to the Capture
// hook: everything needed to replay the call and verify the response,
// nothing tied to the live connection.
type CapturedExchange struct {
	// At is the request's arrival offset from server start, so a capture
	// preserves the live traffic's temporal shape.
	At time.Duration
	// Method and Path identify the call; Path includes the query string
	// ("/v1/run?trace=chrome").
	Method, Path string
	// Status is the HTTP status the handler wrote.
	Status int
	// ReqBody and RespBody are the full request and response bodies.
	ReqBody, RespBody []byte
	// Latency is the handler's wall time.
	Latency time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue == 0:
		c.MaxQueue = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSweepSpecs <= 0 {
		c.MaxSweepSpecs = 4096
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.RunRingSize <= 0 {
		c.RunRingSize = 128
	}
	return c
}

// Server is the HTTP simulation service. Create one with New; it is
// safe for concurrent use.
type Server struct {
	cfg     Config
	sweeper *sweep.Sweeper
	gate    *gate
	metrics *metrics
	ring    *obs.RunRing
	logger  *slog.Logger
	mux     *http.ServeMux

	// testHookAdmitted, when set, runs after a simulation request clears
	// admission and before it executes — the deterministic seam the
	// backpressure and drain tests block on.
	testHookAdmitted func()
}

// New assembles a Server. The sweep pool and its memo cache live as
// long as the Server, so repeated requests are served warm, and the
// engine metrics probe is installed on the pool so every compute feeds
// the shared registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	g := newGate(cfg.MaxInFlight, cfg.MaxQueue)
	s := &Server{cfg: cfg, gate: g, ring: obs.NewRunRing(cfg.RunRingSize), logger: cfg.Logger}
	// The registry's sweep gauges read the Sweeper at scrape time, and
	// the Sweeper's pool probes come from the registry — so the registry
	// is built first against a late-bound view (sweepStats) and the
	// Sweeper second, with the freshly registered engine probe installed.
	s.metrics = newMetrics(g, sweepStats{s})
	s.sweeper = sweep.New(sweep.Options{
		Workers: cfg.SweepWorkers,
		Probes:  []sim.Probe{s.metrics.engine},
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.instrument("/v1/run", s.handleRun))
	s.mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/flags", s.instrument("/v1/flags", s.handleFlags))
	s.mux.HandleFunc("/v1/runs", s.instrument("/v1/runs", s.handleRuns))
	s.mux.HandleFunc("/v1/runs/{id}/trace", s.instrument("/v1/runs/trace", s.handleRunTrace))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler (for embedding or tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Sweeper exposes the process-lifetime sweep pool, e.g. for pre-warming
// the cache before a benchmark.
func (s *Server) Sweeper() *sweep.Sweeper { return s.sweeper }

// Metrics exposes the server's observability registry, e.g. for
// embedding additional families before serving.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// statusRecorder captures the status code a handler wrote and, when the
// capture hook is armed, tees the response body.
type statusRecorder struct {
	http.ResponseWriter
	status int
	body   *bytes.Buffer
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.body != nil {
		r.body.Write(p)
	}
	return r.ResponseWriter.Write(p)
}

// reqInfo is the per-request scratchpad handlers fill so the instrument
// wrapper can log and ring-record with handler-level detail (spec label,
// spec hash, cache outcome) without re-parsing anything.
type reqInfo struct {
	spec     string
	specHash string
	cacheHit bool
	outcome  string
	runs     int
	makespan time.Duration
	events   uint64
	procs    []string
	trace    []sim.Span
}

type reqInfoKey struct{}

// info returns the request's scratchpad, or a throwaway one when the
// handler runs outside instrument (direct Handler() tests).
func info(r *http.Request) *reqInfo {
	if ri, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		return ri
	}
	return &reqInfo{}
}

// simEndpoint reports whether the endpoint executes simulations — these
// get latency histograms, Info-level logs, and run-ring entries.
func simEndpoint(endpoint string) bool {
	return endpoint == "/v1/run" || endpoint == "/v1/sweep"
}

// instrument wraps a handler with the request-scoped observability
// envelope: a fresh run ID (context value, X-Run-ID header, pprof
// labels), request counting, latency observation, the structured log
// line, and — for simulation endpoints — the run-ring entry.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obs.NewRunID()
		ri := &reqInfo{}
		ctx := obs.WithRunID(r.Context(), id)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		w.Header().Set("X-Run-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// Capture tees the exchange: the request body is read up front
		// (and handed back to the handler as a fresh reader), the
		// response body through the recorder. The bound mirrors
		// decodeJSON's MaxBytesReader, so the handler sees the same
		// bytes it would have read itself.
		capture := s.cfg.Capture != nil && simEndpoint(endpoint) && r.Method == http.MethodPost
		var reqBody []byte
		if capture {
			reqBody, _ = io.ReadAll(io.LimitReader(r.Body, 1<<20))
			r.Body = io.NopCloser(bytes.NewReader(reqBody))
			rec.body = &bytes.Buffer{}
		}
		pprof.Do(ctx, pprof.Labels("run_id", id, "endpoint", endpoint), func(ctx context.Context) {
			h(rec, r.WithContext(ctx))
		})
		elapsed := time.Since(start)
		if capture {
			s.cfg.Capture(CapturedExchange{
				At:      start.Sub(s.metrics.start),
				Method:  r.Method,
				Path:    r.URL.RequestURI(),
				Status:  rec.status,
				ReqBody: reqBody, RespBody: rec.body.Bytes(),
				Latency: elapsed,
			})
		}

		s.metrics.requests.With(endpoint, strconv.Itoa(rec.status)).Inc()
		switch endpoint {
		case "/v1/run":
			s.metrics.runLatency.ObserveDuration(elapsed)
		case "/v1/sweep":
			s.metrics.sweepLatency.ObserveDuration(elapsed)
		}
		if rec.status == http.StatusTooManyRequests {
			s.metrics.rejected.With(endpoint).Inc()
		}

		if ri.outcome == "" {
			if rec.status < 400 {
				ri.outcome = "ok"
			} else {
				ri.outcome = "error"
			}
		}
		if simEndpoint(endpoint) {
			s.ring.Add(obs.RunSummary{
				ID: id, Endpoint: endpoint,
				Spec: ri.spec, SpecHash: ri.specHash,
				Start: start, Latency: elapsed,
				Status: rec.status, Outcome: ri.outcome,
				CacheHit: ri.cacheHit, Makespan: ri.makespan,
				Events: ri.events, Runs: ri.runs,
				Procs: ri.procs, Trace: ri.trace,
			})
		}

		level := slog.LevelDebug
		if simEndpoint(endpoint) {
			level = slog.LevelInfo
		}
		msg := "request"
		if s.cfg.SlowRequest > 0 && simEndpoint(endpoint) && elapsed > s.cfg.SlowRequest {
			level, msg = slog.LevelWarn, "slow request"
		}
		if s.logger.Enabled(r.Context(), level) {
			attrs := []slog.Attr{
				slog.String("run_id", id),
				slog.String("endpoint", endpoint),
				slog.Int("status", rec.status),
				slog.Duration("latency", elapsed),
				slog.String("outcome", ri.outcome),
			}
			if ri.spec != "" {
				attrs = append(attrs,
					slog.String("spec", ri.spec),
					slog.String("spec_hash", ri.specHash),
					slog.Bool("cache_hit", ri.cacheHit))
			}
			if ri.runs > 1 {
				attrs = append(attrs, slog.Int("runs", ri.runs))
			}
			s.logger.LogAttrs(r.Context(), level, msg, attrs...)
		}
	}
}

// sweepStats adapts the Server to the two read methods newMetrics needs,
// forwarding to s.sweeper once New has set it (scrapes cannot race the
// constructor — the mux doesn't exist until after both are assembled).
type sweepStats struct{ s *Server }

func (v sweepStats) Stats() sweep.CacheStats {
	if v.s.sweeper == nil {
		return sweep.CacheStats{}
	}
	return v.s.sweeper.Stats()
}

func (v sweepStats) PoolDepth() (int, int) {
	if v.s.sweeper == nil {
		return 0, 0
	}
	return v.s.sweeper.PoolDepth()
}

// ListenAndServe binds cfg.Addr and serves until ctx is canceled, then
// drains gracefully (see Serve).
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is canceled, then shuts down gracefully:
// listeners close immediately, in-flight requests get DrainTimeout to
// finish, and a clean drain returns nil. The listener is always closed
// by the time Serve returns.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("server: drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
