// Package server is flagsim's network surface: a production-shaped HTTP
// JSON service that runs scenario simulations and parameter sweeps on
// demand. The serving core is a bounded admission queue (MaxInFlight
// executing, MaxQueue waiting, fast-fail 429 beyond that) in front of
// the sweep subsystem's worker pool, whose content-addressed memo cache
// lives for the process lifetime — identical requests are served warm
// across clients.
//
// Endpoints:
//
//	POST /v1/run     one scenario run (JSON spec in, full result out)
//	POST /v1/sweep   a cartesian grid batch (compact per-run rows out)
//	GET  /v1/flags   the built-in flag catalog
//	GET  /healthz    liveness + serving gauges
//	GET  /metrics    Prometheus text exposition
//
// Cancellation contract: every run executes under the request's context
// (optionally bounded by RequestTimeout), threaded through the sweep
// pool into the engine's event loop — a client that disconnects mid-run
// stops the simulation at the next engine checkpoint instead of burning
// CPU to the end, and canceled computes are never memoized.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"flagsim/internal/sweep"
)

// Config parameterizes the service. The zero value serves with sensible
// bounds (see the field comments).
type Config struct {
	// Addr is the listen address; default ":8080".
	Addr string
	// MaxInFlight bounds concurrently executing simulation requests;
	// <= 0 means runtime.GOMAXPROCS(0).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// the service fast-fails with 429. < 0 means 0 (no queue);
	// 0 means the default of 64.
	MaxQueue int
	// RequestTimeout caps each simulation request's execution time;
	// <= 0 disables the per-request deadline.
	RequestTimeout time.Duration
	// SweepWorkers sizes the underlying sweep pool; <= 0 means
	// runtime.GOMAXPROCS(0).
	SweepWorkers int
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the serve context is canceled; default 30s.
	DrainTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses;
	// default 1s.
	RetryAfter time.Duration
	// MaxSweepSpecs caps the expanded grid size of one /v1/sweep request;
	// default 4096.
	MaxSweepSpecs int
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue == 0:
		c.MaxQueue = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSweepSpecs <= 0 {
		c.MaxSweepSpecs = 4096
	}
	return c
}

// Server is the HTTP simulation service. Create one with New; it is
// safe for concurrent use.
type Server struct {
	cfg     Config
	sweeper *sweep.Sweeper
	gate    *gate
	metrics *metrics
	mux     *http.ServeMux

	// testHookAdmitted, when set, runs after a simulation request clears
	// admission and before it executes — the deterministic seam the
	// backpressure and drain tests block on.
	testHookAdmitted func()
}

// New assembles a Server. The sweep pool and its memo cache live as
// long as the Server, so repeated requests are served warm.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		sweeper: sweep.New(sweep.Options{Workers: cfg.SweepWorkers}),
		gate:    newGate(cfg.MaxInFlight, cfg.MaxQueue),
		metrics: newMetrics(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.instrument("/v1/run", s.handleRun))
	s.mux.HandleFunc("/v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/flags", s.instrument("/v1/flags", s.handleFlags))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler (for embedding or tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Sweeper exposes the process-lifetime sweep pool, e.g. for pre-warming
// the cache before a benchmark.
func (s *Server) Sweeper() *sweep.Sweeper { return s.sweeper }

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency
// observation under the endpoint's label.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.requests.get(requestLabels(endpoint, rec.status)).inc()
		switch endpoint {
		case "/v1/run":
			s.metrics.runLatency.observe(elapsed)
		case "/v1/sweep":
			s.metrics.sweepLatency.observe(elapsed)
		}
		if rec.status == http.StatusTooManyRequests {
			s.metrics.rejected.get(endpointLabels(endpoint)).inc()
		}
	}
}

// ListenAndServe binds cfg.Addr and serves until ctx is canceled, then
// drains gracefully (see Serve).
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is canceled, then shuts down gracefully:
// listeners close immediately, in-flight requests get DrainTimeout to
// finish, and a clean drain returns nil. The listener is always closed
// by the time Serve returns.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("server: drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
