package server

// Tests for the observability layer: the unified /metrics registry
// (engine + sweep + runtime families), run IDs, structured request
// logging, and the run ring's trace endpoints.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"flagsim/internal/obs"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, raw := getBody(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("/metrics content type %q", ct)
	}
	return string(raw)
}

// metricValue extracts a sample value from exposition text by exact
// series name (including any label block).
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " ([0-9.e+-]+)$")
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %q not found in exposition", series)
	}
	var v float64
	fmt.Sscanf(m[1], "%g", &v)
	return v
}

// TestMetricsCoverWholeStack runs one compute and requires the scrape to
// reflect all three layers: serving counters, engine families fed by the
// pool probe, and Go runtime gauges.
func TestMetricsCoverWholeStack(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","scenario":4,"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	out := scrape(t, ts.URL)

	if v := metricValue(t, out, `flagsimd_requests_total{endpoint="/v1/run",code="200"}`); v != 1 {
		t.Errorf("requests_total = %g, want 1", v)
	}
	if v := metricValue(t, out, "flagsim_engine_cells_painted_total"); v <= 0 {
		t.Errorf("engine painted %g cells after a compute", v)
	}
	if v := metricValue(t, out, "flagsim_engine_runs_total"); v != 1 {
		t.Errorf("engine runs = %g, want 1", v)
	}
	if v := metricValue(t, out, "flagsim_engine_event_queue_high_water"); v <= 0 {
		t.Errorf("event queue high water = %g", v)
	}
	if v := metricValue(t, out, "flagsimd_sweep_cache_misses_total"); v != 1 {
		t.Errorf("cache misses = %g, want 1", v)
	}
	if v := metricValue(t, out, "flagsim_engine_grants_total"); v <= 0 {
		t.Errorf("grants = %g", v)
	}
	if v := metricValue(t, out, "go_goroutines"); v <= 0 {
		t.Errorf("go_goroutines = %g", v)
	}
	if !strings.Contains(out, "# TYPE flagsim_engine_blocks_total counter") {
		t.Error("blocks family missing its TYPE header")
	}
	if !strings.Contains(out, "# TYPE go_gc_pause_seconds_total counter") {
		t.Error("runtime GC family missing")
	}

	// A warm re-run feeds the cache-hit counter but not the engine.
	postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","scenario":4,"seed":1}`)
	out = scrape(t, ts.URL)
	if v := metricValue(t, out, "flagsimd_sweep_cache_hits_total"); v != 1 {
		t.Errorf("cache hits after warm rerun = %g, want 1", v)
	}
	if v := metricValue(t, out, "flagsim_engine_runs_total"); v != 1 {
		t.Errorf("cache hit reached the engine probe: runs = %g", v)
	}
}

// TestRunIDPlumbing checks the X-Run-ID header, the response envelope's
// run_id, and that the two agree.
func TestRunIDPlumbing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","seed":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	header := resp.Header.Get("X-Run-ID")
	if len(header) != 16 {
		t.Fatalf("X-Run-ID = %q, want 16 hex chars", header)
	}
	var envelope struct {
		RunID string `json:"run_id"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.RunID != header {
		t.Errorf("run_id %q != X-Run-ID %q", envelope.RunID, header)
	}
}

// TestRunsRingAndTraceEndpoint exercises the after-the-fact trace path:
// a computed run's spans are retrievable by run ID as a Chrome trace; a
// cache hit's are not, with a 404 explaining why.
func TestRunsRingAndTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","scenario":4,"seed":9}`)
	cold := resp.Header.Get("X-Run-ID")
	resp, _ = postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","scenario":4,"seed":9}`)
	warm := resp.Header.Get("X-Run-ID")

	resp, raw := getBody(t, ts.URL+"/v1/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/runs status %d", resp.StatusCode)
	}
	var list RunsResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 || len(list.Runs) != 2 {
		t.Fatalf("runs listed = %d, want 2", list.Count)
	}
	// Newest first: the warm hit leads.
	if list.Runs[0].ID != warm || !list.Runs[0].CacheHit {
		t.Errorf("newest entry = %+v, want warm hit %s", list.Runs[0], warm)
	}
	if list.Runs[1].ID != cold || list.Runs[1].CacheHit {
		t.Errorf("oldest entry = %+v, want cold run %s", list.Runs[1], cold)
	}
	if list.Runs[1].Spec == "" || list.Runs[1].SpecHash == "" || list.Runs[1].Makespan == 0 {
		t.Errorf("summary missing detail: %+v", list.Runs[1])
	}

	// The computed run has a trace.
	resp, raw = getBody(t, ts.URL+"/v1/runs/"+cold+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, raw)
	}
	assertChromeTrace(t, raw)

	// The cache hit does not, and the 404 says so.
	resp, raw = getBody(t, ts.URL+"/v1/runs/"+warm+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cache-hit trace status %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "trace=chrome") {
		t.Errorf("404 body should point at ?trace=chrome: %s", raw)
	}

	// Unknown IDs 404 too.
	resp, _ = getBody(t, ts.URL+"/v1/runs/ffffffffffffffff/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d", resp.StatusCode)
	}
}

// TestTraceChromeQueryStreamsTrace checks POST /v1/run?trace=chrome:
// the response is a Chrome trace, it is produced even when the spec is
// already memoized (cache bypass), and the run lands in the ring with
// its trace.
func TestTraceChromeQueryStreamsTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Warm the cache first so the bypass is what's under test.
	postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","scenario":4,"seed":5}`)
	resp, raw := postJSON(t, ts.URL+"/v1/run?trace=chrome", `{"flag":"mauritius","scenario":4,"seed":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	assertChromeTrace(t, raw)
	id := resp.Header.Get("X-Run-ID")
	if sum, ok := s.ring.Get(id); !ok || !sum.HasTrace() {
		t.Errorf("traced run %s not in ring with trace", id)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/run?trace=perfetto", `{"flag":"mauritius"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown trace format status %d", resp.StatusCode)
	}
}

// assertChromeTrace validates the Perfetto-loadable shape: a JSON array
// holding thread_name metadata ("M") and complete ("X") events with
// microsecond timestamps.
func assertChromeTrace(t *testing.T, raw []byte) {
	t.Helper()
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		PID  int    `json:"pid"`
		TID  int    `json:"tid"`
		Dur  int64  `json:"dur"`
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var metas, completes, paints int
	for _, e := range events {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				metas++
			}
		case "X":
			completes++
			if strings.HasPrefix(e.Name, "paint ") {
				paints++
			}
		}
	}
	if metas == 0 || completes == 0 || paints == 0 {
		t.Fatalf("trace shape: %d thread_name metas, %d X events, %d paints", metas, completes, paints)
	}
}

// TestRequestLogging captures the structured log and checks the
// request line's fields, plus the slow-request promotion to Warn.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Config{Logger: logger, SlowRequest: time.Nanosecond})
	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	line := struct {
		Level    string `json:"level"`
		Msg      string `json:"msg"`
		RunID    string `json:"run_id"`
		Endpoint string `json:"endpoint"`
		Status   int    `json:"status"`
		Outcome  string `json:"outcome"`
		Spec     string `json:"spec"`
		SpecHash string `json:"spec_hash"`
		CacheHit *bool  `json:"cache_hit"`
	}{}
	dec := json.NewDecoder(&buf)
	if err := dec.Decode(&line); err != nil {
		t.Fatalf("no log line: %v", err)
	}
	if line.Msg != "slow request" || line.Level != "WARN" {
		t.Errorf("1ns threshold should promote to Warn: %+v", line)
	}
	if line.RunID != resp.Header.Get("X-Run-ID") {
		t.Errorf("log run_id %q != header %q", line.RunID, resp.Header.Get("X-Run-ID"))
	}
	if line.Endpoint != "/v1/run" || line.Status != 200 || line.Outcome != "ok" {
		t.Errorf("log line = %+v", line)
	}
	if line.Spec == "" || len(line.SpecHash) != 16 || line.CacheHit == nil {
		t.Errorf("log line missing spec detail: %+v", line)
	}
}

// TestLoggingDefaultsQuiet: with no Logger configured nothing is
// emitted anywhere (the nop logger), and serving still works.
func TestLoggingDefaultsQuiet(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"flag":"france"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestRunRingBounded: the ring never exceeds its configured size.
func TestRunRingBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{RunRingSize: 2})
	for seed := 0; seed < 5; seed++ {
		postJSON(t, ts.URL+"/v1/run", fmt.Sprintf(`{"flag":"mauritius","seed":%d}`, seed))
	}
	if n := s.ring.Len(); n != 2 {
		t.Errorf("ring holds %d, want 2", n)
	}
}

// TestRunIDRingRoundTrip is the round-trip regression: the X-Run-ID a
// run response carries must be retrievable from the ring via /v1/runs,
// with the summary's spec, cache-hit flag, and status agreeing with the
// response that minted the ID.
func TestRunIDRingRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","scenario":3,"seed":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Run-ID")
	var envelope RunResponse
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatal(err)
	}

	resp, raw = getBody(t, ts.URL+"/v1/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/runs status %d", resp.StatusCode)
	}
	var list RunsResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	for _, s := range list.Runs {
		if s.ID != id {
			continue
		}
		if s.Spec != envelope.Spec {
			t.Errorf("ring spec %q != response spec %q", s.Spec, envelope.Spec)
		}
		if s.CacheHit != envelope.CacheHit {
			t.Errorf("ring cache_hit %v != response %v", s.CacheHit, envelope.CacheHit)
		}
		if s.Status != http.StatusOK {
			t.Errorf("ring status %d, want 200", s.Status)
		}
		if s.Outcome != "ok" {
			t.Errorf("ring outcome %q, want ok", s.Outcome)
		}
		return
	}
	t.Fatalf("run %s not found in the ring (%d entries)", id, list.Count)
}

// TestRunsRingConcurrentReadersAndWriters hammers the run ring through
// the full HTTP stack: parallel POST /v1/run writers (distinct seeds, so
// every request is a fresh compute recorded in the ring) racing parallel
// GET /v1/runs and /v1/runs/{id}/trace readers. Run under -race this is
// the regression net for ring synchronization; in any mode it checks
// every reader sees a consistent, bounded snapshot.
func TestRunsRingConcurrentReadersAndWriters(t *testing.T) {
	const ringSize = 8
	_, ts := newTestServer(t, Config{RunRingSize: ringSize, MaxInFlight: 16, MaxQueue: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				body := fmt.Sprintf(`{"flag":"mauritius","seed":%d}`, w*100+i)
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				id := resp.Header.Get("X-Run-ID")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// Immediately read the trace this run just recorded —
				// racing other writers that may be evicting it.
				tr, err := http.Get(ts.URL + "/v1/runs/" + id + "/trace")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, tr.Body)
				tr.Body.Close()
				if tr.StatusCode != http.StatusOK && tr.StatusCode != http.StatusNotFound {
					t.Errorf("trace status %d for %s", tr.StatusCode, id)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				resp, err := http.Get(ts.URL + "/v1/runs")
				if err != nil {
					t.Error(err)
					return
				}
				var list RunsResponse
				err = json.NewDecoder(resp.Body).Decode(&list)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if list.Count > ringSize || len(list.Runs) != list.Count {
					t.Errorf("inconsistent snapshot: count=%d len=%d cap=%d",
						list.Count, len(list.Runs), ringSize)
				}
				for _, s := range list.Runs {
					if s.ID == "" {
						t.Error("ring listed an empty summary")
					}
				}
			}
		}()
	}
	wg.Wait()
}
