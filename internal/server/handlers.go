package server

// The endpoint handlers. The request/response DTOs live in
// internal/wire (shared with the dispatcher fabric); the aliases below
// keep them addressable as server.RunRequest etc. for existing callers.
// Requests map onto sweep.Spec — the same declarative, content-addressed
// unit of work the library batches, so the service inherits the
// determinism contract for free: a response's result section is a pure
// function of the spec, byte-identical to what a library call computes.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"flagsim/internal/flaggen"
	"flagsim/internal/flagspec"
	"flagsim/internal/obs"
	"flagsim/internal/sim"
	"flagsim/internal/sweep"
	"flagsim/internal/wire"
)

// statusClientClosedRequest is nginx's conventional status for "client
// went away before the response"; net/http has no constant for it.
const statusClientClosedRequest = 499

// Wire DTO aliases: the canonical definitions are in internal/wire, so
// the HTTP service and the dispatcher fabric speak the same language.
type (
	// RunRequest describes one simulation run over the wire.
	RunRequest = wire.RunRequest
	// FaultRequest describes a fault plan over the wire.
	FaultRequest = wire.FaultRequest
	// FaultStallRequest is one stall window over the wire.
	FaultStallRequest = wire.FaultStallRequest
	// SimResult is the deterministic section of a run response.
	SimResult = wire.SimResult
	// ProcResult is one processor's statistics in a response.
	ProcResult = wire.ProcResult
	// ImplementResult is one implement's statistics in a response.
	ImplementResult = wire.ImplementResult
	// FaultResult tallies what an injected fault plan actually did.
	FaultResult = wire.FaultResult
	// SweepRequest is a cartesian grid over a base run request.
	SweepRequest = wire.SweepRequest
	// SweepRunRow is one run's compact row in a sweep response.
	SweepRunRow = wire.SweepRunRow
)

// NewSimResult flattens a library Result into the wire form.
func NewSimResult(res *sim.Result) SimResult { return wire.NewSimResult(res) }

// RunResponse is the /v1/run reply. Result is deterministic; the
// serving fields around it (run_id, cache_hit, elapsed_ns) are not.
type RunResponse struct {
	RunID     string    `json:"run_id"`
	Spec      string    `json:"spec"`
	CacheHit  bool      `json:"cache_hit"`
	ElapsedNS int64     `json:"elapsed_ns"`
	Result    SimResult `json:"result"`
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	Count   int           `json:"count"`
	Workers int           `json:"workers"`
	WallNS  int64         `json:"wall_ns"`
	Hits    int           `json:"cache_hits"`
	Misses  int           `json:"cache_misses"`
	Failed  int           `json:"failed"`
	Runs    []SweepRunRow `json:"runs"`
}

// FlagInfo is one catalog entry in the /v1/flags reply.
type FlagInfo struct {
	Name     string   `json:"name"`
	DefaultW int      `json:"default_w"`
	DefaultH int      `json:"default_h"`
	Layers   int      `json:"layers"`
	Colors   []string `json:"colors"`
}

// Health is the /healthz reply.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int     `json:"in_flight"`
	Queued        int     `json:"queued"`
	CacheHits     int     `json:"cache_hits"`
	CacheMisses   int     `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeJSON strictly decodes the request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// requestCtx derives the execution context: the client's own (canceled
// on disconnect) bounded by the configured per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// admit runs the gate and writes the backpressure responses on refusal.
// It reports whether the request may proceed; the caller must release
// on true.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	err := s.gate.acquire(ctx)
	switch {
	case err == nil:
		return true
	case errors.Is(err, errSaturated):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, err)
	default:
		// The client gave up (or timed out) while queued.
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server: abandoned while queued: %w", err))
	}
	return false
}

// writeRunError maps a failed run onto a status code: canceled runs are
// the client's doing (499) or the deadline's (504); anything else is a
// spec the engine rejected (422). ctx carries the request's reqInfo, so
// the outcome label lands in the log line and the run ring.
func (s *Server) writeRunError(w http.ResponseWriter, ctx context.Context, err error) {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	if ri == nil {
		ri = &reqInfo{}
	}
	if errors.Is(err, sim.ErrCanceled) {
		s.metrics.canceled.Inc()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			ri.outcome = "deadline"
			writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("server: run exceeded the request deadline: %w", err))
			return
		}
		ri.outcome = "canceled"
		writeError(w, statusClientClosedRequest, err)
		return
	}
	ri.outcome = "unprocessable"
	writeError(w, http.StatusUnprocessableEntity, err)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ri := info(r)
	ri.spec = spec.Label()
	key := spec.Key()
	ri.specHash = hex.EncodeToString(key[:8])
	traceMode := r.URL.Query().Get("trace")
	if traceMode != "" && traceMode != "chrome" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown trace format %q (chrome)", traceMode))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.gate.release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	if traceMode == "chrome" {
		// Traced runs bypass the memo cache: a cache hit has no engine
		// run to observe, and the whole point here is a fresh timeline.
		// The engine metrics probe still observes the run.
		var collector sim.SpanCollector
		res, err := spec.RunOnce(ctx, s.metrics.engine, &collector)
		if err != nil {
			s.writeRunError(w, ctx, err)
			return
		}
		ri.runs = 1
		ri.makespan, ri.events = res.Makespan, res.Events
		ri.procs, ri.trace = procNames(res), collector.Spans
		w.Header().Set("Content-Type", "application/json")
		if err := writeEngineTrace(w, ri.procs, ri.trace); err != nil {
			s.logger.LogAttrs(ctx, slog.LevelError, "trace stream failed",
				slog.String("run_id", obs.RunID(ctx)), slog.String("error", err.Error()))
		}
		return
	}
	// A per-request span collector rides along with the pool's probes:
	// if this request is the one that computes (cache miss), its spans
	// land in the run ring for /v1/runs/{id}/trace; on a cache hit the
	// engine never runs and the collector stays empty.
	var collector sim.SpanCollector
	batch := s.sweeper.RunProbed(ctx, []sweep.Spec{spec}, &collector)
	run := batch.Runs[0]
	if run.Err != nil {
		s.writeRunError(w, ctx, run.Err)
		return
	}
	ri.cacheHit = run.CacheHit
	ri.runs = 1
	ri.makespan, ri.events = run.Result.Makespan, run.Result.Events
	if len(collector.Spans) > 0 {
		ri.procs, ri.trace = procNames(run.Result), collector.Spans
	}
	writeJSON(w, http.StatusOK, RunResponse{
		RunID:     obs.RunID(r.Context()),
		Spec:      spec.Label(),
		CacheHit:  run.CacheHit,
		ElapsedNS: int64(run.Elapsed),
		Result:    NewSimResult(run.Result),
	})
}

// procNames flattens the result's processor names for trace export.
func procNames(res *sim.Result) []string {
	out := make([]string, len(res.Procs))
	for i, p := range res.Procs {
		out[i] = p.Name
	}
	return out
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := req.Specs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(specs) > s.cfg.MaxSweepSpecs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("grid expands to %d specs, limit %d", len(specs), s.cfg.MaxSweepSpecs))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.gate.release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	batch := s.sweeper.Run(ctx, specs)
	ri := info(r)
	ri.runs = len(batch.Runs)
	ri.cacheHit = batch.Cache.Misses == 0 && batch.Cache.Hits > 0
	resp := SweepResponse{
		Count:   len(batch.Runs),
		Workers: batch.Workers,
		WallNS:  int64(batch.Wall),
		Hits:    batch.Cache.Hits,
		Misses:  batch.Cache.Misses,
	}
	canceled := false
	for _, run := range batch.Runs {
		row := SweepRunRow{Spec: run.Spec.Label(), CacheHit: run.CacheHit}
		if run.Err != nil {
			resp.Failed++
			row.Err = run.Err.Error()
			canceled = canceled || errors.Is(run.Err, sim.ErrCanceled)
		} else {
			sum := sha256.Sum256([]byte(run.Result.Grid.String()))
			row.MakespanNS = int64(run.Result.Makespan)
			row.Events = run.Result.Events
			row.GridSHA256 = hex.EncodeToString(sum[:])
		}
		resp.Runs = append(resp.Runs, row)
	}
	if canceled {
		s.writeRunError(w, ctx, fmt.Errorf("sweep: %d of %d runs: %w",
			resp.Failed, resp.Count, sim.ErrCanceled))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFlags(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if q := r.URL.Query().Get("gen"); q != "" {
		s.handleFlagsGen(w, q, r.URL.Query().Get("count"))
		return
	}
	var out []FlagInfo
	for _, f := range flagspec.All() {
		out = append(out, newFlagInfo(f))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleFlagsGen previews procedurally generated flags. ?gen= accepts
// either a canonical name ("gen:v1:42:7") for a single preview, or a
// decimal seed, in which case ?count= (default 8, max 64) consecutive
// variants of that seed's family are listed. Malformed refs are client
// errors — 400, never 500.
func (s *Server) handleFlagsGen(w http.ResponseWriter, q, countStr string) {
	var refs []flaggen.Ref
	if flaggen.IsName(q) {
		ref, err := flaggen.ParseName(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		refs = []flaggen.Ref{ref}
	} else {
		seed, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("gen: want a canonical name (gen:v1:<seed>:<variant>) or a decimal seed: %q", q))
			return
		}
		count := 8
		if countStr != "" {
			count, err = strconv.Atoi(countStr)
			if err != nil || count < 1 || count > 64 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("gen: count must be 1..64, got %q", countStr))
				return
			}
		}
		for v := 0; v < count; v++ {
			refs = append(refs, flaggen.Ref{Seed: seed, Variant: uint64(v)})
		}
	}
	out := make([]FlagInfo, 0, len(refs))
	for _, ref := range refs {
		f, err := flaggen.Resolve(ref.Name())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out = append(out, newFlagInfo(f))
	}
	writeJSON(w, http.StatusOK, out)
}

func newFlagInfo(f *flagspec.Flag) FlagInfo {
	info := FlagInfo{
		Name: f.Name, DefaultW: f.DefaultW, DefaultH: f.DefaultH,
		Layers: len(f.Layers),
	}
	for _, c := range f.Colors() {
		info.Colors = append(info.Colors, c.String())
	}
	return info
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inFlight, queued := s.gate.depth()
	stats := s.sweeper.Stats()
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		InFlight:      inFlight,
		Queued:        queued,
		CacheHits:     stats.Hits,
		CacheMisses:   stats.Misses,
		CacheEntries:  stats.Entries,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.metrics.reg.WriteText(w)
}
