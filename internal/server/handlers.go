package server

// Request/response DTOs and the endpoint handlers. Requests use
// human-readable enums ("steal", "crayon", "pull-color-affinity") and
// map onto sweep.Spec — the same declarative, content-addressed unit of
// work the library batches, so the service inherits the determinism
// contract for free: a response's result section is a pure function of
// the spec, byte-identical to what a library call computes.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"flagsim/internal/core"
	"flagsim/internal/fault"
	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/obs"
	"flagsim/internal/sim"
	"flagsim/internal/sweep"
)

// statusClientClosedRequest is nginx's conventional status for "client
// went away before the response"; net/http has no constant for it.
const statusClientClosedRequest = 499

// RunRequest describes one simulation run over the wire.
type RunRequest struct {
	// Exec is the executor class: "static" (default), "steal", "dynamic".
	Exec string `json:"exec,omitempty"`
	// Flag names a built-in flag; default "mauritius".
	Flag string `json:"flag,omitempty"`
	// W, H override the flag's handout raster size when positive.
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
	// Scenario is the Fig. 1 scenario number 1-4; default 1. Pipelined
	// selects the rotated variant of scenario 4.
	Scenario  int  `json:"scenario,omitempty"`
	Pipelined bool `json:"pipelined,omitempty"`
	// Workers overrides the scenario's worker count (team size for
	// "dynamic").
	Workers int `json:"workers,omitempty"`
	// Kind is the implement class: "dauber", "thick-marker" (default),
	// "thin-marker", "crayon".
	Kind string `json:"kind,omitempty"`
	// PerColor is the number of implements per color; default 1.
	PerColor int `json:"per_color,omitempty"`
	// Seed derives the team's random streams.
	Seed uint64 `json:"seed,omitempty"`
	// Setup is the serial organization phase as a Go duration ("20s").
	Setup string `json:"setup,omitempty"`
	// Hold is the retention policy: "greedy-hold" (default),
	// "eager-release".
	Hold string `json:"hold,omitempty"`
	// Policy is the dynamic pull rule: "pull-ordered" (default),
	// "pull-color-affinity".
	Policy string `json:"policy,omitempty"`
	// Skills optionally fixes per-worker skill multipliers.
	Skills []float64 `json:"skills,omitempty"`
	// Jitter is the lognormal service-noise sigma.
	Jitter float64 `json:"jitter,omitempty"`
	// Faults optionally injects a deterministic fault plan into the run.
	Faults *FaultRequest `json:"faults,omitempty"`
}

// FaultStallRequest is one stall window over the wire.
type FaultStallRequest struct {
	// Proc is the 0-based processor index; -1 stalls every processor.
	Proc int `json:"proc"`
	// At and For are Go durations ("30s", "1m30s").
	At  string `json:"at"`
	For string `json:"for"`
}

// FaultRequest describes a fault plan over the wire: either a named
// preset ("none", "light", "heavy") or an explicit plan, never both.
// The unsound lost-update injector is deliberately not reachable from
// the wire — it exists only so the test suite can prove the oracle
// fires.
type FaultRequest struct {
	// Preset names a built-in plan; mutually exclusive with the explicit
	// fields below.
	Preset string `json:"preset,omitempty"`
	// Seed derives every per-cell fault decision. Zero is a valid seed;
	// the plan's identity (and the spec's cache key) includes it.
	Seed uint64 `json:"seed,omitempty"`
	// Stalls are processor freeze windows.
	Stalls []FaultStallRequest `json:"stalls,omitempty"`
	// DegradeProb marks cells whose paint takes DegradeFactor times as
	// long (factor must be >= 1).
	DegradeProb   float64 `json:"degrade_prob,omitempty"`
	DegradeFactor float64 `json:"degrade_factor,omitempty"`
	// BreakProb forces implement breakage on marked cells.
	BreakProb float64 `json:"break_prob,omitempty"`
	// RepaintProb makes the first paint attempt of marked cells fail,
	// forcing a repaint.
	RepaintProb float64 `json:"repaint_prob,omitempty"`
	// HandoffDelayProb delays implement handoffs by HandoffDelay.
	HandoffDelayProb float64 `json:"handoff_delay_prob,omitempty"`
	HandoffDelay     string  `json:"handoff_delay,omitempty"`
}

// plan resolves the wire form into a validated fault plan; nil means no
// injection.
func (f *FaultRequest) plan() (*fault.Plan, error) {
	if f == nil {
		return nil, nil
	}
	explicit := len(f.Stalls) > 0 || f.DegradeProb != 0 || f.DegradeFactor != 0 ||
		f.BreakProb != 0 || f.RepaintProb != 0 ||
		f.HandoffDelayProb != 0 || f.HandoffDelay != ""
	if f.Preset != "" {
		if explicit {
			return nil, fmt.Errorf("faults: preset %q excludes explicit plan fields", f.Preset)
		}
		return fault.Preset(f.Preset, f.Seed)
	}
	p := &fault.Plan{
		Seed:             f.Seed,
		DegradeProb:      f.DegradeProb,
		DegradeFactor:    f.DegradeFactor,
		BreakProb:        f.BreakProb,
		RepaintProb:      f.RepaintProb,
		HandoffDelayProb: f.HandoffDelayProb,
	}
	for i, st := range f.Stalls {
		at, err := time.ParseDuration(st.At)
		if err != nil {
			return nil, fmt.Errorf("faults: stall %d: bad at: %v", i, err)
		}
		dur, err := time.ParseDuration(st.For)
		if err != nil {
			return nil, fmt.Errorf("faults: stall %d: bad for: %v", i, err)
		}
		p.Stalls = append(p.Stalls, fault.Stall{Proc: st.Proc, At: at, For: dur})
	}
	if f.HandoffDelay != "" {
		d, err := time.ParseDuration(f.HandoffDelay)
		if err != nil {
			return nil, fmt.Errorf("faults: bad handoff_delay: %v", err)
		}
		p.HandoffDelay = d
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Zero() {
		return nil, nil
	}
	return p, nil
}

// spec resolves the request into the library's declarative run spec.
func (r RunRequest) spec() (sweep.Spec, error) {
	sp := sweep.Spec{
		W: r.W, H: r.H, Workers: r.Workers, PerColor: r.PerColor,
		Seed: r.Seed, Skills: r.Skills, Jitter: r.Jitter,
	}
	switch r.Exec {
	case "", "static":
		sp.Exec = sweep.ExecStatic
	case "steal":
		sp.Exec = sweep.ExecSteal
	case "dynamic":
		sp.Exec = sweep.ExecDynamic
	default:
		return sp, fmt.Errorf("unknown exec %q (static, steal, dynamic)", r.Exec)
	}
	sp.Flag = r.Flag
	if sp.Flag == "" {
		sp.Flag = "mauritius"
	}
	if _, err := flagspec.Lookup(sp.Flag); err != nil {
		return sp, err
	}
	switch {
	case r.Scenario == 0 || r.Scenario == 1:
		sp.Scenario = core.S1
	case r.Scenario >= 2 && r.Scenario <= 3:
		sp.Scenario = core.ScenarioID(r.Scenario - 1)
	case r.Scenario == 4 && r.Pipelined:
		sp.Scenario = core.S4Pipelined
	case r.Scenario == 4:
		sp.Scenario = core.S4
	default:
		return sp, fmt.Errorf("scenario %d out of range 1-4", r.Scenario)
	}
	if r.Pipelined && r.Scenario != 4 && r.Scenario != 0 {
		return sp, fmt.Errorf("pipelined applies to scenario 4, not %d", r.Scenario)
	}
	kindName := r.Kind
	if kindName == "" {
		kindName = "thick-marker"
	}
	kind, err := implement.ParseKind(kindName)
	if err != nil {
		return sp, err
	}
	sp.Kind = kind
	if r.Setup != "" {
		d, err := time.ParseDuration(r.Setup)
		if err != nil {
			return sp, fmt.Errorf("bad setup duration: %v", err)
		}
		if d < 0 {
			return sp, fmt.Errorf("negative setup %v", d)
		}
		sp.Setup = d
	}
	switch r.Hold {
	case "", "greedy-hold":
		sp.Hold = sim.GreedyHold
	case "eager-release":
		sp.Hold = sim.EagerRelease
	default:
		return sp, fmt.Errorf("unknown hold %q (greedy-hold, eager-release)", r.Hold)
	}
	switch r.Policy {
	case "", "pull-ordered":
		sp.Policy = sim.PullOrdered
	case "pull-color-affinity":
		sp.Policy = sim.PullColorAffinity
	default:
		return sp, fmt.Errorf("unknown policy %q (pull-ordered, pull-color-affinity)", r.Policy)
	}
	plan, err := r.Faults.plan()
	if err != nil {
		return sp, err
	}
	sp.Faults = plan
	if sp.Exec == sweep.ExecDynamic && sp.Workers == 0 {
		// The scenario's worker count is what a run request means even
		// under the bag executor; a solo dynamic run must be explicit.
		scen, err := core.ScenarioByID(sp.Scenario)
		if err != nil {
			return sp, err
		}
		sp.Workers = scen.Workers
	}
	return sp, nil
}

// ProcResult is one processor's statistics in a response.
type ProcResult struct {
	Name            string `json:"name"`
	Cells           int    `json:"cells"`
	FinishNS        int64  `json:"finish_ns"`
	FirstPaintNS    int64  `json:"first_paint_ns"`
	PaintNS         int64  `json:"paint_ns"`
	WaitImplementNS int64  `json:"wait_implement_ns"`
	WaitLayerNS     int64  `json:"wait_layer_ns"`
	OverheadNS      int64  `json:"overhead_ns"`
}

// ImplementResult is one implement's statistics in a response.
type ImplementResult struct {
	ID        int    `json:"id"`
	Color     string `json:"color"`
	Kind      string `json:"kind"`
	BusyNS    int64  `json:"busy_ns"`
	Handoffs  int    `json:"handoffs"`
	MaxQueue  int    `json:"max_queue"`
	Breakages int    `json:"breakages"`
}

// SimResult is the deterministic section of a run response: every field
// is a pure function of the spec, so two requests for the same spec —
// or a request and a direct library call — produce byte-identical JSON.
type SimResult struct {
	Strategy        string            `json:"strategy"`
	MakespanNS      int64             `json:"makespan_ns"`
	SetupNS         int64             `json:"setup_ns"`
	Events          uint64            `json:"events"`
	MaxEventQueue   int               `json:"max_event_queue"`
	Breaks          int               `json:"breaks"`
	Steals          int               `json:"steals"`
	Migrated        int               `json:"migrated"`
	WaitImplementNS int64             `json:"wait_implement_ns"`
	WaitLayerNS     int64             `json:"wait_layer_ns"`
	PipelineFillNS  int64             `json:"pipeline_fill_ns"`
	GridSHA256      string            `json:"grid_sha256"`
	Procs           []ProcResult      `json:"procs"`
	Implements      []ImplementResult `json:"implements"`
	// Faults is present only when an installed fault plan actually
	// injected something, so fault-free responses stay byte-identical to
	// what they were before the fault subsystem existed.
	Faults *FaultResult `json:"faults,omitempty"`
}

// FaultResult tallies what an injected fault plan actually did.
type FaultResult struct {
	Stalls         int   `json:"stalls"`
	StallNS        int64 `json:"stall_ns"`
	DegradedCells  int   `json:"degraded_cells"`
	ForcedBreaks   int   `json:"forced_breaks"`
	HandoffDelays  int   `json:"handoff_delays"`
	HandoffDelayNS int64 `json:"handoff_delay_ns"`
	Repaints       int   `json:"repaints"`
}

// NewSimResult flattens a library Result into the wire form.
func NewSimResult(res *sim.Result) SimResult {
	sum := sha256.Sum256([]byte(res.Grid.String()))
	out := SimResult{
		Strategy:        res.Plan.Strategy,
		MakespanNS:      int64(res.Makespan),
		SetupNS:         int64(res.SetupTime),
		Events:          res.Events,
		MaxEventQueue:   res.MaxEventQueue,
		Breaks:          res.Breaks,
		Steals:          res.Steals,
		Migrated:        res.Migrated,
		WaitImplementNS: int64(res.TotalWaitImplement()),
		WaitLayerNS:     int64(res.TotalWaitLayer()),
		PipelineFillNS:  int64(res.PipelineFill()),
		GridSHA256:      hex.EncodeToString(sum[:]),
	}
	if f := res.Faults; f.Any() {
		out.Faults = &FaultResult{
			Stalls:         f.Stalls,
			StallNS:        int64(f.StallTime),
			DegradedCells:  f.DegradedCells,
			ForcedBreaks:   f.ForcedBreaks,
			HandoffDelays:  f.HandoffDelays,
			HandoffDelayNS: int64(f.HandoffDelayTime),
			Repaints:       f.Repaints,
		}
	}
	for _, p := range res.Procs {
		out.Procs = append(out.Procs, ProcResult{
			Name: p.Name, Cells: p.Cells,
			FinishNS: int64(p.Finish), FirstPaintNS: int64(p.FirstPaint),
			PaintNS: int64(p.PaintTime), WaitImplementNS: int64(p.WaitImplement),
			WaitLayerNS: int64(p.WaitLayer), OverheadNS: int64(p.Overhead),
		})
	}
	for _, im := range res.Implements {
		out.Implements = append(out.Implements, ImplementResult{
			ID: im.ID, Color: im.Color.String(), Kind: im.Kind.String(),
			BusyNS: int64(im.BusyTime), Handoffs: im.Handoffs,
			MaxQueue: im.MaxQueue, Breakages: im.Breakages,
		})
	}
	return out
}

// RunResponse is the /v1/run reply. Result is deterministic; the
// serving fields around it (run_id, cache_hit, elapsed_ns) are not.
type RunResponse struct {
	RunID     string    `json:"run_id"`
	Spec      string    `json:"spec"`
	CacheHit  bool      `json:"cache_hit"`
	ElapsedNS int64     `json:"elapsed_ns"`
	Result    SimResult `json:"result"`
}

// SweepRequest is a cartesian grid over a base run request. Empty axes
// inherit the base value.
type SweepRequest struct {
	Base      RunRequest `json:"base"`
	Execs     []string   `json:"execs,omitempty"`
	Flags     []string   `json:"flags,omitempty"`
	Scenarios []int      `json:"scenarios,omitempty"`
	Workers   []int      `json:"workers,omitempty"`
	Kinds     []string   `json:"kinds,omitempty"`
	PerColor  []int      `json:"per_color,omitempty"`
	Policies  []string   `json:"policies,omitempty"`
	Seeds     []uint64   `json:"seeds,omitempty"`
	Setups    []string   `json:"setups,omitempty"`
}

// specs expands the request into the grid's spec list by enumerating the
// wire-level axes through RunRequest.spec, so every cell gets the same
// validation and defaulting as a single run.
func (r SweepRequest) specs() ([]sweep.Spec, error) {
	orBase := func(axis []string, base string) []string {
		if len(axis) > 0 {
			return axis
		}
		return []string{base}
	}
	orBaseInt := func(axis []int, base int) []int {
		if len(axis) > 0 {
			return axis
		}
		return []int{base}
	}
	seeds := r.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{r.Base.Seed}
	}
	var out []sweep.Spec
	for _, exec := range orBase(r.Execs, r.Base.Exec) {
		for _, fl := range orBase(r.Flags, r.Base.Flag) {
			for _, scen := range orBaseInt(r.Scenarios, r.Base.Scenario) {
				for _, workers := range orBaseInt(r.Workers, r.Base.Workers) {
					for _, kind := range orBase(r.Kinds, r.Base.Kind) {
						for _, pc := range orBaseInt(r.PerColor, r.Base.PerColor) {
							for _, pol := range orBase(r.Policies, r.Base.Policy) {
								for _, seed := range seeds {
									for _, setup := range orBase(r.Setups, r.Base.Setup) {
										req := r.Base
										req.Exec, req.Flag, req.Scenario, req.Workers = exec, fl, scen, workers
										req.Kind, req.PerColor, req.Policy = kind, pc, pol
										req.Seed, req.Setup = seed, setup
										sp, err := req.spec()
										if err != nil {
											return nil, err
										}
										out = append(out, sp)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// SweepRunRow is one run's compact row in a sweep response.
type SweepRunRow struct {
	Spec       string `json:"spec"`
	CacheHit   bool   `json:"cache_hit"`
	MakespanNS int64  `json:"makespan_ns,omitempty"`
	Events     uint64 `json:"events,omitempty"`
	GridSHA256 string `json:"grid_sha256,omitempty"`
	Err        string `json:"err,omitempty"`
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	Count   int           `json:"count"`
	Workers int           `json:"workers"`
	WallNS  int64         `json:"wall_ns"`
	Hits    int           `json:"cache_hits"`
	Misses  int           `json:"cache_misses"`
	Failed  int           `json:"failed"`
	Runs    []SweepRunRow `json:"runs"`
}

// FlagInfo is one catalog entry in the /v1/flags reply.
type FlagInfo struct {
	Name     string   `json:"name"`
	DefaultW int      `json:"default_w"`
	DefaultH int      `json:"default_h"`
	Layers   int      `json:"layers"`
	Colors   []string `json:"colors"`
}

// Health is the /healthz reply.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int     `json:"in_flight"`
	Queued        int     `json:"queued"`
	CacheHits     int     `json:"cache_hits"`
	CacheMisses   int     `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeJSON strictly decodes the request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// requestCtx derives the execution context: the client's own (canceled
// on disconnect) bounded by the configured per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// admit runs the gate and writes the backpressure responses on refusal.
// It reports whether the request may proceed; the caller must release
// on true.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	err := s.gate.acquire(ctx)
	switch {
	case err == nil:
		return true
	case errors.Is(err, errSaturated):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, err)
	default:
		// The client gave up (or timed out) while queued.
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server: abandoned while queued: %w", err))
	}
	return false
}

// writeRunError maps a failed run onto a status code: canceled runs are
// the client's doing (499) or the deadline's (504); anything else is a
// spec the engine rejected (422). ctx carries the request's reqInfo, so
// the outcome label lands in the log line and the run ring.
func (s *Server) writeRunError(w http.ResponseWriter, ctx context.Context, err error) {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	if ri == nil {
		ri = &reqInfo{}
	}
	if errors.Is(err, sim.ErrCanceled) {
		s.metrics.canceled.Inc()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			ri.outcome = "deadline"
			writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("server: run exceeded the request deadline: %w", err))
			return
		}
		ri.outcome = "canceled"
		writeError(w, statusClientClosedRequest, err)
		return
	}
	ri.outcome = "unprocessable"
	writeError(w, http.StatusUnprocessableEntity, err)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := req.spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ri := info(r)
	ri.spec = spec.Label()
	key := spec.Key()
	ri.specHash = hex.EncodeToString(key[:8])
	traceMode := r.URL.Query().Get("trace")
	if traceMode != "" && traceMode != "chrome" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown trace format %q (chrome)", traceMode))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.gate.release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	if traceMode == "chrome" {
		// Traced runs bypass the memo cache: a cache hit has no engine
		// run to observe, and the whole point here is a fresh timeline.
		// The engine metrics probe still observes the run.
		var collector sim.SpanCollector
		res, err := spec.RunOnce(ctx, s.metrics.engine, &collector)
		if err != nil {
			s.writeRunError(w, ctx, err)
			return
		}
		ri.runs = 1
		ri.makespan, ri.events = res.Makespan, res.Events
		ri.procs, ri.trace = procNames(res), collector.Spans
		w.Header().Set("Content-Type", "application/json")
		if err := sim.WriteChromeTraceSpans(w, ri.procs, ri.trace); err != nil {
			s.logger.LogAttrs(ctx, slog.LevelError, "trace stream failed",
				slog.String("run_id", obs.RunID(ctx)), slog.String("error", err.Error()))
		}
		return
	}
	// A per-request span collector rides along with the pool's probes:
	// if this request is the one that computes (cache miss), its spans
	// land in the run ring for /v1/runs/{id}/trace; on a cache hit the
	// engine never runs and the collector stays empty.
	var collector sim.SpanCollector
	batch := s.sweeper.RunProbed(ctx, []sweep.Spec{spec}, &collector)
	run := batch.Runs[0]
	if run.Err != nil {
		s.writeRunError(w, ctx, run.Err)
		return
	}
	ri.cacheHit = run.CacheHit
	ri.runs = 1
	ri.makespan, ri.events = run.Result.Makespan, run.Result.Events
	if len(collector.Spans) > 0 {
		ri.procs, ri.trace = procNames(run.Result), collector.Spans
	}
	writeJSON(w, http.StatusOK, RunResponse{
		RunID:     obs.RunID(r.Context()),
		Spec:      spec.Label(),
		CacheHit:  run.CacheHit,
		ElapsedNS: int64(run.Elapsed),
		Result:    NewSimResult(run.Result),
	})
}

// procNames flattens the result's processor names for trace export.
func procNames(res *sim.Result) []string {
	out := make([]string, len(res.Procs))
	for i, p := range res.Procs {
		out[i] = p.Name
	}
	return out
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := req.specs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(specs) > s.cfg.MaxSweepSpecs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("grid expands to %d specs, limit %d", len(specs), s.cfg.MaxSweepSpecs))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.gate.release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	batch := s.sweeper.Run(ctx, specs)
	ri := info(r)
	ri.runs = len(batch.Runs)
	ri.cacheHit = batch.Cache.Misses == 0 && batch.Cache.Hits > 0
	resp := SweepResponse{
		Count:   len(batch.Runs),
		Workers: batch.Workers,
		WallNS:  int64(batch.Wall),
		Hits:    batch.Cache.Hits,
		Misses:  batch.Cache.Misses,
	}
	canceled := false
	for _, run := range batch.Runs {
		row := SweepRunRow{Spec: run.Spec.Label(), CacheHit: run.CacheHit}
		if run.Err != nil {
			resp.Failed++
			row.Err = run.Err.Error()
			canceled = canceled || errors.Is(run.Err, sim.ErrCanceled)
		} else {
			sum := sha256.Sum256([]byte(run.Result.Grid.String()))
			row.MakespanNS = int64(run.Result.Makespan)
			row.Events = run.Result.Events
			row.GridSHA256 = hex.EncodeToString(sum[:])
		}
		resp.Runs = append(resp.Runs, row)
	}
	if canceled {
		s.writeRunError(w, ctx, fmt.Errorf("sweep: %d of %d runs: %w",
			resp.Failed, resp.Count, sim.ErrCanceled))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFlags(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var out []FlagInfo
	for _, f := range flagspec.All() {
		info := FlagInfo{
			Name: f.Name, DefaultW: f.DefaultW, DefaultH: f.DefaultH,
			Layers: len(f.Layers),
		}
		for _, c := range f.Colors() {
			info.Colors = append(info.Colors, c.String())
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inFlight, queued := s.gate.depth()
	stats := s.sweeper.Stats()
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		InFlight:      inFlight,
		Queued:        queued,
		CacheHits:     stats.Hits,
		CacheMisses:   stats.Misses,
		CacheEntries:  stats.Entries,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.metrics.reg.WriteText(w)
}
