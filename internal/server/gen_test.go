package server

// Generated flags over HTTP: the ?gen= catalog preview, run/sweep
// requests naming generated flags, and the malformed-ref contract (400,
// never 500).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"flagsim/internal/flaggen"
)

func TestFlagsGenPreview(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := getBody(t, ts.URL+"/v1/flags?gen=42&count=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var flags []FlagInfo
	if err := json.Unmarshal(raw, &flags); err != nil {
		t.Fatal(err)
	}
	if len(flags) != 3 {
		t.Fatalf("%d previews, want 3", len(flags))
	}
	for v, f := range flags {
		if want := flaggen.Name(42, uint64(v)); f.Name != want {
			t.Errorf("preview %d named %q, want %q", v, f.Name, want)
		}
		if f.DefaultW <= 0 || f.DefaultH <= 0 || f.Layers < 2 || len(f.Colors) == 0 {
			t.Errorf("incomplete preview entry: %+v", f)
		}
	}
}

func TestFlagsGenPreviewByName(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := flaggen.Name(7, 11)
	resp, raw := getBody(t, ts.URL+"/v1/flags?gen="+url.QueryEscape(name))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var flags []FlagInfo
	if err := json.Unmarshal(raw, &flags); err != nil {
		t.Fatal(err)
	}
	if len(flags) != 1 || flags[0].Name != name {
		t.Fatalf("preview = %+v, want one entry named %q", flags, name)
	}
}

func TestFlagsGenPreviewRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{
		"gen=gen:v1:nope:0", "gen=gen:v1:042:7", "gen=gen:v2:1:1",
		"gen=not-a-seed", "gen=5&count=0", "gen=5&count=65", "gen=5&count=x",
	} {
		resp, raw := getBody(t, ts.URL+"/v1/flags?"+strings.ReplaceAll(q, ":", "%3A"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400 (%s)", q, resp.StatusCode, raw)
		}
	}
}

func TestRunGeneratedFlag(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := flaggen.Name(42, 1)
	body := fmt.Sprintf(`{"flag":%q,"scenario":4,"seed":3}`, name)
	resp, raw := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got RunResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Result.GridSHA256 == "" || got.Result.MakespanNS <= 0 {
		t.Fatalf("empty result for generated flag: %+v", got.Result)
	}
	// Identical request → memo hit, byte-identical deterministic section.
	resp, raw2 := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, raw2)
	}
	var warm RunResponse
	if err := json.Unmarshal(raw2, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("identical generated-flag request missed the cache")
	}
	if a, b := mustJSON(t, got.Result), mustJSON(t, warm.Result); a != b {
		t.Errorf("warm result not byte-identical:\n%s\nvs\n%s", a, b)
	}
}

func TestRunMalformedGenFlagIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, flag := range []string{"gen:v1:zzz:0", "gen:v1:042:7", "gen:v1:1:2:3", "gen:v7:0:0"} {
		resp, raw := postJSON(t, ts.URL+"/v1/run", fmt.Sprintf(`{"flag":%q}`, flag))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("flag %q: status %d, want 400 (%s)", flag, resp.StatusCode, raw)
		}
	}
	// Same contract on the sweep surface, where the bad ref hides in an
	// axis rather than the base request.
	body := `{"base":{"flag":"mauritius"},"flags":["mauritius","gen:v1:bad:0"]}`
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep with malformed gen axis: status %d, want 400 (%s)", resp.StatusCode, raw)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
