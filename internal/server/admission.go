package server

// Admission control: a bounded gate in front of the simulation pool.
// MaxInFlight requests execute concurrently; up to MaxQueue more wait
// for a slot; anything beyond that fast-fails so saturation surfaces as
// an immediate 429 + Retry-After instead of an unbounded queue whose
// latency grows without limit (clients retry against fresh capacity
// rather than piling onto a doomed backlog).

import (
	"context"
	"errors"
	"sync/atomic"
)

// errSaturated reports that both the execution slots and the wait queue
// are full.
var errSaturated = errors.New("server: saturated: in-flight and queue limits reached")

// gate is the admission limiter. The channel holds the execution slots;
// waiting counts the requests parked for one.
type gate struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

func newGate(maxInFlight, maxQueue int) *gate {
	return &gate{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims an execution slot, queueing up to the gate's bound. It
// returns errSaturated when the queue is full, or the context's error
// if the caller gives up while waiting.
func (g *gate) acquire(ctx context.Context) error {
	// Fast path: a slot is free right now.
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return errSaturated
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (g *gate) release() { <-g.slots }

// depth reports the current in-flight and queued request counts.
func (g *gate) depth() (inFlight, queued int) {
	return len(g.slots), int(g.waiting.Load())
}
