package server

// After-the-fact run inspection: every simulation request leaves a
// summary in the bounded run ring (keyed by the run ID the X-Run-ID
// header returned), and computed single runs keep their span timeline,
// so a p99 outlier spotted in the latency histogram can be pulled up as
// a Chrome trace without having asked for tracing up front.

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"flagsim/internal/obs"
	"flagsim/internal/sim"
)

// writeEngineTrace renders one engine run as a Chrome trace through the
// shared obs builder — the same machinery flagdispd uses to stitch
// fleet-wide job traces, so both daemons emit identical event shapes.
func writeEngineTrace(w io.Writer, procs []string, spans []sim.Span) error {
	b := obs.NewTraceBuilder()
	b.ProcessName(1, "flagsimd")
	b.EngineSpans(1, 0, procs, spans)
	return b.Render(w)
}

// RunsResponse is the /v1/runs reply: recent runs, newest first.
type RunsResponse struct {
	Count int              `json:"count"`
	Runs  []obs.RunSummary `json:"runs"`
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	runs := s.ring.List()
	writeJSON(w, http.StatusOK, RunsResponse{Count: len(runs), Runs: runs})
}

func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	id := r.PathValue("id")
	sum, ok := s.ring.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown run id %q (the ring keeps the last %d runs)", id, s.cfg.RunRingSize))
		return
	}
	if !sum.HasTrace() {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("run %s has no trace: cache hits and sweep batches skip span capture; re-run with POST /v1/run?trace=chrome", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := writeEngineTrace(w, sum.Procs, sum.Trace); err != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelError, "trace stream failed",
			slog.String("run_id", id), slog.String("error", err.Error()))
	}
}
