package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flagsim/internal/sweep"
)

// newTestServer wires a Server with test-friendly bounds behind an
// httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, raw
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, raw
}

// TestRunMatchesLibraryByteForByte is the service's determinism
// contract: the response's result section must be byte-identical to
// marshaling the result a direct library call computes for the same
// spec.
func TestRunMatchesLibraryByteForByte(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	reqs := []string{
		`{"exec":"static","flag":"mauritius","scenario":4,"seed":1,"setup":"20s"}`,
		`{"exec":"steal","flag":"mauritius","scenario":3,"kind":"crayon","seed":7,"jitter":0.15}`,
		`{"exec":"dynamic","flag":"france","workers":4,"seed":3,"policy":"pull-color-affinity"}`,
	}
	for _, body := range reqs {
		resp, raw := postJSON(t, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, resp.StatusCode, raw)
		}
		var envelope struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			t.Fatalf("%s: bad envelope: %v", body, err)
		}

		var req RunRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		spec, err := req.Spec()
		if err != nil {
			t.Fatal(err)
		}
		batch := sweep.RunAll([]sweep.Spec{spec}, sweep.Options{Workers: 1})
		if err := batch.Err(); err != nil {
			t.Fatalf("library run failed: %v", err)
		}
		want, err := json.Marshal(NewSimResult(batch.Runs[0].Result))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(envelope.Result, want) {
			t.Errorf("%s: server and library results diverge:\n server  %s\n library %s",
				body, envelope.Result, want)
		}
	}
}

func TestRunWarmCacheAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"flag":"mauritius","scenario":4,"seed":42}`

	type reply struct {
		CacheHit bool `json:"cache_hit"`
	}
	var cold, warm reply
	_, raw := postJSON(t, ts.URL+"/v1/run", body)
	if err := json.Unmarshal(raw, &cold); err != nil {
		t.Fatal(err)
	}
	_, raw = postJSON(t, ts.URL+"/v1/run", body)
	if err := json.Unmarshal(raw, &warm); err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || !warm.CacheHit {
		t.Fatalf("cache hits: cold=%v warm=%v, want false/true", cold.CacheHit, warm.CacheHit)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"exec":"quantum"}`, http.StatusBadRequest},
		{`{"flag":"atlantis"}`, http.StatusBadRequest},
		{`{"scenario":9}`, http.StatusBadRequest},
		{`{"kind":"chalk"}`, http.StatusBadRequest},
		{`{"setup":"yesterday"}`, http.StatusBadRequest},
		{`{"hold":"forever"}`, http.StatusBadRequest},
		{`{"policy":"push"}`, http.StatusBadRequest},
		{`{"scenario":2,"pipelined":true}`, http.StatusBadRequest},
		{`{"bogus_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/run", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.want, raw)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body missing: %s", tc.body, raw)
		}
	}
	resp, _ := getBody(t, ts.URL+"/v1/run")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestBackpressure drives the gate to saturation: with one execution
// slot held and no queue, the next request must fast-fail 429 with a
// Retry-After hint; with a one-deep queue, it must park and then
// succeed once the slot frees.
func TestBackpressure(t *testing.T) {
	admitted := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 3 * time.Second})
	s.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-release
	}

	body := `{"flag":"mauritius","scenario":1,"seed":1}`
	first := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		first <- resp.StatusCode
	}()
	<-admitted // the slot is now held

	resp, raw := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429 (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", code)
	}
}

func TestQueuedRequestServesAfterSlotFrees(t *testing.T) {
	admitted := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	s.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-release
	}

	body := `{"flag":"mauritius","scenario":1,"seed":2}`
	codes := make(chan int, 2)
	post := func() {
		resp, _ := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		codes <- resp.StatusCode
	}
	go post()
	<-admitted
	go post() // parks in the queue
	waitFor(t, func() bool { _, q := s.gate.depth(); return q == 1 })

	release <- struct{}{} // first finishes; queued request takes the slot
	<-admitted
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, code)
		}
	}
}

// TestRequestTimeoutCancelsRun bounds a large run with a deadline far
// shorter than its compute time: the engine must stop early, the
// client must see 504, and the aborted compute must not be memoized.
func TestRequestTimeoutCancelsRun(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 5 * time.Millisecond})
	body := `{"flag":"mauritius","scenario":4,"w":800,"h":400,"seed":9}`

	resp, raw := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "canceled") {
		t.Errorf("error body does not mention cancellation: %s", raw)
	}
	if stats := s.Sweeper().Stats(); stats.Entries != 0 {
		t.Errorf("timed-out compute was memoized: %+v", stats)
	}
	if got := s.metrics.canceled.Value(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
}

// TestClientDisconnectCancelsRun drops the client mid-run and asserts
// the server aborts the simulation instead of computing to completion.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	s.testHookAdmitted = func() { cancel() } // drop the client as the run is admitted

	body := `{"flag":"mauritius","scenario":4,"w":800,"h":400,"seed":11}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("request succeeded (%d) despite client cancel", resp.StatusCode)
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}

	waitFor(t, func() bool { return s.metrics.canceled.Value() == 1 })
	if stats := s.Sweeper().Stats(); stats.Entries != 0 {
		t.Errorf("canceled compute was memoized: %+v", stats)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"base": {"flag": "mauritius", "scenario": 4, "setup": "5s"},
		"execs": ["static", "steal"],
		"seeds": [1, 2, 3]
	}`
	var got SweepResponse
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Count != 6 || len(got.Runs) != 6 {
		t.Fatalf("count = %d, runs = %d, want 6", got.Count, len(got.Runs))
	}
	if got.Misses != 6 || got.Hits != 0 || got.Failed != 0 {
		t.Fatalf("cold sweep cache = %d hits / %d misses / %d failed", got.Hits, got.Misses, got.Failed)
	}
	for _, run := range got.Runs {
		if run.Err != "" || run.MakespanNS <= 0 || len(run.GridSHA256) != 64 {
			t.Fatalf("bad row: %+v", run)
		}
	}

	// The same grid again is served entirely from the memo cache.
	resp, raw = postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Hits != 6 || got.Misses != 0 {
		t.Fatalf("warm sweep cache = %d hits / %d misses, want 6/0", got.Hits, got.Misses)
	}
}

func TestSweepGridCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepSpecs: 4})
	body := `{"base": {"flag": "mauritius"}, "seeds": [1,2,3,4,5]}`
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "limit 4") {
		t.Errorf("error does not name the limit: %s", raw)
	}
}

func TestFlagsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := getBody(t, ts.URL+"/v1/flags")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var flags []FlagInfo
	if err := json.Unmarshal(raw, &flags); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]FlagInfo)
	for _, f := range flags {
		byName[f.Name] = f
	}
	m, ok := byName["mauritius"]
	if !ok {
		t.Fatalf("mauritius missing from catalog: %v", flags)
	}
	if m.DefaultW <= 0 || m.DefaultH <= 0 || m.Layers == 0 || len(m.Colors) == 0 {
		t.Errorf("incomplete catalog entry: %+v", m)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","seed":5}`)
	postJSON(t, ts.URL+"/v1/run", `{"flag":"mauritius","seed":5}`)

	var h Health
	resp, raw := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.InFlight != 0 || h.Queued != 0 {
		t.Errorf("health = %+v", h)
	}
	if h.CacheMisses != 1 || h.CacheHits != 1 || h.CacheEntries != 1 {
		t.Errorf("health cache stats = %+v, want 1 hit / 1 miss / 1 entry", h)
	}

	resp, raw = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		`flagsimd_requests_total{endpoint="/v1/run",code="200"} 2`,
		"flagsimd_sweep_cache_hits_total 1",
		"flagsimd_sweep_cache_misses_total 1",
		"flagsimd_sweep_cache_entries 1",
		"flagsimd_in_flight 0",
		"flagsimd_queue_depth 0",
		"flagsimd_run_seconds_count 2",
		`flagsimd_run_seconds_bucket{le="+Inf"} 2`,
		"flagsimd_uptime_seconds",
		"# TYPE flagsimd_run_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestGracefulDrain cancels the serve context while a request is in
// flight: the in-flight request must complete with 200 and Serve must
// return nil once drained.
func TestGracefulDrain(t *testing.T) {
	admitted := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{DrainTimeout: 5 * time.Second})
	s.testHookAdmitted = func() {
		admitted <- struct{}{}
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := fmt.Sprintf("http://%s/v1/run", ln.Addr())
	code := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(`{"flag":"mauritius","seed":3}`))
		if err != nil {
			code <- -1
			return
		}
		resp.Body.Close()
		code <- resp.StatusCode
	}()
	<-admitted

	cancel() // begin draining with the request still executing
	close(release)
	if got := <-code; got != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", got)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil after clean drain", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
