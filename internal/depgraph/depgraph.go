// Package depgraph implements task dependency graphs: the formalism the
// Knox follow-up activity teaches (§III-D, Fig. 9).
//
// Vertices are tasks and directed edges denote dependencies (the paper's
// definition verbatim). The package provides construction, validation,
// topological sorting, critical-path and width analysis, list scheduling
// onto p processors, and the structural comparisons used to grade student
// submissions in §V-C.
package depgraph

import (
	"fmt"
	"sort"
	"time"
)

// Node is one task vertex.
type Node struct {
	// ID is the unique node identifier ("black-stripe", "red-triangle").
	ID string
	// Weight is the task's execution cost for scheduling and critical
	// path analysis. Zero-weight nodes are allowed (milestones).
	Weight time.Duration
	// Label is optional free text for rendering.
	Label string
}

// Graph is a directed graph intended to be acyclic. Edges point from a
// prerequisite to its dependent: an edge u→v means "v depends on u".
type Graph struct {
	nodes  []Node
	index  map[string]int
	succ   map[int][]int // u -> dependents
	pred   map[int][]int // v -> prerequisites
	nedges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		index: make(map[string]int),
		succ:  make(map[int][]int),
		pred:  make(map[int][]int),
	}
}

// AddNode adds a task vertex. Duplicate IDs are rejected.
func (g *Graph) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("depgraph: node with empty ID")
	}
	if _, dup := g.index[n.ID]; dup {
		return fmt.Errorf("depgraph: duplicate node %q", n.ID)
	}
	g.index[n.ID] = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return nil
}

// MustAddNode is AddNode that panics; for static graph literals.
func (g *Graph) MustAddNode(n Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

// AddEdge records that dependent depends on prereq. Both nodes must exist;
// self-edges and duplicate edges are rejected.
func (g *Graph) AddEdge(prereq, dependent string) error {
	u, ok := g.index[prereq]
	if !ok {
		return fmt.Errorf("depgraph: edge from unknown node %q", prereq)
	}
	v, ok := g.index[dependent]
	if !ok {
		return fmt.Errorf("depgraph: edge to unknown node %q", dependent)
	}
	if u == v {
		return fmt.Errorf("depgraph: self-dependency on %q", prereq)
	}
	for _, w := range g.succ[u] {
		if w == v {
			return fmt.Errorf("depgraph: duplicate edge %q -> %q", prereq, dependent)
		}
	}
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.nedges++
	return nil
}

// MustAddEdge is AddEdge that panics; for static graph literals.
func (g *Graph) MustAddEdge(prereq, dependent string) {
	if err := g.AddEdge(prereq, dependent); err != nil {
		panic(err)
	}
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.nedges }

// Nodes returns the nodes in insertion order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Node returns the node with the given ID.
func (g *Graph) Node(id string) (Node, bool) {
	i, ok := g.index[id]
	if !ok {
		return Node{}, false
	}
	return g.nodes[i], true
}

// Predecessors returns the IDs of the prerequisites of id, sorted.
func (g *Graph) Predecessors(id string) []string {
	return g.neighborIDs(id, g.pred)
}

// Successors returns the IDs of the dependents of id, sorted.
func (g *Graph) Successors(id string) []string {
	return g.neighborIDs(id, g.succ)
}

func (g *Graph) neighborIDs(id string, adj map[int][]int) []string {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(adj[i]))
	for _, j := range adj[i] {
		out = append(out, g.nodes[j].ID)
	}
	sort.Strings(out)
	return out
}

// HasEdge reports whether dependent directly depends on prereq.
func (g *Graph) HasEdge(prereq, dependent string) bool {
	u, ok := g.index[prereq]
	if !ok {
		return false
	}
	v, ok := g.index[dependent]
	if !ok {
		return false
	}
	for _, w := range g.succ[u] {
		if w == v {
			return true
		}
	}
	return false
}

// TopoSort returns node IDs in a dependency-respecting order, or an error
// naming a node on a cycle. Kahn's algorithm with deterministic (insertion
// order) tie-breaking.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make([]int, len(g.nodes))
	for v, ps := range g.pred {
		indeg[v] = len(ps)
	}
	var ready []int
	for i := range g.nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		out = append(out, g.nodes[u].ID)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(out) != len(g.nodes) {
		for i, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("depgraph: cycle involving %q", g.nodes[i].ID)
			}
		}
	}
	return out, nil
}

// Validate reports whether the graph is a DAG.
func (g *Graph) Validate() error {
	_, err := g.TopoSort()
	return err
}

// Levels assigns each node its longest-path depth from the sources
// (sources are level 0). A valid parallel schedule can run all nodes of a
// level concurrently once prior levels finish.
func (g *Graph) Levels() (map[string]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make(map[string]int, len(order))
	for _, id := range order {
		l := 0
		for _, p := range g.Predecessors(id) {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
	}
	return level, nil
}

// Depth returns the number of levels (longest chain length in nodes).
// An empty graph has depth 0.
func (g *Graph) Depth() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	maxL := -1
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	return maxL + 1, nil
}

// Width returns the size of the largest level — an easy lower bound on
// exploitable parallelism (the true width is the max antichain; levels
// are what the classroom activity uses).
func (g *Graph) Width() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	counts := make(map[int]int)
	maxW := 0
	for _, l := range levels {
		counts[l]++
		if counts[l] > maxW {
			maxW = counts[l]
		}
	}
	return maxW, nil
}

// CriticalPath returns the heaviest dependency chain and its total weight.
// With unit weights this is the depth; with task costs it is the minimum
// possible makespan on unlimited processors.
func (g *Graph) CriticalPath() ([]string, time.Duration, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	dist := make(map[string]time.Duration, len(order))
	prev := make(map[string]string, len(order))
	var bestID string
	var best time.Duration = -1
	for _, id := range order {
		n, _ := g.Node(id)
		d := n.Weight
		for _, p := range g.Predecessors(id) {
			if dist[p]+n.Weight > d {
				d = dist[p] + n.Weight
				prev[id] = p
			}
		}
		dist[id] = d
		if d > best {
			best = d
			bestID = id
		}
	}
	if bestID == "" {
		return nil, 0, nil
	}
	var path []string
	for id := bestID; id != ""; id = prev[id] {
		path = append(path, id)
		if _, ok := prev[id]; !ok {
			break
		}
	}
	// Reverse into source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best, nil
}

// Reachable returns the set of nodes reachable from id (excluding id).
func (g *Graph) Reachable(id string) map[string]bool {
	start, ok := g.index[id]
	if !ok {
		return nil
	}
	seen := make(map[int]bool)
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	out := make(map[string]bool, len(seen))
	for v := range seen {
		out[g.nodes[v].ID] = true
	}
	return out
}

// TransitiveClosure returns, for every node, the full set of nodes that
// must precede it (its ancestors). Two graphs with equal closures encode
// the same ordering constraints even if drawn with different redundant
// edges — the equivalence used when grading student submissions.
func (g *Graph) TransitiveClosure() map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(g.nodes))
	order, err := g.TopoSort()
	if err != nil {
		return nil
	}
	for _, id := range order {
		anc := make(map[string]bool)
		for _, p := range g.Predecessors(id) {
			anc[p] = true
			for a := range out[p] {
				anc[a] = true
			}
		}
		out[id] = anc
	}
	return out
}

// SameConstraints reports whether g and o have identical node ID sets and
// identical transitive closures.
func (g *Graph) SameConstraints(o *Graph) bool {
	if len(g.nodes) != len(o.nodes) {
		return false
	}
	for id := range g.index {
		if _, ok := o.index[id]; !ok {
			return false
		}
	}
	gc, oc := g.TransitiveClosure(), o.TransitiveClosure()
	if gc == nil || oc == nil {
		return false
	}
	for id, anc := range gc {
		other := oc[id]
		if len(anc) != len(other) {
			return false
		}
		for a := range anc {
			if !other[a] {
				return false
			}
		}
	}
	return true
}

// IsLinearChain reports whether the graph is a single total order: every
// node has at most one predecessor and one successor, and the chain spans
// all nodes. This is the most common student error in §V-C ("a linear
// chain of tasks ... thought about the graph in terms of sequential
// code").
func (g *Graph) IsLinearChain() bool {
	if len(g.nodes) == 0 {
		return false
	}
	sources := 0
	for i := range g.nodes {
		if len(g.pred[i]) > 1 || len(g.succ[i]) > 1 {
			return false
		}
		if len(g.pred[i]) == 0 {
			sources++
		}
	}
	if sources != 1 {
		return false
	}
	if g.Validate() != nil {
		return false
	}
	depth, _ := g.Depth()
	return depth == len(g.nodes)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for _, n := range g.nodes {
		out.MustAddNode(n)
	}
	for u, vs := range g.succ {
		for _, v := range vs {
			out.MustAddEdge(g.nodes[u].ID, g.nodes[v].ID)
		}
	}
	return out
}
