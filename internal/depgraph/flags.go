package depgraph

import (
	"time"

	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
)

// FromFlag builds the layer dependency graph of a flag at raster size w×h.
// Nodes are layers weighted by their cell counts (cells × 1s base time);
// edges come from explicit DependsOn declarations plus implied overpaint
// order (a layer that overlaps an earlier one must follow it).
func FromFlag(f *flagspec.Flag, w, h int) (*Graph, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	g := New()
	layerCells := grid.LayerCells(f, w, h)
	for i, l := range f.Layers {
		if err := g.AddNode(Node{
			ID:     l.Name,
			Weight: time.Duration(len(layerCells[i])) * time.Second,
			Label:  l.Color.String(),
		}); err != nil {
			return nil, err
		}
	}
	overlaps := f.Overlaps(w, h)
	added := make(map[[2]int]bool)
	for i, l := range f.Layers {
		for _, dep := range l.DependsOn {
			di := indexOf(f, dep)
			if !added[[2]int{di, i}] {
				if err := g.AddEdge(dep, l.Name); err != nil {
					return nil, err
				}
				added[[2]int{di, i}] = true
			}
		}
		for _, j := range overlaps[i] {
			if !added[[2]int{j, i}] {
				if err := g.AddEdge(f.Layers[j].Name, l.Name); err != nil {
					return nil, err
				}
				added[[2]int{j, i}] = true
			}
		}
	}
	return g, nil
}

func indexOf(f *flagspec.Flag, name string) int {
	for i := range f.Layers {
		if f.Layers[i].Name == name {
			return i
		}
	}
	return -1
}

// JordanReference returns the paper's intended solution for the flag of
// Jordan (Fig. 9): three independent stripes, then the red triangle
// (depending on all three), then the white star (depending on the
// triangle). If omitWhiteStripe is true the white stripe node is dropped —
// the grading rule that accepts "the paper is already white".
func JordanReference(omitWhiteStripe bool) *Graph {
	g := New()
	g.MustAddNode(Node{ID: "black-stripe", Weight: 48 * time.Second})
	if !omitWhiteStripe {
		g.MustAddNode(Node{ID: "white-stripe", Weight: 48 * time.Second})
	}
	g.MustAddNode(Node{ID: "green-stripe", Weight: 48 * time.Second})
	g.MustAddNode(Node{ID: "red-triangle", Weight: 30 * time.Second})
	g.MustAddNode(Node{ID: "white-star", Weight: 4 * time.Second})
	g.MustAddEdge("black-stripe", "red-triangle")
	if !omitWhiteStripe {
		g.MustAddEdge("white-stripe", "red-triangle")
	}
	g.MustAddEdge("green-stripe", "red-triangle")
	g.MustAddEdge("red-triangle", "white-star")
	return g
}

// JordanSplitTriangleReference returns the "significantly more
// complicated" correct answer for students who split the triangle into two
// right triangles (§V-C): the top half is independent of the green stripe
// and the bottom half independent of the black stripe.
func JordanSplitTriangleReference(omitWhiteStripe bool) *Graph {
	g := New()
	g.MustAddNode(Node{ID: "black-stripe", Weight: 48 * time.Second})
	if !omitWhiteStripe {
		g.MustAddNode(Node{ID: "white-stripe", Weight: 48 * time.Second})
	}
	g.MustAddNode(Node{ID: "green-stripe", Weight: 48 * time.Second})
	g.MustAddNode(Node{ID: "red-triangle-top", Weight: 15 * time.Second})
	g.MustAddNode(Node{ID: "red-triangle-bottom", Weight: 15 * time.Second})
	g.MustAddNode(Node{ID: "white-star", Weight: 4 * time.Second})
	g.MustAddEdge("black-stripe", "red-triangle-top")
	if !omitWhiteStripe {
		g.MustAddEdge("white-stripe", "red-triangle-top")
		g.MustAddEdge("white-stripe", "red-triangle-bottom")
	}
	g.MustAddEdge("green-stripe", "red-triangle-bottom")
	g.MustAddEdge("red-triangle-top", "white-star")
	g.MustAddEdge("red-triangle-bottom", "white-star")
	return g
}

// GreatBritainReference returns the layer graph shown to students as the
// worked example (Fig. 3 discussion): background, then diagonals, then the
// rectilinear lines.
func GreatBritainReference() *Graph {
	g := New()
	g.MustAddNode(Node{ID: "blue-field", Weight: 288 * time.Second})
	g.MustAddNode(Node{ID: "white-saltire", Weight: 60 * time.Second})
	g.MustAddNode(Node{ID: "red-saltire", Weight: 28 * time.Second})
	g.MustAddNode(Node{ID: "white-cross", Weight: 64 * time.Second})
	g.MustAddNode(Node{ID: "red-cross", Weight: 40 * time.Second})
	g.MustAddEdge("blue-field", "white-saltire")
	g.MustAddEdge("white-saltire", "red-saltire")
	g.MustAddEdge("white-saltire", "white-cross")
	g.MustAddEdge("white-cross", "red-cross")
	return g
}
