package depgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonGraph is the wire form used by cmd/depcheck: a node list and an edge
// list, weights in seconds.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID      string  `json:"id"`
	Label   string  `json:"label,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// MarshalJSON encodes the graph in the node/edge wire form.
func (g *Graph) MarshalJSON() ([]byte, error) {
	var jg jsonGraph
	for _, n := range g.nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{ID: n.ID, Label: n.Label, Seconds: n.Weight.Seconds()})
	}
	for u, vs := range g.succ {
		for _, v := range vs {
			jg.Edges = append(jg.Edges, jsonEdge{From: g.nodes[u].ID, To: g.nodes[v].ID})
		}
	}
	return json.Marshal(jg)
}

// Decode reads a graph in the node/edge wire form. Decoding validates
// structure (unique IDs, resolvable edges) but not acyclicity; call
// Validate for that, since grading legitimately handles cyclic
// submissions.
func Decode(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("depgraph: decode: %w", err)
	}
	g := New()
	for _, n := range jg.Nodes {
		if err := g.AddNode(Node{
			ID:     n.ID,
			Label:  n.Label,
			Weight: time.Duration(n.Seconds * float64(time.Second)),
		}); err != nil {
			return nil, err
		}
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
	}
	return g, nil
}
