package depgraph

import (
	"fmt"
	"sort"
	"time"
)

// ScheduledTask is one node's placement in a schedule.
type ScheduledTask struct {
	ID    string
	Proc  int
	Start time.Duration
	End   time.Duration
}

// Schedule is the result of list-scheduling a graph onto p processors.
type Schedule struct {
	Procs    int
	Makespan time.Duration
	Tasks    []ScheduledTask
}

// ListSchedule runs classic list scheduling: whenever a processor is free
// and a node is ready (all predecessors finished), assign the ready node
// with the longest remaining critical path ("HLF" / critical-path
// heuristic, deterministic ID tie-break). This is how the classroom
// schedules layered flags and how the activity's animations (Suo 2025)
// visualize processor counts.
func ListSchedule(g *Graph, procs int) (*Schedule, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("depgraph: schedule on %d processors", procs)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	// Remaining critical path weight (bottom level) per node.
	bottom := make(map[string]time.Duration, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n, _ := g.Node(id)
		best := time.Duration(0)
		for _, s := range g.Successors(id) {
			if bottom[s] > best {
				best = bottom[s]
			}
		}
		bottom[id] = best + n.Weight
	}

	unfinishedPreds := make(map[string]int, len(order))
	for _, id := range order {
		unfinishedPreds[id] = len(g.Predecessors(id))
	}
	var ready []string
	for _, id := range order {
		if unfinishedPreds[id] == 0 {
			ready = append(ready, id)
		}
	}
	sortReady := func() {
		sort.Slice(ready, func(a, b int) bool {
			if bottom[ready[a]] != bottom[ready[b]] {
				return bottom[ready[a]] > bottom[ready[b]]
			}
			return ready[a] < ready[b]
		})
	}
	sortReady()

	procFree := make([]time.Duration, procs)
	finish := make(map[string]time.Duration, len(order))
	sched := &Schedule{Procs: procs}
	scheduled := 0
	for scheduled < len(order) {
		if len(ready) == 0 {
			return nil, fmt.Errorf("depgraph: scheduler stalled with %d tasks left", len(order)-scheduled)
		}
		// Pick the earliest-free processor (deterministic index
		// tie-break) and give it the highest-priority ready node whose
		// predecessors have all finished by that time; if none is
		// runnable yet, advance to the earliest enabling finish time.
		pi := 0
		for i := 1; i < procs; i++ {
			if procFree[i] < procFree[pi] {
				pi = i
			}
		}
		t := procFree[pi]
		// Earliest start of each ready node is the max predecessor
		// finish.
		bestIdx := -1
		var bestStart time.Duration
		for i, id := range ready {
			es := t
			for _, p := range g.Predecessors(id) {
				if finish[p] > es {
					es = finish[p]
				}
			}
			if bestIdx == -1 || es < bestStart ||
				(es == bestStart && bottom[id] > bottom[ready[bestIdx]]) {
				bestIdx, bestStart = i, es
			}
		}
		id := ready[bestIdx]
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		n, _ := g.Node(id)
		end := bestStart + n.Weight
		sched.Tasks = append(sched.Tasks, ScheduledTask{ID: id, Proc: pi, Start: bestStart, End: end})
		procFree[pi] = end
		finish[id] = end
		if end > sched.Makespan {
			sched.Makespan = end
		}
		scheduled++
		for _, s := range g.Successors(id) {
			unfinishedPreds[s]--
			if unfinishedPreds[s] == 0 {
				ready = append(ready, s)
			}
		}
		sortReady()
	}
	return sched, nil
}

// Validate checks that the schedule respects the graph: every node placed
// exactly once, no processor overlap, and every task starts at or after
// all of its predecessors finish.
func (s *Schedule) Validate(g *Graph) error {
	placed := make(map[string]ScheduledTask, len(s.Tasks))
	byProc := make(map[int][]ScheduledTask)
	for _, t := range s.Tasks {
		if _, dup := placed[t.ID]; dup {
			return fmt.Errorf("depgraph: task %q scheduled twice", t.ID)
		}
		if _, ok := g.Node(t.ID); !ok {
			return fmt.Errorf("depgraph: schedule contains unknown task %q", t.ID)
		}
		if t.Proc < 0 || t.Proc >= s.Procs {
			return fmt.Errorf("depgraph: task %q on invalid processor %d", t.ID, t.Proc)
		}
		if t.End < t.Start {
			return fmt.Errorf("depgraph: task %q ends before it starts", t.ID)
		}
		placed[t.ID] = t
		byProc[t.Proc] = append(byProc[t.Proc], t)
	}
	if len(placed) != g.NumNodes() {
		return fmt.Errorf("depgraph: schedule places %d of %d tasks", len(placed), g.NumNodes())
	}
	for proc, tasks := range byProc {
		sort.Slice(tasks, func(a, b int) bool { return tasks[a].Start < tasks[b].Start })
		for i := 1; i < len(tasks); i++ {
			if tasks[i].Start < tasks[i-1].End {
				return fmt.Errorf("depgraph: processor %d overlap between %q and %q", proc, tasks[i-1].ID, tasks[i].ID)
			}
		}
	}
	for _, t := range s.Tasks {
		for _, p := range g.Predecessors(t.ID) {
			if placed[p].End > t.Start {
				return fmt.Errorf("depgraph: %q starts at %v before predecessor %q finishes at %v",
					t.ID, t.Start, p, placed[p].End)
			}
		}
	}
	return nil
}

// SpeedupCurve schedules g on 1..maxProcs processors and returns the
// makespans. The curve flattens at the critical path — dependencies
// limiting parallelism, the Knox lesson in numbers.
func SpeedupCurve(g *Graph, maxProcs int) ([]time.Duration, error) {
	if maxProcs <= 0 {
		return nil, fmt.Errorf("depgraph: speedup curve to %d processors", maxProcs)
	}
	out := make([]time.Duration, maxProcs)
	for p := 1; p <= maxProcs; p++ {
		s, err := ListSchedule(g, p)
		if err != nil {
			return nil, err
		}
		out[p-1] = s.Makespan
	}
	return out, nil
}
