package depgraph

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteDOT emits the graph in Graphviz DOT form, the standard interchange
// for dependency-graph figures like the paper's Fig. 9. Nodes carry their
// weights as labels; rank direction is top-to-bottom so sources (the
// stripes) sit on top, matching the figure's layout.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	b.WriteString("digraph ")
	b.WriteString(quoteDOT(title))
	b.WriteString(" {\n  rankdir=TB;\n  node [shape=box];\n")
	for _, n := range g.nodes {
		label := n.ID
		if n.Weight > 0 {
			label = fmt.Sprintf("%s\\n%s", n.ID, n.Weight.Round(time.Second))
		}
		fmt.Fprintf(&b, "  %s [label=%s];\n", quoteDOT(n.ID), quoteDOT(label))
	}
	// Deterministic edge order: by source insertion order, then target ID.
	for u := range g.nodes {
		targets := append([]int(nil), g.succ[u]...)
		sort.Slice(targets, func(i, j int) bool {
			return g.nodes[targets[i]].ID < g.nodes[targets[j]].ID
		})
		for _, v := range targets {
			fmt.Fprintf(&b, "  %s -> %s;\n", quoteDOT(g.nodes[u].ID), quoteDOT(g.nodes[v].ID))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func quoteDOT(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
