package depgraph

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTransitiveReductionDropsRedundantEdges(t *testing.T) {
	g := JordanReference(false)
	// Student-style redundant edges: stripes -> star directly.
	g.MustAddEdge("black-stripe", "white-star")
	g.MustAddEdge("green-stripe", "white-star")
	reduced, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	ref := JordanReference(false)
	if reduced.NumEdges() != ref.NumEdges() {
		t.Fatalf("reduced to %d edges, want %d", reduced.NumEdges(), ref.NumEdges())
	}
	if !reduced.SameConstraints(ref) {
		t.Fatal("reduction changed the constraints")
	}
	if reduced.HasEdge("black-stripe", "white-star") {
		t.Fatal("redundant edge survived")
	}
	if !reduced.HasEdge("red-triangle", "white-star") {
		t.Fatal("essential edge dropped")
	}
}

func TestTransitiveReductionIdempotentOnMinimal(t *testing.T) {
	for _, g := range []*Graph{
		JordanReference(false),
		JordanReference(true),
		GreatBritainReference(),
	} {
		reduced, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		if reduced.NumEdges() != g.NumEdges() {
			t.Fatalf("minimal graph lost edges: %d -> %d", g.NumEdges(), reduced.NumEdges())
		}
		if !reduced.SameConstraints(g) {
			t.Fatal("constraints changed")
		}
	}
}

func TestTransitiveReductionRejectsCycle(t *testing.T) {
	g := chain(t, "a", "b")
	g.MustAddEdge("b", "a")
	if _, err := g.TransitiveReduction(); err == nil {
		t.Fatal("cyclic graph should error")
	}
}

// Property: reduction preserves the closure and never adds edges, on
// random layered DAGs.
func TestTransitiveReductionProperty(t *testing.T) {
	check := func(nRaw uint8, edges uint16) bool {
		n := int(nRaw%8) + 2
		g := New()
		for i := 0; i < n; i++ {
			g.MustAddNode(Node{ID: string(rune('a' + i)), Weight: time.Second})
		}
		// Add forward edges only (guarantees a DAG) from the bit pattern.
		bit := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if edges&(1<<(bit%16)) != 0 {
					_ = g.AddEdge(string(rune('a'+i)), string(rune('a'+j)))
				}
				bit++
			}
		}
		reduced, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		return reduced.NumEdges() <= g.NumEdges() && reduced.SameConstraints(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
