package depgraph

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func chain(t *testing.T, ids ...string) *Graph {
	t.Helper()
	g := New()
	for _, id := range ids {
		g.MustAddNode(Node{ID: id, Weight: time.Second})
	}
	for i := 1; i < len(ids); i++ {
		g.MustAddEdge(ids[i-1], ids[i])
	}
	return g
}

func TestAddNodeValidation(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{}); err == nil {
		t.Fatal("empty ID should error")
	}
	if err := g.AddNode(Node{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: "a"}); err == nil {
		t.Fatal("duplicate should error")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := chain(t, "a", "b")
	if err := g.AddEdge("a", "ghost"); err == nil {
		t.Fatal("edge to unknown node should error")
	}
	if err := g.AddEdge("ghost", "a"); err == nil {
		t.Fatal("edge from unknown node should error")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("self edge should error")
	}
	if err := g.AddEdge("a", "b"); err == nil {
		t.Fatal("duplicate edge should error")
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g := JordanReference(false)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, s := range []string{"black-stripe", "white-stripe", "green-stripe"} {
		if pos[s] > pos["red-triangle"] {
			t.Fatalf("%s sorted after red-triangle", s)
		}
	}
	if pos["red-triangle"] > pos["white-star"] {
		t.Fatal("triangle sorted after star")
	}
}

func TestCycleDetection(t *testing.T) {
	g := chain(t, "a", "b", "c")
	g.MustAddEdge("c", "a")
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate error %v should mention cycle", err)
	}
}

func TestLevelsDepthWidth(t *testing.T) {
	g := JordanReference(false)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"black-stripe", "white-stripe", "green-stripe"} {
		if levels[s] != 0 {
			t.Fatalf("%s at level %d, want 0", s, levels[s])
		}
	}
	if levels["red-triangle"] != 1 || levels["white-star"] != 2 {
		t.Fatalf("levels %v", levels)
	}
	if d, _ := g.Depth(); d != 3 {
		t.Fatalf("depth %d, want 3", d)
	}
	if w, _ := g.Width(); w != 3 {
		t.Fatalf("width %d, want 3 (the stripes)", w)
	}
}

func TestCriticalPath(t *testing.T) {
	g := JordanReference(false)
	path, total, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// stripe (48s) -> triangle (30s) -> star (4s) = 82s.
	if total != 82*time.Second {
		t.Fatalf("critical path %v, want 82s", total)
	}
	if len(path) != 3 || path[len(path)-1] != "white-star" {
		t.Fatalf("path %v", path)
	}
	if path[1] != "red-triangle" {
		t.Fatalf("path %v should route through the triangle", path)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	path, total, err := New().CriticalPath()
	if err != nil || path != nil || total != 0 {
		t.Fatalf("empty graph: %v %v %v", path, total, err)
	}
}

func TestReachable(t *testing.T) {
	g := JordanReference(false)
	r := g.Reachable("black-stripe")
	if !r["red-triangle"] || !r["white-star"] {
		t.Fatalf("reachable %v", r)
	}
	if r["green-stripe"] || r["black-stripe"] {
		t.Fatalf("reachable %v includes non-descendants", r)
	}
}

func TestSameConstraintsIgnoresRedundantEdges(t *testing.T) {
	a := JordanReference(false)
	b := JordanReference(false)
	// Add a transitive edge: constraints unchanged.
	b.MustAddEdge("black-stripe", "white-star")
	if !a.SameConstraints(b) {
		t.Fatal("transitive edge must not change constraints")
	}
}

func TestSameConstraintsDetectsDifferences(t *testing.T) {
	a := JordanReference(false)
	lin := chain(t, "black-stripe", "white-stripe", "green-stripe", "red-triangle", "white-star")
	if a.SameConstraints(lin) {
		t.Fatal("linear chain must differ from the reference")
	}
	if a.SameConstraints(JordanReference(true)) {
		t.Fatal("different node sets must differ")
	}
}

func TestIsLinearChain(t *testing.T) {
	if !chain(t, "a", "b", "c").IsLinearChain() {
		t.Fatal("chain not recognized")
	}
	if JordanReference(false).IsLinearChain() {
		t.Fatal("Jordan reference is not a chain")
	}
	if New().IsLinearChain() {
		t.Fatal("empty graph is not a chain")
	}
	// Two disconnected nodes: not a chain.
	g := New()
	g.MustAddNode(Node{ID: "a"})
	g.MustAddNode(Node{ID: "b"})
	if g.IsLinearChain() {
		t.Fatal("disconnected nodes are not a chain")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := JordanReference(false)
	b := a.Clone()
	if !a.SameConstraints(b) {
		t.Fatal("clone should match original")
	}
	b.MustAddNode(Node{ID: "extra"})
	if a.NumNodes() == b.NumNodes() {
		t.Fatal("clone shares storage with original")
	}
}

func TestPredecessorsSuccessors(t *testing.T) {
	g := JordanReference(false)
	preds := g.Predecessors("red-triangle")
	if len(preds) != 3 {
		t.Fatalf("triangle preds %v", preds)
	}
	succs := g.Successors("red-triangle")
	if len(succs) != 1 || succs[0] != "white-star" {
		t.Fatalf("triangle succs %v", succs)
	}
	if g.Predecessors("nope") != nil {
		t.Fatal("unknown node should have nil neighbors")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := JordanReference(false)
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !g.SameConstraints(back) {
		t.Fatal("JSON roundtrip changed constraints")
	}
	n, _ := back.Node("black-stripe")
	if n.Weight != 48*time.Second {
		t.Fatalf("weight lost in roundtrip: %v", n.Weight)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"nodes":[{"id":"a"},{"id":"a"}],"edges":[]}`,               // dup node
		`{"nodes":[{"id":"a"}],"edges":[{"from":"a","to":"ghost"}]}`, // bad edge
		`{"nodes":[{"id":"a"}],"bogus":true}`,                        // unknown field
		`not json`,
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Fatalf("Decode(%q) should fail", c)
		}
	}
}

func TestDecodeAcceptsCyclicForGrading(t *testing.T) {
	// The grader legitimately receives cyclic student drawings; Decode
	// must accept them and Validate must flag them.
	g, err := Decode(strings.NewReader(
		`{"nodes":[{"id":"a"},{"id":"b"}],"edges":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Validate() == nil {
		t.Fatal("cycle should fail validation")
	}
}
