package depgraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the dependency-graph wire parser: accepted graphs
// must round-trip through Marshal/Decode with identical constraints, and
// every algorithm must run on them without panicking (cyclic inputs are
// legitimate here — the grader sees them).
func FuzzDecode(f *testing.F) {
	f.Add(`{"nodes":[{"id":"a"},{"id":"b"}],"edges":[{"from":"a","to":"b"}]}`)
	f.Add(`{"nodes":[{"id":"a","seconds":2.5}],"edges":[]}`)
	f.Add(`{"nodes":[{"id":"a"},{"id":"b"}],"edges":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`)
	f.Add(`{"nodes":[],"edges":[]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Decode(strings.NewReader(src))
		if err != nil {
			return
		}
		// All analyses must terminate without panicking, cyclic or not.
		_ = g.Validate()
		_, _ = g.TopoSort()
		_, _, _ = g.CriticalPath()
		_ = g.IsLinearChain()
		_ = g.TransitiveClosure()
		for _, n := range g.Nodes() {
			_ = g.Predecessors(n.ID)
			_ = g.Successors(n.ID)
			_ = g.Reachable(n.ID)
		}
		// Round trip: constraints preserved (only meaningful for DAGs;
		// SameConstraints returns false for cyclic either way).
		data, err := g.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
		back, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("marshal output failed to decode: %v", err)
		}
		if g.Validate() == nil && !g.SameConstraints(back) {
			t.Fatal("round trip changed a DAG's constraints")
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed counts")
		}
	})
}
