package depgraph

import "fmt"

// TransitiveReduction returns the minimal graph with the same transitive
// closure: every redundant edge (one implied by a longer path) is
// dropped. Student drawings often include the implied stripe→star edges;
// reducing before display yields the clean Fig. 9 shape without changing
// the constraints. Only defined for DAGs.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	if _, err := g.TopoSort(); err != nil {
		return nil, fmt.Errorf("depgraph: reduction of a cyclic graph: %w", err)
	}
	out := New()
	for _, n := range g.nodes {
		out.MustAddNode(n)
	}
	// An edge u->v is redundant iff v is reachable from u through some
	// other successor of u. Check each edge against reachability through
	// the edge's alternatives.
	for u := range g.nodes {
		for _, v := range g.succ[u] {
			redundant := false
			for _, w := range g.succ[u] {
				if w == v {
					continue
				}
				if g.reachesIdx(w, v) {
					redundant = true
					break
				}
			}
			if !redundant {
				out.MustAddEdge(g.nodes[u].ID, g.nodes[v].ID)
			}
		}
	}
	return out, nil
}

// reachesIdx reports whether target is reachable from start (by index),
// including multi-hop paths.
func (g *Graph) reachesIdx(start, target int) bool {
	if start == target {
		return true
	}
	seen := make(map[int]bool)
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if v == target {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}
