package depgraph

import (
	"testing"
	"testing/quick"
	"time"

	"flagsim/internal/flagspec"
)

func TestListScheduleValid(t *testing.T) {
	for _, g := range []*Graph{
		JordanReference(false),
		JordanReference(true),
		JordanSplitTriangleReference(false),
		GreatBritainReference(),
	} {
		for p := 1; p <= 4; p++ {
			s, err := ListSchedule(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(g); err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
		}
	}
}

func TestScheduleSingleProcessorIsSerial(t *testing.T) {
	g := JordanReference(false)
	s, err := ListSchedule(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, n := range g.Nodes() {
		total += n.Weight
	}
	if s.Makespan != total {
		t.Fatalf("serial makespan %v, want %v", s.Makespan, total)
	}
}

func TestScheduleNeverBeatsCriticalPath(t *testing.T) {
	g := JordanReference(false)
	_, cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 8; p++ {
		s, err := ListSchedule(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan < cp {
			t.Fatalf("p=%d makespan %v below critical path %v", p, s.Makespan, cp)
		}
	}
}

func TestSpeedupCurveMonotoneAndFlattens(t *testing.T) {
	g := JordanReference(false)
	curve, err := SpeedupCurve(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("more processors got slower: %v", curve)
		}
	}
	// Jordan's width is 3: adding a 4th processor must not help.
	if curve[3] != curve[2] {
		t.Fatalf("p=4 (%v) should equal p=3 (%v): dependencies cap parallelism", curve[3], curve[2])
	}
	// The flat tail equals the critical path.
	_, cp, _ := g.CriticalPath()
	if curve[5] != cp {
		t.Fatalf("saturated makespan %v != critical path %v", curve[5], cp)
	}
}

func TestGreatBritainDependenciesLimitSpeedup(t *testing.T) {
	// GB's graph is nearly a chain: even many processors barely help.
	g := GreatBritainReference()
	curve, err := SpeedupCurve(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	s4 := float64(curve[0]) / float64(curve[3])
	if s4 > 1.5 {
		t.Fatalf("GB speedup at p=4 is %v; its chain should cap it low", s4)
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	g := JordanReference(false)
	if _, err := ListSchedule(g, 0); err == nil {
		t.Fatal("p=0 should error")
	}
	cyc := New()
	cyc.MustAddNode(Node{ID: "a"})
	cyc.MustAddNode(Node{ID: "b"})
	cyc.MustAddEdge("a", "b")
	cyc.MustAddEdge("b", "a")
	if _, err := ListSchedule(cyc, 2); err == nil {
		t.Fatal("cyclic graph should error")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := chain(t, "a", "b")
	s := &Schedule{Procs: 1, Makespan: 2 * time.Second, Tasks: []ScheduledTask{
		{ID: "a", Proc: 0, Start: 0, End: time.Second},
		{ID: "b", Proc: 0, Start: 500 * time.Millisecond, End: 1500 * time.Millisecond},
	}}
	if err := s.Validate(g); err == nil {
		t.Fatal("overlapping tasks on one processor should fail")
	}
}

func TestValidateCatchesDependencyViolation(t *testing.T) {
	g := chain(t, "a", "b")
	s := &Schedule{Procs: 2, Makespan: time.Second, Tasks: []ScheduledTask{
		{ID: "a", Proc: 0, Start: 0, End: time.Second},
		{ID: "b", Proc: 1, Start: 0, End: time.Second},
	}}
	if err := s.Validate(g); err == nil {
		t.Fatal("b starting before a finishes should fail")
	}
}

func TestValidateCatchesMissingTask(t *testing.T) {
	g := chain(t, "a", "b")
	s := &Schedule{Procs: 1, Tasks: []ScheduledTask{
		{ID: "a", Proc: 0, Start: 0, End: time.Second},
	}}
	if err := s.Validate(g); err == nil {
		t.Fatal("missing task should fail")
	}
}

func TestFromFlagMatchesHandCodedReferences(t *testing.T) {
	f := flagspec.Jordan
	g, err := FromFlag(f, f.DefaultW, f.DefaultH)
	if err != nil {
		t.Fatal(err)
	}
	// The generated layer graph encodes the same ordering constraints as
	// the paper's Fig. 9 reference (weights differ; constraints match).
	ref := JordanReference(false)
	if !g.SameConstraints(ref) {
		t.Fatal("FromFlag(jordan) constraints differ from Fig. 9 reference")
	}
}

func TestFromFlagGreatBritain(t *testing.T) {
	f := flagspec.GreatBritain
	g, err := FromFlag(f, f.DefaultW, f.DefaultH)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Background precedes everything.
	reach := g.Reachable("blue-field")
	if len(reach) != g.NumNodes()-1 {
		t.Fatalf("blue-field reaches %d of %d nodes", len(reach), g.NumNodes()-1)
	}
}

func TestFromFlagMauritiusIndependent(t *testing.T) {
	f := flagspec.Mauritius
	g, err := FromFlag(f, f.DefaultW, f.DefaultH)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("mauritius layer graph has %d edges, want 0", g.NumEdges())
	}
	if w, _ := g.Width(); w != 4 {
		t.Fatalf("width %d, want 4", w)
	}
}

// Property: list schedules on random chain+fan graphs are always valid and
// monotone in p.
func TestListScheduleProperty(t *testing.T) {
	check := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%8) + 2
		p := int(pRaw%4) + 1
		g := New()
		for i := 0; i < n; i++ {
			g.MustAddNode(Node{ID: string(rune('a' + i)), Weight: time.Duration(i+1) * time.Second})
		}
		// Fan: first half independent, second half depends on node 0.
		for i := n / 2; i < n; i++ {
			if i != 0 {
				g.MustAddEdge("a", string(rune('a'+i)))
			}
		}
		s, err := ListSchedule(g, p)
		if err != nil {
			return false
		}
		return s.Validate(g) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
