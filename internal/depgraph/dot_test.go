package depgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTStructure(t *testing.T) {
	g := JordanReference(false)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "fig9"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, `digraph "fig9"`) {
		t.Fatalf("header %q", out[:20])
	}
	for _, node := range []string{"black-stripe", "red-triangle", "white-star"} {
		if !strings.Contains(out, `"`+node+`"`) {
			t.Fatalf("missing node %s", node)
		}
	}
	if !strings.Contains(out, `"red-triangle" -> "white-star";`) {
		t.Fatal("missing triangle->star edge")
	}
	if got := strings.Count(out, "->"); got != g.NumEdges() {
		t.Fatalf("%d edges in DOT, want %d", got, g.NumEdges())
	}
	// Weights appear as labels.
	if !strings.Contains(out, "48s") {
		t.Fatal("missing weight label")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g := GreatBritainReference()
	var a, b bytes.Buffer
	if err := g.WriteDOT(&a, "x"); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("DOT output not deterministic")
	}
}

func TestWriteDOTQuotesSpecials(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: `weird"name`})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, `ti"tle`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `\"`) {
		t.Fatal("quotes not escaped")
	}
}
