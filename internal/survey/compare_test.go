package survey

import (
	"testing"

	"flagsim/internal/rng"
)

func studyForCompare(t *testing.T) map[Institution]*Cohort {
	t.Helper()
	cohorts, err := GenerateStudy(PaperTargets(), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	return cohorts
}

func TestCompareInstitutionsFindsGap(t *testing.T) {
	cohorts := studyForCompare(t)
	// increased-loops: Montclair 5.0 vs HPU 3.0 — the largest gap in
	// Table II; the test should flag it.
	c, err := CompareInstitutions(cohorts, "increased-loops", Montclair, HPU)
	if err != nil {
		t.Fatal(err)
	}
	if c.MedianA != 5.0 || c.MedianB != 3.0 {
		t.Fatalf("medians %v/%v", c.MedianA, c.MedianB)
	}
	if c.Result.PValue > 0.05 {
		t.Fatalf("5.0-vs-3.0 medians p = %v, expected significant", c.Result.PValue)
	}
	// Montclair higher -> its ranks dominate -> negative rank-biserial
	// under our orientation or positive; just require a large magnitude.
	if abs(c.Result.RankBiserial) < 0.3 {
		t.Fatalf("effect size %v too small for a 2-point median gap", c.Result.RankBiserial)
	}
}

func TestCompareInstitutionsSameTarget(t *testing.T) {
	cohorts := studyForCompare(t)
	// had-fun: HPU 4.0 vs Knox 4.0 — same target; should usually not be
	// significant.
	c, err := CompareInstitutions(cohorts, "had-fun", HPU, Knox)
	if err != nil {
		t.Fatal(err)
	}
	if c.Result.PValue < 0.05 {
		t.Fatalf("same-median cohorts p = %v; implausibly significant", c.Result.PValue)
	}
}

func TestCompareInstitutionsNACell(t *testing.T) {
	cohorts := studyForCompare(t)
	if _, err := CompareInstitutions(cohorts, "instructor-effort", Webster, HPU); err == nil {
		t.Fatal("Webster NA cell should error")
	}
	if _, err := CompareInstitutions(cohorts, "had-fun", "Nowhere", HPU); err == nil {
		t.Fatal("unknown institution should error")
	}
}

func TestCompareAllPairs(t *testing.T) {
	cohorts := studyForCompare(t)
	pairs, err := CompareAllPairs(cohorts, "had-fun")
	if err != nil {
		t.Fatal(err)
	}
	// All six institutions asked had-fun: C(6,2) = 15 pairs.
	if len(pairs) != 15 {
		t.Fatalf("%d pairs, want 15", len(pairs))
	}
	pairs, err = CompareAllPairs(cohorts, "stimulated-interest")
	if err != nil {
		t.Fatal(err)
	}
	// TNTech is NA: C(5,2) = 10 pairs.
	if len(pairs) != 10 {
		t.Fatalf("%d pairs, want 10", len(pairs))
	}
	if _, err := CompareAllPairs(cohorts, "bogus"); err == nil {
		t.Fatal("unknown question should error")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
