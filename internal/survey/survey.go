// Package survey implements the paper's student engagement instrument and
// the synthetic-cohort machinery that regenerates Tables I–III and Fig. 6.
//
// The instrument is the ASPECT-derived questionnaire of Fig. 5: eighteen
// 5-point Likert items covering the student experience (engagement), their
// understanding, and instructor effectiveness. The paper reports only
// per-institution medians; package survey holds those reported medians as
// calibration targets, generates plausible cohorts whose sample medians hit
// the targets exactly, and then re-measures the medians through the same
// analysis path a real deployment would use.
package survey

import (
	"fmt"
	"sort"

	"flagsim/internal/rng"
	"flagsim/internal/stats"
)

// Category groups instrument questions the way the paper's §V does.
type Category uint8

// Question categories.
const (
	// Engagement covers enjoyment, participation, and focus (Table I).
	Engagement Category = iota
	// Understanding covers comprehension of material and computing
	// concepts (Table II).
	Understanding
	// Instructor covers preparedness, enthusiasm, and availability
	// (Table III).
	Instructor
	// General covers instrument items not reported in any table.
	General
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Engagement:
		return "engagement"
	case Understanding:
		return "understanding"
	case Instructor:
		return "instructor"
	case General:
		return "general"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// Question is one Likert item of the instrument.
type Question struct {
	// ID is the stable key used in tables and cohorts.
	ID string
	// Text is the wording from Fig. 5.
	Text string
	// Category is the paper's grouping.
	Category Category
	// Starred marks the item only asked where the activity tied into a
	// current programming assignment (the Fig. 5 asterisk).
	Starred bool
}

// Instrument returns the full Fig. 5 questionnaire in presentation order.
func Instrument() []Question {
	return []Question{
		{ID: "explain-improved", Text: "Explaining the material to my group improved my understanding of it", Category: Understanding},
		{ID: "explained-to-me", Text: "Having the material explained to me by my group members improved my understanding of it", Category: Understanding},
		{ID: "group-discussion", Text: "Group discussion during the activity contributed to my understanding of parallel computing", Category: Understanding},
		{ID: "had-fun", Text: "I had fun during the activity", Category: Engagement},
		{ID: "others-contributed", Text: "Overall, the other members of my group made valuable contributions during the activity", Category: General},
		{ID: "prefer-class", Text: "I would prefer to take a class that includes this group activity over one that does not", Category: General},
		{ID: "confident", Text: "I am confident in my understanding of the material presented during the activity", Category: Understanding},
		{ID: "increased-pc", Text: "The activity increased my understanding of parallel computing", Category: Understanding},
		{ID: "stimulated-interest", Text: "The activity stimulated my interest in parallel computing", Category: Engagement},
		{ID: "increased-loops", Text: "The activity increased my understanding of loops", Category: Understanding},
		{ID: "my-contribution", Text: "I made a valuable contribution to my group during the activity", Category: Engagement},
		{ID: "focused", Text: "I was focused during the activity", Category: Engagement},
		{ID: "worked-hard", Text: "I worked hard during the activity", Category: Engagement},
		{ID: "instructor-prepared", Text: "The instructor seemed prepared for the activity", Category: Instructor},
		{ID: "instructor-effort", Text: "The instructor put a good deal of effort into my learning from the activity", Category: Instructor},
		{ID: "instructor-enthusiasm", Text: "The instructor's enthusiasm made me more interested in the activity", Category: Instructor},
		{ID: "staff-available", Text: "The instructor and/or TAs were available to answer questions during the activity", Category: Instructor},
		{ID: "tied-to-assignment", Text: "I like that the activity tied into the class's current programming assignment", Category: General, Starred: true},
	}
}

// QuestionByID returns the instrument question with the given ID.
func QuestionByID(id string) (Question, error) {
	for _, q := range Instrument() {
		if q.ID == id {
			return q, nil
		}
	}
	return Question{}, fmt.Errorf("survey: unknown question %q", id)
}

// QuestionsInCategory filters the instrument.
func QuestionsInCategory(c Category) []Question {
	var out []Question
	for _, q := range Instrument() {
		if q.Category == c {
			out = append(out, q)
		}
	}
	return out
}

// Institution identifies one of the six pilot sites.
type Institution string

// The six institutions of the study, in the paper's column order.
const (
	HPU       Institution = "HPU"
	Knox      Institution = "Knox"
	Montclair Institution = "Montclair"
	TNTech    Institution = "TNTech"
	USI       Institution = "USI"
	Webster   Institution = "Webster"
)

// Institutions returns the six sites in table column order.
func Institutions() []Institution {
	return []Institution{HPU, Knox, Montclair, TNTech, USI, Webster}
}

// Target is one reported median: a question at an institution. Missing
// entries correspond to the paper's NA cells (questions an institution did
// not ask).
type Target struct {
	Question    string
	Institution Institution
	Median      float64
}

// Targets is the calibration table: reported medians keyed by question
// then institution.
type Targets map[string]map[Institution]float64

// Add records one target.
func (t Targets) Add(question string, inst Institution, median float64) {
	m, ok := t[question]
	if !ok {
		m = make(map[Institution]float64)
		t[question] = m
	}
	m[inst] = median
}

// Lookup returns the target median, with ok=false for NA cells.
func (t Targets) Lookup(question string, inst Institution) (float64, bool) {
	m, ok := t[question]
	if !ok {
		return 0, false
	}
	v, ok := m[inst]
	return v, ok
}

// Questions returns the question IDs present in the targets, sorted.
func (t Targets) Questions() []string {
	out := make([]string, 0, len(t))
	for q := range t {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// PaperTargets returns the medians reported in Tables I–III. NA cells are
// simply absent: "stimulated-interest" at TNTech (Table I) and the three
// instructor items Webster did not ask (Table III).
func PaperTargets() Targets {
	t := make(Targets)
	add := func(q string, vals ...interface{}) {
		insts := Institutions()
		for i, v := range vals {
			if f, ok := v.(float64); ok {
				t.Add(q, insts[i], f)
			}
		}
	}
	na := struct{}{}
	// Table I — engagement. Columns: HPU Knox Montclair TNTech USI Webster.
	add("had-fun", 4.0, 4.0, 4.5, 4.0, 5.0, 5.0)
	add("my-contribution", 5.0, 4.0, 5.0, 5.0, 4.0, 5.0)
	add("focused", 4.5, 4.0, 5.0, 5.0, 5.0, 5.0)
	add("worked-hard", 4.5, 4.0, 5.0, 5.0, 5.0, 5.0)
	add("stimulated-interest", 4.5, 4.0, 3.5, na, 4.0, 5.0)
	// Table II — understanding.
	add("explain-improved", 5.0, 4.0, 4.0, 4.0, 4.5, 4.0)
	add("explained-to-me", 4.5, 4.0, 4.5, 4.0, 4.0, 4.5)
	add("group-discussion", 4.5, 4.0, 4.0, 4.0, 5.0, 5.0)
	add("confident", 4.5, 4.0, 4.0, 4.0, 4.0, 5.0)
	add("increased-pc", 5.0, 4.0, 4.5, 4.0, 5.0, 5.0)
	add("increased-loops", 3.0, 4.0, 5.0, 3.0, 4.0, 4.0)
	// Table III — instructor.
	add("instructor-prepared", 5.0, 4.0, 5.0, 5.0, 5.0, 5.0)
	add("instructor-effort", 5.0, 4.0, 5.0, 5.0, 5.0, na)
	add("instructor-enthusiasm", 5.0, 4.0, 5.0, 5.0, 5.0, na)
	add("staff-available", 5.0, 4.0, 5.0, 5.0, 5.0, na)
	return t
}

// TableIQuestions returns the Table I rows in paper order.
func TableIQuestions() []string {
	return []string{"had-fun", "my-contribution", "focused", "worked-hard", "stimulated-interest"}
}

// TableIIQuestions returns the Table II rows in paper order.
func TableIIQuestions() []string {
	return []string{"explain-improved", "explained-to-me", "group-discussion",
		"confident", "increased-pc", "increased-loops"}
}

// TableIIIQuestions returns the Table III rows in paper order.
func TableIIIQuestions() []string {
	return []string{"instructor-prepared", "instructor-effort",
		"instructor-enthusiasm", "staff-available"}
}

// DefaultCohortSize returns the synthetic class size per institution. The
// sizes are even (half-point medians such as HPU's 4.5 require an even
// sample) and scaled to the study's reported populations where known: USI's
// quiz cohort was 13 students, TNTech's 86, Knox's class 65.
func DefaultCohortSize(inst Institution) int {
	switch inst {
	case HPU:
		return 12
	case Knox:
		return 64
	case Montclair:
		return 24
	case TNTech:
		return 86
	case USI:
		return 14
	case Webster:
		return 18
	default:
		return 20
	}
}

// Cohort is one institution's generated responses: per question, one
// Likert response per student who was asked that question.
type Cohort struct {
	Institution Institution
	N           int
	Responses   map[string][]int
}

// GenerateCohort synthesizes an institution's survey responses hitting
// every target median exactly. Questions without a target for this
// institution (the NA cells) are omitted from the cohort, matching the
// paper's "did not include these questions in the survey".
func GenerateCohort(inst Institution, n int, targets Targets, stream *rng.Stream) (*Cohort, error) {
	if n <= 0 {
		return nil, fmt.Errorf("survey: cohort size %d", n)
	}
	if stream == nil {
		stream = rng.New(0)
	}
	c := &Cohort{Institution: inst, N: n, Responses: make(map[string][]int)}
	for _, q := range Instrument() {
		target, ok := targets.Lookup(q.ID, inst)
		if !ok {
			continue
		}
		resp, err := stats.SampleLikertWithMedian(target, n, stream.SplitLabeled(string(inst)+"/"+q.ID), 5000)
		if err != nil {
			return nil, fmt.Errorf("survey: %s %s: %w", inst, q.ID, err)
		}
		c.Responses[q.ID] = resp
	}
	return c, nil
}

// Median returns the cohort's measured median for a question.
func (c *Cohort) Median(question string) (float64, bool) {
	resp, ok := c.Responses[question]
	if !ok {
		return 0, false
	}
	m, err := stats.MedianInts(resp)
	if err != nil {
		return 0, false
	}
	return m, true
}

// GenerateStudy generates cohorts for all six institutions from one master
// stream.
func GenerateStudy(targets Targets, stream *rng.Stream) (map[Institution]*Cohort, error) {
	if stream == nil {
		stream = rng.New(0)
	}
	out := make(map[Institution]*Cohort, 6)
	for _, inst := range Institutions() {
		c, err := GenerateCohort(inst, DefaultCohortSize(inst), targets, stream.SplitLabeled(string(inst)))
		if err != nil {
			return nil, err
		}
		out[inst] = c
	}
	return out, nil
}
