package survey

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCohortsCSV hardens the survey-data importer: accepted files
// must produce cohorts whose every response is on the 1–5 scale and whose
// per-question lengths equal the cohort size, and they must round-trip.
func FuzzReadCohortsCSV(f *testing.F) {
	f.Add("institution,student,had-fun\nHPU,1,4\nHPU,2,5")
	f.Add("institution,student,had-fun,focused\nKnox,1,3,4")
	f.Add("institution,student,instructor-effort\nWebster,1,")
	f.Add("institution,student\nHPU,1")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		cohorts, err := ReadCohortsCSV(strings.NewReader(src))
		if err != nil {
			return
		}
		for inst, c := range cohorts {
			if c.N <= 0 {
				t.Fatalf("%s accepted with N=%d", inst, c.N)
			}
			for q, resp := range c.Responses {
				if len(resp) != c.N {
					t.Fatalf("%s/%s: %d responses for %d students", inst, q, len(resp), c.N)
				}
				for _, v := range resp {
					if v < 1 || v > 5 {
						t.Fatalf("%s/%s: off-scale response %d accepted", inst, q, v)
					}
				}
				if _, err := QuestionByID(q); err != nil {
					t.Fatalf("unknown question %q accepted", q)
				}
			}
			// Round trip each institution's cohort.
			var buf bytes.Buffer
			if err := WriteCohortCSV(&buf, c); err != nil {
				// Cohorts with zero answered questions can't round-trip
				// meaningfully; Write requires asked questions.
				if len(c.Responses) == 0 {
					continue
				}
				t.Fatalf("%s: accepted cohort failed to write: %v", inst, err)
			}
			back, err := ReadCohortsCSV(&buf)
			if err != nil {
				t.Fatalf("%s: written CSV failed to read: %v", inst, err)
			}
			if back[inst] == nil || back[inst].N != c.N {
				t.Fatalf("%s: round trip changed cohort size", inst)
			}
		}
	})
}
