package survey

import (
	"fmt"

	"flagsim/internal/stats"
)

// CategoryAlpha computes Cronbach's alpha for one category's items at one
// institution — the reliability check a real ASPECT deployment reports.
// Every item of the category must have been asked (NA items are skipped;
// at least two asked items are required).
func CategoryAlpha(c *Cohort, category Category) (float64, error) {
	if c == nil {
		return 0, fmt.Errorf("survey: nil cohort")
	}
	var items [][]int
	for _, q := range QuestionsInCategory(category) {
		if resp, ok := c.Responses[q.ID]; ok {
			items = append(items, resp)
		}
	}
	if len(items) < 2 {
		return 0, fmt.Errorf("survey: %s asked %d %s items; alpha needs >= 2",
			c.Institution, len(items), category)
	}
	return stats.CronbachAlpha(items)
}

// StudyAlphas computes per-institution alphas for one category, skipping
// institutions where the category is undefined (e.g. Webster's instructor
// items). Keys are the institutions with a defined alpha.
func StudyAlphas(cohorts map[Institution]*Cohort, category Category) map[Institution]float64 {
	out := map[Institution]float64{}
	for inst, c := range cohorts {
		if a, err := CategoryAlpha(c, category); err == nil {
			out[inst] = a
		}
	}
	return out
}
