package survey

import (
	"fmt"
	"math"
)

// Cell is one median entry in a results table; NA mirrors the paper's
// "Not applicable" cells.
type Cell struct {
	Median float64
	NA     bool
}

// String formats the cell the way the paper's tables do.
func (c Cell) String() string {
	if c.NA {
		return "NA"
	}
	return fmt.Sprintf("%.1f", c.Median)
}

// Table is a questions × institutions median table — the shape of
// Tables I, II, and III.
type Table struct {
	Title        string
	Questions    []string // row keys, in paper order
	Institutions []Institution
	Cells        map[string]map[Institution]Cell
}

// Cell returns the entry for (question, institution).
func (t *Table) Cell(question string, inst Institution) Cell {
	row, ok := t.Cells[question]
	if !ok {
		return Cell{NA: true}
	}
	c, ok := row[inst]
	if !ok {
		return Cell{NA: true}
	}
	return c
}

// BuildTable measures medians from generated cohorts for the given question
// rows — the analysis path of §V-A.
func BuildTable(title string, questions []string, cohorts map[Institution]*Cohort) (*Table, error) {
	t := &Table{
		Title:        title,
		Questions:    questions,
		Institutions: Institutions(),
		Cells:        make(map[string]map[Institution]Cell),
	}
	for _, q := range questions {
		if _, err := QuestionByID(q); err != nil {
			return nil, err
		}
		row := make(map[Institution]Cell, len(t.Institutions))
		for _, inst := range t.Institutions {
			c, ok := cohorts[inst]
			if !ok {
				row[inst] = Cell{NA: true}
				continue
			}
			m, ok := c.Median(q)
			if !ok {
				row[inst] = Cell{NA: true}
				continue
			}
			row[inst] = Cell{Median: m}
		}
		t.Cells[q] = row
	}
	return t, nil
}

// VerifyAgainstTargets compares a measured table to the calibration
// targets and returns the mismatched cells (empty means the reproduction
// is exact). NA-ness must agree too.
func (t *Table) VerifyAgainstTargets(targets Targets) []string {
	var bad []string
	for _, q := range t.Questions {
		for _, inst := range t.Institutions {
			cell := t.Cell(q, inst)
			want, ok := targets.Lookup(q, inst)
			switch {
			case !ok && !cell.NA:
				bad = append(bad, fmt.Sprintf("%s/%s: expected NA, measured %.1f", q, inst, cell.Median))
			case ok && cell.NA:
				bad = append(bad, fmt.Sprintf("%s/%s: expected %.1f, measured NA", q, inst, want))
			case ok && math.Abs(cell.Median-want) > 1e-9:
				bad = append(bad, fmt.Sprintf("%s/%s: expected %.1f, measured %.1f", q, inst, want, cell.Median))
			}
		}
	}
	return bad
}

// BuildPaperTables generates the full study and returns measured
// reproductions of Tables I, II, and III.
func BuildPaperTables(cohorts map[Institution]*Cohort) (t1, t2, t3 *Table, err error) {
	t1, err = BuildTable("Table I: engagement (enjoyment, participation, focus)", TableIQuestions(), cohorts)
	if err != nil {
		return nil, nil, nil, err
	}
	t2, err = BuildTable("Table II: understanding (comprehension of material and computing concepts)", TableIIQuestions(), cohorts)
	if err != nil {
		return nil, nil, nil, err
	}
	t3, err = BuildTable("Table III: instructor-related questions", TableIIIQuestions(), cohorts)
	if err != nil {
		return nil, nil, nil, err
	}
	return t1, t2, t3, nil
}
