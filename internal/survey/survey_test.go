package survey

import (
	"strings"
	"testing"

	"flagsim/internal/rng"
)

func TestInstrumentIntegrity(t *testing.T) {
	qs := Instrument()
	if len(qs) != 18 {
		t.Fatalf("instrument has %d questions, want 18 (Fig. 5)", len(qs))
	}
	seen := map[string]bool{}
	starred := 0
	for _, q := range qs {
		if q.ID == "" || q.Text == "" {
			t.Fatalf("question %+v incomplete", q)
		}
		if seen[q.ID] {
			t.Fatalf("duplicate question ID %q", q.ID)
		}
		seen[q.ID] = true
		if q.Starred {
			starred++
		}
	}
	if starred != 1 {
		t.Fatalf("%d starred questions, want 1", starred)
	}
}

func TestQuestionCategories(t *testing.T) {
	if n := len(QuestionsInCategory(Engagement)); n != 5 {
		t.Fatalf("%d engagement questions, want 5 (Table I)", n)
	}
	if n := len(QuestionsInCategory(Understanding)); n != 6 {
		t.Fatalf("%d understanding questions, want 6 (Table II)", n)
	}
	if n := len(QuestionsInCategory(Instructor)); n != 4 {
		t.Fatalf("%d instructor questions, want 4 (Table III)", n)
	}
}

func TestQuestionByID(t *testing.T) {
	q, err := QuestionByID("had-fun")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Text, "fun") {
		t.Fatalf("wrong question %q", q.Text)
	}
	if _, err := QuestionByID("nope"); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestPaperTargetsShape(t *testing.T) {
	targets := PaperTargets()
	// Table rows must cover all three tables' question sets.
	for _, q := range append(append(TableIQuestions(), TableIIQuestions()...), TableIIIQuestions()...) {
		if _, ok := targets[q]; !ok {
			t.Fatalf("no targets for %q", q)
		}
	}
	// The paper's NA cells.
	if _, ok := targets.Lookup("stimulated-interest", TNTech); ok {
		t.Fatal("stimulated-interest at TNTech must be NA")
	}
	for _, q := range []string{"instructor-effort", "instructor-enthusiasm", "staff-available"} {
		if _, ok := targets.Lookup(q, Webster); ok {
			t.Fatalf("%s at Webster must be NA", q)
		}
	}
	// Spot checks against the printed tables.
	if v, _ := targets.Lookup("had-fun", USI); v != 5.0 {
		t.Fatalf("had-fun@USI %v", v)
	}
	if v, _ := targets.Lookup("increased-loops", HPU); v != 3.0 {
		t.Fatalf("increased-loops@HPU %v", v)
	}
	if v, _ := targets.Lookup("stimulated-interest", Montclair); v != 3.5 {
		t.Fatalf("stimulated-interest@Montclair %v", v)
	}
}

func TestCohortSizesAllowHalfPointMedians(t *testing.T) {
	targets := PaperTargets()
	for _, inst := range Institutions() {
		n := DefaultCohortSize(inst)
		for q := range targets {
			target, ok := targets.Lookup(q, inst)
			if !ok {
				continue
			}
			if target*2 != float64(int(target*2)) {
				continue
			}
			if isHalf := int(target*2)%2 == 1; isHalf && n%2 == 1 {
				t.Fatalf("%s has odd cohort %d but half-point target %v on %s", inst, n, target, q)
			}
		}
	}
}

func TestGenerateCohortHitsEveryTarget(t *testing.T) {
	targets := PaperTargets()
	c, err := GenerateCohort(HPU, DefaultCohortSize(HPU), targets, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for q := range targets {
		want, ok := targets.Lookup(q, HPU)
		if !ok {
			continue
		}
		got, ok := c.Median(q)
		if !ok {
			t.Fatalf("cohort missing %q", q)
		}
		if got != want {
			t.Fatalf("%s: median %v, want %v", q, got, want)
		}
	}
}

func TestGenerateCohortOmitsNAQuestions(t *testing.T) {
	c, err := GenerateCohort(Webster, DefaultCohortSize(Webster), PaperTargets(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Responses["instructor-effort"]; ok {
		t.Fatal("Webster did not ask instructor-effort; cohort must omit it")
	}
	if _, ok := c.Responses["instructor-prepared"]; !ok {
		t.Fatal("Webster did ask instructor-prepared")
	}
}

func TestGenerateStudyDeterministic(t *testing.T) {
	a, err := GenerateStudy(PaperTargets(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStudy(PaperTargets(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for inst, ca := range a {
		cb := b[inst]
		for q, ra := range ca.Responses {
			rb := cb.Responses[q]
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("%s/%s differs at %d", inst, q, i)
				}
			}
		}
	}
}

func TestBuildPaperTablesExact(t *testing.T) {
	cohorts, err := GenerateStudy(PaperTargets(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, t3, err := BuildPaperTables(cohorts)
	if err != nil {
		t.Fatal(err)
	}
	targets := PaperTargets()
	for _, table := range []*Table{t1, t2, t3} {
		if bad := table.VerifyAgainstTargets(targets); len(bad) != 0 {
			t.Fatalf("%s mismatches: %v", table.Title, bad)
		}
	}
	// Spot checks through the measured path.
	if c := t1.Cell("had-fun", Montclair); c.NA || c.Median != 4.5 {
		t.Fatalf("had-fun@Montclair %+v", c)
	}
	if c := t3.Cell("instructor-effort", Webster); !c.NA {
		t.Fatalf("instructor-effort@Webster should be NA, got %+v", c)
	}
	if c := t3.Cell("instructor-effort", Webster); c.String() != "NA" {
		t.Fatalf("NA cell renders %q", c.String())
	}
	if c := t2.Cell("increased-pc", USI); c.String() != "5.0" {
		t.Fatalf("cell renders %q", c.String())
	}
}

func TestBuildTableUnknownQuestion(t *testing.T) {
	cohorts, _ := GenerateStudy(PaperTargets(), rng.New(1))
	if _, err := BuildTable("x", []string{"bogus"}, cohorts); err == nil {
		t.Fatal("unknown question should error")
	}
}

func TestGenerateCohortValidation(t *testing.T) {
	if _, err := GenerateCohort(HPU, 0, PaperTargets(), rng.New(1)); err == nil {
		t.Fatal("n=0 should error")
	}
}
