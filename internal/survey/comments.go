package survey

import (
	"fmt"
	"sort"

	"flagsim/internal/rng"
)

// The engagement survey ends with two open-ended questions (§V-A). The
// paper reports the responses as recurring themes; this file models the
// qualitative pipeline: a theme taxonomy taken from the paper's summary,
// a generator that produces theme-tagged comments with realistic
// frequencies, and the tally that reproduces the reported ordering.

// OpenQuestion identifies one of the two open-ended items.
type OpenQuestion uint8

// The two open-ended questions.
const (
	// MostInteresting: "the most interesting thing they learned".
	MostInteresting OpenQuestion = iota
	// Improvements: "suggest improvements to the activity".
	Improvements
)

// String names the question.
func (q OpenQuestion) String() string {
	switch q {
	case MostInteresting:
		return "most-interesting"
	case Improvements:
		return "improvements"
	default:
		return fmt.Sprintf("open-question(%d)", uint8(q))
	}
}

// Theme is one recurring idea in the qualitative feedback.
type Theme struct {
	ID string
	// Question is which open item the theme answers.
	Question OpenQuestion
	// Summary paraphrases the paper's description of the theme.
	Summary string
	// Weight is the relative frequency used by the generator; the
	// ordering of weights within a question follows the order in which
	// the paper lists the themes ("Many students…", "Several…", "Some…",
	// "A few…").
	Weight float64
}

// Themes returns the taxonomy extracted from §V-A.1 and §V-A.2.
func Themes() []Theme {
	return []Theme{
		// Most interesting thing learned (§V-A.1).
		{"parallel-operation", MostInteresting, "better understood how parallel computing operates; more processors do not always mean more efficiency", 10},
		{"diminishing-returns", MostInteresting, "excessive parallelization leads to resource contention and even slowdowns", 8},
		{"hands-on-visualization", MostInteresting, "the hands-on activity made parallel computing visible and fun", 8},
		{"workload-distribution", MostInteresting, "workload distribution, task synchronization, and coordination challenges", 6},
		{"planning-complexity", MostInteresting, "effective parallelism requires careful planning and task allocation", 5},
		{"already-knew", MostInteresting, "already familiar with parallel computing concepts", 2},
		{"apply-to-programming", MostInteresting, "interested in applying the ideas to programming", 2},
		{"teamwork-analogy", MostInteresting, "teamwork parallels multiprocessor computing", 3},
		// Suggested improvements (§V-A.2).
		{"better-tools", Improvements, "better quality crayons or markers to avoid breakage", 9},
		{"restructure-activity", Improvements, "more engaging tasks, more problem-solving, or integrated coding exercises", 6},
		{"shorter", Improvements, "make the activity shorter to avoid redundancy", 4},
		{"clearer-instructions", Improvements, "clearer instructions, especially on pipelining and parallel processing connections", 6},
		{"introduce-vocabulary", Improvements, "introduce key vocabulary during the activity", 3},
		{"logistics", Improvements, "larger paper, better classroom setup, better-organized group work", 4},
		{"competition", Improvements, "add a competitive element such as leaderboards or timed challenges", 3},
		{"no-changes", Improvements, "the activity worked well as is", 4},
	}
}

// ThemesFor filters the taxonomy by question.
func ThemesFor(q OpenQuestion) []Theme {
	var out []Theme
	for _, t := range Themes() {
		if t.Question == q {
			out = append(out, t)
		}
	}
	return out
}

// Comment is one theme-tagged free-text response.
type Comment struct {
	Institution Institution
	Question    OpenQuestion
	ThemeID     string
	Text        string
}

// GenerateComments draws n theme-tagged comments per open question for an
// institution, with theme frequencies proportional to the taxonomy
// weights. Institutions that used crayons (per §IV, the crayon site "got
// many complaints") have their better-tools weight tripled when
// usedCrayons is set.
func GenerateComments(inst Institution, n int, usedCrayons bool, stream *rng.Stream) ([]Comment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("survey: %d comments", n)
	}
	if stream == nil {
		stream = rng.New(0)
	}
	var out []Comment
	for _, q := range []OpenQuestion{MostInteresting, Improvements} {
		themes := ThemesFor(q)
		weights := make([]float64, len(themes))
		for i, th := range themes {
			weights[i] = th.Weight
			if usedCrayons && th.ID == "better-tools" {
				weights[i] *= 3
			}
		}
		qs := stream.SplitLabeled(string(inst) + "/" + q.String())
		for i := 0; i < n; i++ {
			th := themes[qs.Pick(weights)]
			out = append(out, Comment{
				Institution: inst,
				Question:    q,
				ThemeID:     th.ID,
				Text:        th.Summary,
			})
		}
	}
	return out, nil
}

// ThemeCount is one row of the qualitative tally.
type ThemeCount struct {
	ThemeID string
	Count   int
}

// TallyThemes counts theme occurrences for one question, most frequent
// first (stable by theme ID on ties) — the ordering the paper's summary
// prose follows.
func TallyThemes(comments []Comment, q OpenQuestion) []ThemeCount {
	counts := map[string]int{}
	for _, c := range comments {
		if c.Question == q {
			counts[c.ThemeID]++
		}
	}
	out := make([]ThemeCount, 0, len(counts))
	for id, n := range counts {
		out = append(out, ThemeCount{ThemeID: id, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ThemeID < out[j].ThemeID
	})
	return out
}
