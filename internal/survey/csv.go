package survey

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV interchange so the analysis pipeline runs on real classroom data,
// not just synthetic cohorts. The format is one row per student, one
// column per question ID, values 1–5, blank for questions the institution
// did not ask:
//
//	institution,student,had-fun,focused,...
//	HPU,1,4,5,...
//
// Mixed-institution files are supported; ReadCohortsCSV splits them.

// WriteCohortCSV writes one cohort's responses.
func WriteCohortCSV(w io.Writer, c *Cohort) error {
	if c == nil || c.N <= 0 {
		return fmt.Errorf("survey: nil or empty cohort")
	}
	cw := csv.NewWriter(w)
	header := []string{"institution", "student"}
	var asked []string
	for _, q := range Instrument() {
		if _, ok := c.Responses[q.ID]; ok {
			asked = append(asked, q.ID)
		}
	}
	if len(asked) == 0 {
		return fmt.Errorf("survey: cohort %s answered no questions; nothing to export", c.Institution)
	}
	header = append(header, asked...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for s := 0; s < c.N; s++ {
		row := []string{string(c.Institution), strconv.Itoa(s + 1)}
		for _, q := range asked {
			resp := c.Responses[q]
			if s >= len(resp) {
				return fmt.Errorf("survey: question %q has %d responses for %d students", q, len(resp), c.N)
			}
			row = append(row, strconv.Itoa(resp[s]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCohortsCSV reads a (possibly mixed-institution) response file into
// per-institution cohorts. Unknown question columns are rejected; blank
// cells mean "not asked" and must be blank for every student of that
// institution.
func ReadCohortsCSV(r io.Reader) (map[Institution]*Cohort, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("survey: csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("survey: csv needs a header and at least one student")
	}
	header := records[0]
	if len(header) < 3 || header[0] != "institution" || header[1] != "student" {
		return nil, fmt.Errorf("survey: csv header must start with institution,student")
	}
	questions := header[2:]
	for _, q := range questions {
		if _, err := QuestionByID(q); err != nil {
			return nil, err
		}
	}
	type rawCohort struct {
		responses map[string][]int
		n         int
	}
	raw := map[Institution]*rawCohort{}
	for li, row := range records[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("survey: csv row %d has %d fields, want %d", li+2, len(row), len(header))
		}
		inst := Institution(row[0])
		rc, ok := raw[inst]
		if !ok {
			rc = &rawCohort{responses: map[string][]int{}}
			raw[inst] = rc
		}
		rc.n++
		for qi, q := range questions {
			cell := row[2+qi]
			if cell == "" {
				if len(rc.responses[q]) > 0 {
					return nil, fmt.Errorf("survey: csv row %d: %s answered %q earlier but is blank now", li+2, inst, q)
				}
				continue
			}
			v, err := strconv.Atoi(cell)
			if err != nil || v < 1 || v > 5 {
				return nil, fmt.Errorf("survey: csv row %d: bad response %q for %q", li+2, cell, q)
			}
			if len(rc.responses[q]) != rc.n-1 {
				return nil, fmt.Errorf("survey: csv row %d: %s has inconsistent blanks for %q", li+2, inst, q)
			}
			rc.responses[q] = append(rc.responses[q], v)
		}
	}
	out := map[Institution]*Cohort{}
	for inst, rc := range raw {
		c := &Cohort{Institution: inst, N: rc.n, Responses: map[string][]int{}}
		for q, resp := range rc.responses {
			if len(resp) != rc.n {
				return nil, fmt.Errorf("survey: %s: %q answered by %d of %d students", inst, q, len(resp), rc.n)
			}
			c.Responses[q] = resp
		}
		out[inst] = c
	}
	return out, nil
}
