package survey

import (
	"testing"

	"flagsim/internal/rng"
)

func TestCategoryAlphaComputes(t *testing.T) {
	cohorts, err := GenerateStudy(PaperTargets(), rng.New(81))
	if err != nil {
		t.Fatal(err)
	}
	// Knox asked everything; all three categories have alphas.
	for _, cat := range []Category{Engagement, Understanding, Instructor} {
		a, err := CategoryAlpha(cohorts[Knox], cat)
		if err != nil {
			t.Fatalf("%v: %v", cat, err)
		}
		if a < -1.001 || a > 1.001 {
			t.Fatalf("%v alpha %v out of range", cat, a)
		}
	}
}

func TestCategoryAlphaNAHandling(t *testing.T) {
	cohorts, err := GenerateStudy(PaperTargets(), rng.New(82))
	if err != nil {
		t.Fatal(err)
	}
	// Webster asked only one instructor item: alpha undefined.
	if _, err := CategoryAlpha(cohorts[Webster], Instructor); err == nil {
		t.Fatal("Webster instructor alpha should be undefined (1 item)")
	}
	// But its engagement scale works.
	if _, err := CategoryAlpha(cohorts[Webster], Engagement); err != nil {
		t.Fatal(err)
	}
}

func TestStudyAlphas(t *testing.T) {
	cohorts, err := GenerateStudy(PaperTargets(), rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	alphas := StudyAlphas(cohorts, Instructor)
	if _, ok := alphas[Webster]; ok {
		t.Fatal("Webster must be skipped for instructor alpha")
	}
	if len(alphas) != 5 {
		t.Fatalf("%d institutions with instructor alpha, want 5", len(alphas))
	}
	alphas = StudyAlphas(cohorts, Engagement)
	if len(alphas) != 6 {
		t.Fatalf("%d institutions with engagement alpha, want 6", len(alphas))
	}
}

func TestCategoryAlphaValidation(t *testing.T) {
	if _, err := CategoryAlpha(nil, Engagement); err == nil {
		t.Fatal("nil cohort should error")
	}
}
