package survey

import (
	"testing"

	"flagsim/internal/rng"
)

func TestThemesTaxonomy(t *testing.T) {
	themes := Themes()
	if len(themes) != 16 {
		t.Fatalf("%d themes", len(themes))
	}
	seen := map[string]bool{}
	for _, th := range themes {
		if th.ID == "" || th.Summary == "" || th.Weight <= 0 {
			t.Fatalf("bad theme %+v", th)
		}
		if seen[th.ID] {
			t.Fatalf("duplicate theme %q", th.ID)
		}
		seen[th.ID] = true
	}
	if len(ThemesFor(MostInteresting)) != 8 || len(ThemesFor(Improvements)) != 8 {
		t.Fatal("theme split wrong")
	}
}

func TestGenerateCommentsShape(t *testing.T) {
	comments, err := GenerateComments(Knox, 30, false, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// 30 per open question.
	if len(comments) != 60 {
		t.Fatalf("%d comments", len(comments))
	}
	valid := map[string]OpenQuestion{}
	for _, th := range Themes() {
		valid[th.ID] = th.Question
	}
	for _, c := range comments {
		q, ok := valid[c.ThemeID]
		if !ok {
			t.Fatalf("unknown theme %q", c.ThemeID)
		}
		if q != c.Question {
			t.Fatalf("theme %q tagged with wrong question", c.ThemeID)
		}
		if c.Text == "" {
			t.Fatal("empty comment text")
		}
	}
}

func TestCrayonSiteComplainsMore(t *testing.T) {
	// With tripled weight, better-tools should lead the improvements
	// tally at a crayon site far more often than not.
	crayonWins, plainWins := 0, 0
	for seed := uint64(0); seed < 20; seed++ {
		crayon, err := GenerateComments(TNTech, 40, true, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := GenerateComments(TNTech, 40, false, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if TallyThemes(crayon, Improvements)[0].ThemeID == "better-tools" {
			crayonWins++
		}
		if TallyThemes(plain, Improvements)[0].ThemeID == "better-tools" {
			plainWins++
		}
	}
	if crayonWins < 15 {
		t.Fatalf("better-tools led only %d/20 crayon tallies", crayonWins)
	}
	if crayonWins <= plainWins {
		t.Fatalf("crayon site (%d) should complain at least as often as marker site (%d)", crayonWins, plainWins)
	}
}

func TestTallyThemesOrdering(t *testing.T) {
	comments := []Comment{
		{Question: Improvements, ThemeID: "shorter"},
		{Question: Improvements, ThemeID: "better-tools"},
		{Question: Improvements, ThemeID: "better-tools"},
		{Question: MostInteresting, ThemeID: "already-knew"},
	}
	tally := TallyThemes(comments, Improvements)
	if len(tally) != 2 {
		t.Fatalf("%d rows", len(tally))
	}
	if tally[0].ThemeID != "better-tools" || tally[0].Count != 2 {
		t.Fatalf("top row %+v", tally[0])
	}
	// The MostInteresting comment must not leak into this tally.
	for _, row := range tally {
		if row.ThemeID == "already-knew" {
			t.Fatal("question filter failed")
		}
	}
}

func TestGenerateCommentsValidation(t *testing.T) {
	if _, err := GenerateComments(Knox, 0, false, rng.New(1)); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestGenerateCommentsDeterministic(t *testing.T) {
	a, _ := GenerateComments(HPU, 10, false, rng.New(7))
	b, _ := GenerateComments(HPU, 10, false, rng.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("comment %d differs", i)
		}
	}
}
