package survey

import (
	"fmt"

	"flagsim/internal/stats"
)

// Comparison is a Mann–Whitney U comparison of one question's responses
// between two institutions — the cross-site trend analysis the paper's
// future work proposes over Tables I–III.
type Comparison struct {
	Question string
	A, B     Institution
	Result   stats.MannWhitneyResult
	MedianA  float64
	MedianB  float64
}

// CompareInstitutions tests one question between two institutions'
// cohorts. It errors if either cohort did not ask the question (the
// paper's NA cells).
func CompareInstitutions(cohorts map[Institution]*Cohort, question string, a, b Institution) (Comparison, error) {
	ca, ok := cohorts[a]
	if !ok {
		return Comparison{}, fmt.Errorf("survey: no cohort for %s", a)
	}
	cb, ok := cohorts[b]
	if !ok {
		return Comparison{}, fmt.Errorf("survey: no cohort for %s", b)
	}
	ra, ok := ca.Responses[question]
	if !ok {
		return Comparison{}, fmt.Errorf("survey: %s did not ask %q", a, question)
	}
	rb, ok := cb.Responses[question]
	if !ok {
		return Comparison{}, fmt.Errorf("survey: %s did not ask %q", b, question)
	}
	res, err := stats.MannWhitneyU(stats.LikertToFloats(ra), stats.LikertToFloats(rb))
	if err != nil {
		return Comparison{}, err
	}
	ma, _ := ca.Median(question)
	mb, _ := cb.Median(question)
	return Comparison{
		Question: question, A: a, B: b,
		Result: res, MedianA: ma, MedianB: mb,
	}, nil
}

// CompareAllPairs runs the comparison for every institution pair that
// asked the question, in column order.
func CompareAllPairs(cohorts map[Institution]*Cohort, question string) ([]Comparison, error) {
	insts := Institutions()
	var out []Comparison
	for i := 0; i < len(insts); i++ {
		for j := i + 1; j < len(insts); j++ {
			c, err := CompareInstitutions(cohorts, question, insts[i], insts[j])
			if err != nil {
				// NA cells are expected; skip those pairs.
				continue
			}
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("survey: question %q asked nowhere", question)
	}
	return out, nil
}
