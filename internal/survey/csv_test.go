package survey

import (
	"bytes"
	"strings"
	"testing"

	"flagsim/internal/rng"
)

func TestCohortCSVRoundTrip(t *testing.T) {
	cohorts, err := GenerateStudy(PaperTargets(), rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range Institutions() {
		c := cohorts[inst]
		var buf bytes.Buffer
		if err := WriteCohortCSV(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCohortsCSV(&buf)
		if err != nil {
			t.Fatalf("%s: %v", inst, err)
		}
		bc, ok := back[inst]
		if !ok {
			t.Fatalf("%s lost in roundtrip", inst)
		}
		if bc.N != c.N {
			t.Fatalf("%s: N %d != %d", inst, bc.N, c.N)
		}
		for q, want := range c.Responses {
			got := bc.Responses[q]
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d responses, want %d", inst, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s student %d: %d != %d", inst, q, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCSVMixedInstitutions(t *testing.T) {
	src := strings.Join([]string{
		"institution,student,had-fun,focused",
		"HPU,1,4,5",
		"HPU,2,4,4",
		"Knox,1,3,4",
	}, "\n")
	cohorts, err := ReadCohortsCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cohorts) != 2 {
		t.Fatalf("%d institutions", len(cohorts))
	}
	if cohorts["HPU"].N != 2 || cohorts["Knox"].N != 1 {
		t.Fatalf("sizes %d/%d", cohorts["HPU"].N, cohorts["Knox"].N)
	}
	m, ok := cohorts["HPU"].Median("had-fun")
	if !ok || m != 4.0 {
		t.Fatalf("HPU had-fun median %v", m)
	}
}

func TestCSVBlankMeansNotAsked(t *testing.T) {
	src := strings.Join([]string{
		"institution,student,had-fun,instructor-effort",
		"Webster,1,5,",
		"Webster,2,5,",
	}, "\n")
	cohorts, err := ReadCohortsCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c := cohorts["Webster"]
	if _, ok := c.Responses["instructor-effort"]; ok {
		t.Fatal("blank column should mean not asked")
	}
	if _, ok := c.Responses["had-fun"]; !ok {
		t.Fatal("answered column lost")
	}
}

func TestCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"institution,student,had-fun",          // no rows
		"student,institution,had-fun\nHPU,1,4", // wrong header order
		"institution,student,bogus-question\nHPU,1,4",  // unknown question
		"institution,student,had-fun\nHPU,1,7",         // out-of-scale
		"institution,student,had-fun\nHPU,1,x",         // non-numeric
		"institution,student,had-fun\nHPU,1,4\nHPU,2,", // inconsistent blanks
		"institution,student,had-fun,focused\nHPU,1,4", // short row (csv lib catches)
	}
	for _, src := range cases {
		if _, err := ReadCohortsCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCohortsCSV(%q) should fail", src)
		}
	}
}

func TestCSVTablesFromImportedData(t *testing.T) {
	// End-to-end with "real" data: write the synthetic study to CSV,
	// read it back, and rebuild Tables I–III — still exact.
	cohorts, err := GenerateStudy(PaperTargets(), rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	imported := map[Institution]*Cohort{}
	for inst, c := range cohorts {
		var buf bytes.Buffer
		if err := WriteCohortCSV(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCohortsCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		imported[inst] = back[inst]
	}
	t1, t2, t3, err := BuildPaperTables(imported)
	if err != nil {
		t.Fatal(err)
	}
	targets := PaperTargets()
	for _, table := range []*Table{t1, t2, t3} {
		if bad := table.VerifyAgainstTargets(targets); len(bad) != 0 {
			t.Fatalf("imported-data tables drifted: %v", bad)
		}
	}
}

func TestWriteCohortCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCohortCSV(&buf, nil); err == nil {
		t.Fatal("nil cohort should error")
	}
}
