package sched

import (
	"testing"
	"testing/quick"

	"flagsim/internal/flagspec"
)

func TestAllSchedulersReproduceAllFlags(t *testing.T) {
	for _, f := range flagspec.All() {
		w, h := f.DefaultW, f.DefaultH
		plans := map[string]func() (interface{ Verify(*flagspec.Flag) error }, error){
			"lpt": func() (interface{ Verify(*flagspec.Flag) error }, error) {
				return LPT(f, w, h, 3)
			},
			"chunked": func() (interface{ Verify(*flagspec.Flag) error }, error) {
				return Chunked(f, w, h, 3, 8)
			},
			"guided": func() (interface{ Verify(*flagspec.Flag) error }, error) {
				return Guided(f, w, h, 3)
			},
		}
		for name, build := range plans {
			p, err := build()
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, name, err)
			}
			if err := p.Verify(f); err != nil {
				t.Errorf("%s/%s: %v", f.Name, name, err)
			}
		}
	}
}

func TestLPTBalancesBetterThanNaiveStripes(t *testing.T) {
	// Sweden's cross layer is much smaller than its field; LPT's row
	// regions should spread the work nearly evenly.
	f := flagspec.Sweden
	plan, err := LPT(f, f.DefaultW, f.DefaultH, 4)
	if err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(plan); imb > 0.30 {
		t.Fatalf("LPT imbalance %.2f too high", imb)
	}
}

func TestGuidedBalancesTightly(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := Guided(f, f.DefaultW, f.DefaultH, 4)
	if err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(plan); imb > 0.5 {
		t.Fatalf("guided imbalance %.2f", imb)
	}
}

func TestChunkedChunkSizeEffect(t *testing.T) {
	f := flagspec.Mauritius
	small, err := Chunked(f, f.DefaultW, f.DefaultH, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Chunked(f, f.DefaultW, f.DefaultH, 4, 48)
	if err != nil {
		t.Fatal(err)
	}
	if Imbalance(small) > Imbalance(big) {
		t.Fatalf("unit chunks (%.2f) should balance at least as well as huge chunks (%.2f)",
			Imbalance(small), Imbalance(big))
	}
}

func TestParameterValidation(t *testing.T) {
	f := flagspec.Mauritius
	if _, err := LPT(f, 12, 8, 0); err == nil {
		t.Fatal("LPT with 0 procs should error")
	}
	if _, err := Chunked(f, 12, 8, 2, 0); err == nil {
		t.Fatal("Chunked with chunk 0 should error")
	}
	if _, err := Guided(f, 12, 8, -1); err == nil {
		t.Fatal("Guided with negative procs should error")
	}
}

func TestTasksOrderedByLayer(t *testing.T) {
	f := flagspec.GreatBritain
	p, err := LPT(f, f.DefaultW, f.DefaultH, 4)
	if err != nil {
		t.Fatal(err)
	}
	for pi, tasks := range p.PerProc {
		for i := 1; i < len(tasks); i++ {
			if tasks[i].Layer < tasks[i-1].Layer {
				t.Fatalf("proc %d tasks not layer-ordered at %d", pi, i)
			}
		}
	}
}

func TestImbalanceProperties(t *testing.T) {
	check := func(pRaw, chunkRaw uint8) bool {
		f := flagspec.Mauritius
		p := int(pRaw%6) + 1
		chunk := int(chunkRaw%16) + 1
		plan, err := Chunked(f, f.DefaultW, f.DefaultH, p, chunk)
		if err != nil {
			return false
		}
		imb := Imbalance(plan)
		return imb >= 0 && plan.Verify(f) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
