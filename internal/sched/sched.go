// Package sched provides load-balancing schedulers that build workplans
// beyond the paper's hand-assigned scenarios: LPT (longest processing time
// first) static balancing, fixed-size chunk self-scheduling, and guided
// self-scheduling with geometrically shrinking chunks.
//
// These are the standard PDC scheduling disciplines the activity's
// discussion leads toward ("how having extra resources would reduce the
// contention", load balancing in the Webster variation); they drive the
// E19 decomposition ablation against the scenario decompositions.
//
// All schedulers operate on estimated unit cost per cell (every cell costs
// the same a priori, as in the classroom), produce workplan.Plan values,
// and inherit the plan Verify/Validate oracles.
package sched

import (
	"fmt"
	"sort"

	"flagsim/internal/flagspec"
	"flagsim/internal/geom"
	"flagsim/internal/grid"
	"flagsim/internal/workplan"
)

// region is a contiguous run of same-layer cells, the scheduling unit.
type region struct {
	layer int
	cells []geom.Pt
}

// regionsOf splits each layer's cells into row runs — the natural "color
// this row of the stripe" units students actually divide work into.
func regionsOf(f *flagspec.Flag, w, h int) []region {
	layerCells := grid.LayerCells(f, w, h)
	var out []region
	for li, cells := range layerCells {
		byRow := make(map[int][]geom.Pt)
		var rows []int
		for _, c := range cells {
			if _, ok := byRow[c.Y]; !ok {
				rows = append(rows, c.Y)
			}
			byRow[c.Y] = append(byRow[c.Y], c)
		}
		sort.Ints(rows)
		for _, y := range rows {
			out = append(out, region{layer: li, cells: byRow[y]})
		}
	}
	return out
}

func buildPlan(f *flagspec.Flag, w, h int, strategy string, perProc [][]workplan.Task) (*workplan.Plan, error) {
	layerCells := grid.LayerCells(f, w, h)
	counts := make([]int, len(layerCells))
	for i, cells := range layerCells {
		counts[i] = len(cells)
	}
	deps := make([][]int, len(f.Layers))
	index := make(map[string]int, len(f.Layers))
	for i, l := range f.Layers {
		index[l.Name] = i
	}
	overlaps := f.Overlaps(w, h)
	for i, l := range f.Layers {
		set := map[int]bool{}
		for _, d := range l.DependsOn {
			set[index[d]] = true
		}
		for _, j := range overlaps[i] {
			set[j] = true
		}
		var ds []int
		for d := range set {
			ds = append(ds, d)
		}
		sort.Ints(ds)
		deps[i] = ds
	}
	plan := &workplan.Plan{
		FlagName: f.Name, W: w, H: h,
		Strategy:       strategy,
		PerProc:        perProc,
		LayerDeps:      deps,
		LayerCellCount: counts,
		Overpainted:    true,
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// LPT assigns row regions to p processors longest-first onto the least
// loaded processor — the classic static balancing heuristic. Within each
// processor, tasks are ordered by layer so dependencies remain
// satisfiable.
func LPT(f *flagspec.Flag, w, h, p int) (*workplan.Plan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: %d processors", p)
	}
	regions := regionsOf(f, w, h)
	// Stable sort: longest first, then layer, then first cell for
	// determinism.
	sort.SliceStable(regions, func(a, b int) bool {
		if len(regions[a].cells) != len(regions[b].cells) {
			return len(regions[a].cells) > len(regions[b].cells)
		}
		return regions[a].layer < regions[b].layer
	})
	load := make([]int, p)
	perProc := make([][]workplan.Task, p)
	for _, r := range regions {
		// Least-loaded processor, lowest index on ties.
		pi := 0
		for i := 1; i < p; i++ {
			if load[i] < load[pi] {
				pi = i
			}
		}
		for _, c := range r.cells {
			perProc[pi] = append(perProc[pi], workplan.Task{
				Cell: c, Color: f.Layers[r.layer].Color, Layer: r.layer,
			})
		}
		load[pi] += len(r.cells)
	}
	for pi := range perProc {
		sortTasks(perProc[pi])
	}
	return buildPlan(f, w, h, fmt.Sprintf("lpt(p=%d)", p), perProc)
}

// Chunked models fixed-size chunk self-scheduling: an idle processor takes
// the next chunk of chunk cells from the global reading-order stream. With
// unit cost estimates this reduces to round-robin chunk dealing, which is
// exactly how chunk self-scheduling behaves when all workers run at the
// same speed.
func Chunked(f *flagspec.Flag, w, h, p, chunk int) (*workplan.Plan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: %d processors", p)
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("sched: chunk size %d", chunk)
	}
	stream := taskStream(f, w, h)
	perProc := make([][]workplan.Task, p)
	for i := 0; i < len(stream); i += chunk {
		end := i + chunk
		if end > len(stream) {
			end = len(stream)
		}
		pi := (i / chunk) % p
		perProc[pi] = append(perProc[pi], stream[i:end]...)
	}
	for pi := range perProc {
		sortTasks(perProc[pi])
	}
	return buildPlan(f, w, h, fmt.Sprintf("chunked(p=%d,chunk=%d)", p, chunk), perProc)
}

// Guided models guided self-scheduling: each grab takes
// ceil(remaining / p) cells, so chunks shrink geometrically and the tail
// is finely balanced.
func Guided(f *flagspec.Flag, w, h, p int) (*workplan.Plan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: %d processors", p)
	}
	stream := taskStream(f, w, h)
	perProc := make([][]workplan.Task, p)
	load := make([]int, p)
	i := 0
	for i < len(stream) {
		remaining := len(stream) - i
		take := (remaining + p - 1) / p
		if take < 1 {
			take = 1
		}
		// The next grab goes to the first idle worker — with equal
		// speeds, the least-loaded processor (lowest index on ties).
		pi := 0
		for j := 1; j < p; j++ {
			if load[j] < load[pi] {
				pi = j
			}
		}
		perProc[pi] = append(perProc[pi], stream[i:i+take]...)
		load[pi] += take
		i += take
	}
	for pi := range perProc {
		sortTasks(perProc[pi])
	}
	return buildPlan(f, w, h, fmt.Sprintf("guided(p=%d)", p), perProc)
}

// taskStream flattens the flag into layer-then-reading-order tasks.
func taskStream(f *flagspec.Flag, w, h int) []workplan.Task {
	layerCells := grid.LayerCells(f, w, h)
	var out []workplan.Task
	for li, cells := range layerCells {
		for _, c := range cells {
			out = append(out, workplan.Task{Cell: c, Color: f.Layers[li].Color, Layer: li})
		}
	}
	return out
}

// sortTasks orders a processor's tasks by layer (dependency safety), then
// reading order.
func sortTasks(tasks []workplan.Task) {
	sort.SliceStable(tasks, func(a, b int) bool {
		if tasks[a].Layer != tasks[b].Layer {
			return tasks[a].Layer < tasks[b].Layer
		}
		if tasks[a].Cell.Y != tasks[b].Cell.Y {
			return tasks[a].Cell.Y < tasks[b].Cell.Y
		}
		return tasks[a].Cell.X < tasks[b].Cell.X
	})
}

// Imbalance returns (max load − min load) / mean load over processors
// with any tasks, a dimensionless balance score for comparing schedulers.
func Imbalance(p *workplan.Plan) float64 {
	if len(p.PerProc) == 0 {
		return 0
	}
	minL, maxL, sum, n := -1, 0, 0, 0
	for _, tasks := range p.PerProc {
		l := len(tasks)
		sum += l
		n++
		if l > maxL {
			maxL = l
		}
		if minL == -1 || l < minL {
			minL = l
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(n)
	return float64(maxL-minL) / mean
}
