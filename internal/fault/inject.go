package fault

import (
	"time"

	"flagsim/internal/implement"
	"flagsim/internal/sim"
	"flagsim/internal/workplan"
)

// Fault class tags mixed into the decision hash so the same coordinates
// draw independently for each fault class.
const (
	classDegrade uint64 = 0xd3a1
	classBreak   uint64 = 0xb21c
	classRepaint uint64 = 0x4e9a
	classHandoff uint64 = 0x8f07
	classLost    uint64 = 0x105e
)

// Injector is the compiled form of a Plan: a stateless, goroutine-safe
// sim.FaultInjector whose every decision is a pure hash of the plan seed
// and stable coordinates. It also implements sim.UnsoundInjector, but
// LosePaint only ever fires when the plan's LostPaintProb is set.
type Injector struct {
	plan Plan // copied; the injector never aliases caller memory
}

// New compiles a plan. It returns (nil, nil) for a nil or Zero plan so
// callers can assign the result to a sim.FaultInjector interface without
// producing a non-nil interface wrapping a nil pointer:
//
//	inj, err := fault.New(plan)
//	if inj != nil { cfg.Faults = inj }
func New(p *Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Zero() {
		return nil, nil
	}
	return &Injector{plan: *p}, nil
}

// Plan returns a copy of the compiled plan.
func (in *Injector) Plan() Plan { return in.plan }

// StallUntil implements sim.FaultInjector: it returns the fixed point of
// extending through every stall window covering (pi, t), or now when none
// covers it — overlapping and back-to-back windows chain into one stall.
// Windows are a linear scan — plans carry a handful of stalls, not
// thousands — and the loop terminates because until only ever grows and
// each window can extend it at most once.
func (in *Injector) StallUntil(pi int, now time.Duration) time.Duration {
	until := now
	for extended := true; extended; {
		extended = false
		for _, s := range in.plan.Stalls {
			if s.Proc != -1 && s.Proc != pi {
				continue
			}
			if end := s.At + s.For; s.At <= until && until < end {
				until = end
				extended = true
			}
		}
	}
	return until
}

// ServiceFactor implements sim.FaultInjector. Degradation is keyed on the
// cell, not the processor, so the same cells are slow under every
// executor.
func (in *Injector) ServiceFactor(pi int, task workplan.Task) float64 {
	if in.plan.DegradeProb > 0 && in.hit(classDegrade, task, in.plan.DegradeProb) {
		return in.plan.DegradeFactor
	}
	return 1
}

// ForcedBreak implements sim.FaultInjector.
func (in *Injector) ForcedBreak(pi int, task workplan.Task) bool {
	return in.plan.BreakProb > 0 && in.hit(classBreak, task, in.plan.BreakProb)
}

// HandoffDelay implements sim.FaultInjector. Handoffs are keyed on the
// implement and the (quantized) virtual time of the acquisition.
func (in *Injector) HandoffDelay(pi int, im *implement.Implement, at time.Duration) time.Duration {
	if in.plan.HandoffDelayProb == 0 {
		return 0
	}
	// Quantize to milliseconds so float jitter in upstream timing math
	// cannot flip the decision between otherwise-identical runs.
	h := mix(in.plan.Seed ^ classHandoff)
	h = mix(h ^ uint64(im.ID))
	h = mix(h ^ uint64(at/time.Millisecond))
	if toProb(h) < in.plan.HandoffDelayProb {
		return in.plan.HandoffDelay
	}
	return 0
}

// PaintFails implements sim.FaultInjector: marked cells fail attempt 0
// only, so every cell terminates after at most one repaint.
func (in *Injector) PaintFails(pi int, task workplan.Task, attempt int) bool {
	return attempt == 0 && in.plan.RepaintProb > 0 &&
		in.hit(classRepaint, task, in.plan.RepaintProb)
}

// LosePaint implements sim.UnsoundInjector — the oracle self-test
// backdoor. See Plan.LostPaintProb.
func (in *Injector) LosePaint(pi int, task workplan.Task) bool {
	return in.plan.LostPaintProb > 0 && in.hit(classLost, task, in.plan.LostPaintProb)
}

// hit makes a deterministic per-cell Bernoulli draw keyed on
// (seed, class, layer, cell) — deliberately NOT on pi, so cell marking is
// executor- and processor-independent.
func (in *Injector) hit(class uint64, task workplan.Task, prob float64) bool {
	h := mix(in.plan.Seed ^ class)
	h = mix(h ^ uint64(task.Layer))
	h = mix(h ^ uint64(task.Cell.X)<<32 ^ uint64(task.Cell.Y))
	return toProb(h) < prob
}

// mix is the SplitMix64 finalizer (same constants as internal/rng), used
// here as a stateless hash rather than a sequential stream.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// toProb maps a hash to a uniform float64 in [0, 1).
func toProb(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Compile-time interface checks.
var (
	_ sim.FaultInjector   = (*Injector)(nil)
	_ sim.UnsoundInjector = (*Injector)(nil)
)
