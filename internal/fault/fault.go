// Package fault provides seeded, hashable, deterministic fault plans for
// the simulator. A Plan is a declarative description of what goes wrong
// during a run — processors stalling mid-activity, implements degraded or
// breaking outright, sluggish handoffs, cells that need a second coat —
// and New compiles it into a sim.FaultInjector that all three executors
// (static, dynamic, steal) consume through the same engine hook.
//
// Determinism is the point. Every fault decision is a pure hash of
// (plan seed, fault class, stable task/implement coordinates), never of
// processor identity or arrival order, so:
//
//   - the same Plan produces byte-identical Results run after run;
//   - cell-keyed faults (degradation, repaints, lost paints) mark the
//     same cells regardless of which executor — or which processor —
//     happens to paint them, which is what lets check.Diff compare
//     executors under the same plan;
//   - plans are content-addressable: Key() feeds sweep.Spec hashing so a
//     fault-bearing spec memoizes separately from its fault-free twin.
//
// The injector carries no mutable state, so one value is safe to share
// across concurrently executing pooled runs.
package fault

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stall is one processor stall window: processor Proc does nothing for
// For starting at At (virtual time). Proc == -1 stalls every processor.
type Stall struct {
	Proc int           `json:"proc"`
	At   time.Duration `json:"at"`
	For  time.Duration `json:"for"`
}

// Plan is a declarative fault specification. The zero value is a valid
// "no faults" plan; New(nil) and New(&Plan{}) both yield a nil injector.
//
// All probabilities are per-decision (per cell paint, per handoff) and
// resolved by stateless hashing from Seed — see the package comment.
type Plan struct {
	// Seed drives every probabilistic fault decision. Two plans that
	// differ only in Seed mark different cells.
	Seed uint64 `json:"seed"`

	// Stalls lists explicit processor stall windows.
	Stalls []Stall `json:"stalls,omitempty"`

	// DegradeProb marks each cell with probability DegradeProb; a marked
	// cell's service time is multiplied by DegradeFactor (must be >= 1:
	// faults slow runs down, they never speed them up).
	DegradeProb   float64 `json:"degrade_prob,omitempty"`
	DegradeFactor float64 `json:"degrade_factor,omitempty"`

	// BreakProb forces an implement breakage (repair delay) on each cell
	// with the given probability, over and above the implement's own
	// stochastic breakage model.
	BreakProb float64 `json:"break_prob,omitempty"`

	// RepaintProb marks each cell to fail its first paint attempt,
	// forcing one full repaint. Marked cells fail only attempt 0, so
	// every cell still terminates.
	RepaintProb float64 `json:"repaint_prob,omitempty"`

	// HandoffDelayProb delays each implement handoff (acquisition after
	// the first) with the given probability, adding HandoffDelay to the
	// pickup time.
	HandoffDelayProb float64       `json:"handoff_delay_prob,omitempty"`
	HandoffDelay     time.Duration `json:"handoff_delay,omitempty"`

	// LostPaintProb is the UNSOUND oracle-self-test mode: each cell's
	// grid write is dropped with the given probability while the task
	// still reports complete — a seeded lost-update bug. It exists so
	// check.Oracle and check.Diff have a real engine-level corruption to
	// catch; it participates in Key() because it changes results, and it
	// must never appear in a plan used for actual measurement.
	LostPaintProb float64 `json:"lost_paint_prob,omitempty"`
}

// Zero reports whether the plan injects nothing at all.
func (p *Plan) Zero() bool {
	return p == nil || (len(p.Stalls) == 0 &&
		p.DegradeProb == 0 && p.BreakProb == 0 && p.RepaintProb == 0 &&
		p.HandoffDelayProb == 0 && p.LostPaintProb == 0)
}

// Validate rejects plans that could stall time, speed runs up, or loop
// forever. Probabilities must be in [0,1]; durations non-negative;
// DegradeFactor >= 1 when degradation is enabled.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, s := range p.Stalls {
		if s.Proc < -1 {
			return fmt.Errorf("fault: stall %d: proc %d (want >= -1)", i, s.Proc)
		}
		if s.At < 0 || s.For < 0 {
			return fmt.Errorf("fault: stall %d: negative time", i)
		}
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"degrade_prob", p.DegradeProb},
		{"break_prob", p.BreakProb},
		{"repaint_prob", p.RepaintProb},
		{"handoff_delay_prob", p.HandoffDelayProb},
		{"lost_paint_prob", p.LostPaintProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.DegradeProb > 0 && p.DegradeFactor < 1 {
		return fmt.Errorf("fault: degrade_factor %v < 1 (faults must not speed runs up)", p.DegradeFactor)
	}
	if p.HandoffDelayProb > 0 && p.HandoffDelay <= 0 {
		return fmt.Errorf("fault: handoff_delay_prob set but handoff_delay is %v", p.HandoffDelay)
	}
	return nil
}

// canonical returns the versioned canonical encoding hashed by Key. Any
// field that can change a Result must appear here; bump the version tag
// if the encoding ever changes meaning.
func (p *Plan) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-v1|seed=%d", p.Seed)
	// Stall order is semantically irrelevant (the injector takes the max
	// covering window), so sort for a stable key.
	stalls := append([]Stall(nil), p.Stalls...)
	sort.Slice(stalls, func(i, j int) bool {
		if stalls[i].At != stalls[j].At {
			return stalls[i].At < stalls[j].At
		}
		if stalls[i].Proc != stalls[j].Proc {
			return stalls[i].Proc < stalls[j].Proc
		}
		return stalls[i].For < stalls[j].For
	})
	for _, s := range stalls {
		fmt.Fprintf(&b, "|stall=%d,%d,%d", s.Proc, int64(s.At), int64(s.For))
	}
	fmt.Fprintf(&b, "|degrade=%x,%x|break=%x|repaint=%x|handoff=%x,%d|lost=%x",
		p.DegradeProb, p.DegradeFactor, p.BreakProb, p.RepaintProb,
		p.HandoffDelayProb, int64(p.HandoffDelay), p.LostPaintProb)
	return b.String()
}

// Key returns the plan's content address: a SHA-256 over the canonical
// encoding. Equal keys imply identical fault behavior.
func (p *Plan) Key() [32]byte {
	return sha256.Sum256([]byte(p.canonical()))
}

// Label returns a short human-readable summary for report rows and sweep
// labels, e.g. "seed7/stalls2/degrade0.10x3/repaint0.05".
func (p *Plan) Label() string {
	if p.Zero() {
		return "none"
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("seed%d", p.Seed))
	if len(p.Stalls) > 0 {
		parts = append(parts, fmt.Sprintf("stalls%d", len(p.Stalls)))
	}
	if p.DegradeProb > 0 {
		parts = append(parts, fmt.Sprintf("degrade%gx%g", p.DegradeProb, p.DegradeFactor))
	}
	if p.BreakProb > 0 {
		parts = append(parts, fmt.Sprintf("break%g", p.BreakProb))
	}
	if p.RepaintProb > 0 {
		parts = append(parts, fmt.Sprintf("repaint%g", p.RepaintProb))
	}
	if p.HandoffDelayProb > 0 {
		parts = append(parts, fmt.Sprintf("handoff%g@%s", p.HandoffDelayProb, p.HandoffDelay))
	}
	if p.LostPaintProb > 0 {
		parts = append(parts, fmt.Sprintf("UNSOUND-lost%g", p.LostPaintProb))
	}
	return strings.Join(parts, "/")
}

// Preset returns a named fault plan seeded with seed. The presets are the
// -faults command-line vocabulary and the differential suite's standard
// plans:
//
//	none   — no faults (returns a Zero plan)
//	light  — occasional degraded cells and delayed handoffs
//	heavy  — stall windows, frequent degradation, forced breaks, repaints
func Preset(name string, seed uint64) (*Plan, error) {
	switch name {
	case "none":
		return &Plan{Seed: seed}, nil
	case "light":
		return &Plan{
			Seed:             seed,
			DegradeProb:      0.05,
			DegradeFactor:    2.0,
			HandoffDelayProb: 0.10,
			HandoffDelay:     2 * time.Second,
		}, nil
	case "heavy":
		return &Plan{
			Seed: seed,
			Stalls: []Stall{
				{Proc: 0, At: 30 * time.Second, For: 20 * time.Second},
				{Proc: -1, At: 2 * time.Minute, For: 10 * time.Second},
			},
			DegradeProb:      0.15,
			DegradeFactor:    3.0,
			BreakProb:        0.02,
			RepaintProb:      0.05,
			HandoffDelayProb: 0.25,
			HandoffDelay:     4 * time.Second,
		}, nil
	default:
		return nil, fmt.Errorf("fault: unknown preset %q (want one of %s)",
			name, strings.Join(PresetNames(), ", "))
	}
}

// PresetNames lists the Preset vocabulary.
func PresetNames() []string { return []string{"none", "light", "heavy"} }
