package fault

import (
	"encoding/hex"
	"testing"
	"time"

	"flagsim/internal/geom"
	"flagsim/internal/implement"
	"flagsim/internal/palette"
	"flagsim/internal/workplan"
)

func taskAt(x, y, layer int) workplan.Task {
	return workplan.Task{Cell: geom.Pt{X: x, Y: y}, Color: palette.Red, Layer: layer}
}

func newTestImplement(id int) *implement.Implement {
	return &implement.Implement{ID: id, Color: palette.Red, Kind: implement.ThickMarker}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative prob", Plan{DegradeProb: -0.1, DegradeFactor: 2}},
		{"prob above one", Plan{RepaintProb: 1.5}},
		{"degrade factor below one", Plan{DegradeProb: 0.1, DegradeFactor: 0.5}},
		{"handoff prob without delay", Plan{HandoffDelayProb: 0.2}},
		{"stall proc below -1", Plan{Stalls: []Stall{{Proc: -2, At: time.Second, For: time.Second}}}},
		{"negative stall time", Plan{Stalls: []Stall{{Proc: 0, At: -time.Second, For: time.Second}}}},
		{"lost paint prob above one", Plan{LostPaintProb: 2}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.plan)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}

// TestKeyDistinctAndStable pins the content address: every field that
// changes behavior changes the key; stall order does not; and the key
// of a known plan is stable across processes (it is a cache address —
// changing the encoding silently would poison warm sweep caches).
func TestKeyDistinctAndStable(t *testing.T) {
	base := Plan{Seed: 7, DegradeProb: 0.1, DegradeFactor: 2}
	variants := []Plan{
		{Seed: 8, DegradeProb: 0.1, DegradeFactor: 2},
		{Seed: 7, DegradeProb: 0.2, DegradeFactor: 2},
		{Seed: 7, DegradeProb: 0.1, DegradeFactor: 3},
		{Seed: 7, DegradeProb: 0.1, DegradeFactor: 2, BreakProb: 0.1},
		{Seed: 7, DegradeProb: 0.1, DegradeFactor: 2, RepaintProb: 0.1},
		{Seed: 7, DegradeProb: 0.1, DegradeFactor: 2, LostPaintProb: 0.1},
		{Seed: 7, DegradeProb: 0.1, DegradeFactor: 2,
			HandoffDelayProb: 0.1, HandoffDelay: time.Second},
		{Seed: 7, DegradeProb: 0.1, DegradeFactor: 2,
			Stalls: []Stall{{Proc: 0, At: time.Second, For: time.Second}}},
	}
	bk := base.Key()
	seen := map[[32]byte]int{bk: -1}
	for i, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, prev, v)
		}
		seen[k] = i
	}

	a := Plan{Seed: 1, Stalls: []Stall{
		{Proc: 1, At: 2 * time.Second, For: time.Second},
		{Proc: 0, At: time.Second, For: time.Second},
	}}
	b := Plan{Seed: 1, Stalls: []Stall{
		{Proc: 0, At: time.Second, For: time.Second},
		{Proc: 1, At: 2 * time.Second, For: time.Second},
	}}
	if a.Key() != b.Key() {
		t.Error("stall order changed the key; canonical() must sort")
	}

	// Golden address: fails if the canonical encoding ever changes
	// without a version bump.
	k := base.Key()
	const want = "0a4906931d38e4b5f7e2df1b0b8ae05995ffdd43acc31ddfcf3dec6d622494a1"
	if got := hex.EncodeToString(k[:]); got != want {
		t.Errorf("canonical encoding drifted: key %s, want %s (bump fault-v1 if intentional)", got, want)
	}
}

// TestInjectorDeterministicAndCellKeyed verifies decisions are pure
// functions of (seed, cell) — identical across calls and independent of
// the processor index — and that different fault classes mark different
// cell sets.
func TestInjectorDeterministicAndCellKeyed(t *testing.T) {
	inj, err := New(&Plan{Seed: 9, DegradeProb: 0.3, DegradeFactor: 2, RepaintProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	degrade, repaint := 0, 0
	diverged := false
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			task := taskAt(x, y, 0)
			f0 := inj.ServiceFactor(0, task)
			if f0 != inj.ServiceFactor(3, task) {
				t.Fatalf("cell (%d,%d): service factor depends on processor", x, y)
			}
			if f0 != inj.ServiceFactor(0, task) {
				t.Fatalf("cell (%d,%d): service factor not stable", x, y)
			}
			r0 := inj.PaintFails(0, task, 0)
			if r0 != inj.PaintFails(5, task, 0) {
				t.Fatalf("cell (%d,%d): repaint marking depends on processor", x, y)
			}
			if inj.PaintFails(0, task, 1) {
				t.Fatalf("cell (%d,%d): repaint fired on attempt 1; cells must terminate", x, y)
			}
			if f0 != 1 {
				degrade++
			}
			if r0 {
				repaint++
			}
			if (f0 != 1) != r0 {
				diverged = true
			}
		}
	}
	if degrade == 0 || repaint == 0 {
		t.Fatalf("prob 0.3 over 256 cells marked degrade=%d repaint=%d; hashing broken", degrade, repaint)
	}
	if !diverged {
		t.Error("degrade and repaint marked identical cell sets; class tags not mixed in")
	}
}

func TestStallUntil(t *testing.T) {
	inj, err := New(&Plan{Seed: 1, Stalls: []Stall{
		{Proc: 0, At: 10 * time.Second, For: 5 * time.Second},
		{Proc: 0, At: 12 * time.Second, For: 10 * time.Second}, // overlaps: covers to 22s
		{Proc: -1, At: 40 * time.Second, For: 2 * time.Second},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		proc int
		now  time.Duration
		want time.Duration
	}{
		{0, 9 * time.Second, 9 * time.Second},   // before: no stall
		{0, 10 * time.Second, 22 * time.Second}, // overlapping windows chain
		{0, 15 * time.Second, 22 * time.Second},
		{0, 22 * time.Second, 22 * time.Second}, // window end: released
		{1, 15 * time.Second, 15 * time.Second}, // other proc untouched
		{1, 41 * time.Second, 42 * time.Second}, // Proc -1 hits everyone
		{0, 41 * time.Second, 42 * time.Second},
	}
	for _, tc := range cases {
		if got := inj.StallUntil(tc.proc, tc.now); got != tc.want {
			t.Errorf("StallUntil(proc=%d, now=%v) = %v, want %v", tc.proc, tc.now, got, tc.want)
		}
	}
}

func TestNewNilForZeroPlans(t *testing.T) {
	for _, p := range []*Plan{nil, {}, {Seed: 99}} {
		inj, err := New(p)
		if err != nil {
			t.Fatalf("New(%+v): %v", p, err)
		}
		if inj != nil {
			t.Fatalf("New(%+v) returned a live injector for a zero plan", p)
		}
	}
	if _, err := New(&Plan{DegradeProb: 2}); err == nil {
		t.Fatal("New accepted an invalid plan")
	}
}

func TestPresetVocabulary(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name, 5)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
		if name == "none" && !p.Zero() {
			t.Errorf("preset none is not a zero plan: %+v", p)
		}
		if name != "none" && p.Zero() {
			t.Errorf("preset %q injects nothing", name)
		}
	}
	if _, err := Preset("catastrophic", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestHandoffDelayDeterministic(t *testing.T) {
	inj, err := New(&Plan{Seed: 3, HandoffDelayProb: 0.5, HandoffDelay: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for id := 0; id < 8; id++ {
		for at := time.Duration(0); at < 8*time.Second; at += time.Second {
			im := newTestImplement(id)
			d0 := inj.HandoffDelay(0, im, at)
			if d0 != inj.HandoffDelay(2, im, at) {
				t.Fatalf("implement %d at %v: delay depends on processor", id, at)
			}
			if d0 != 0 {
				if d0 != 2*time.Second {
					t.Fatalf("implement %d at %v: delay %v, want 2s", id, at, d0)
				}
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("prob 0.5 over 64 handoffs delayed none")
	}
}
