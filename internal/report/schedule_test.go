package report

import (
	"bytes"
	"strings"
	"testing"

	"flagsim/internal/depgraph"
)

func TestScheduleSVG(t *testing.T) {
	g := depgraph.JordanReference(false)
	s, err := depgraph.ListSchedule(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ScheduleSVG(&buf, s, 600); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("not SVG")
	}
	for _, task := range []string{"black-stripe", "red-triangle", "white-star"} {
		if !strings.Contains(out, "<title>"+task+"</title>") {
			t.Fatalf("missing task %s", task)
		}
	}
	if !strings.Contains(out, "P3") {
		t.Fatal("missing lane label")
	}
}

func TestScheduleASCII(t *testing.T) {
	g := depgraph.GreatBritainReference()
	s, err := depgraph.ListSchedule(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ScheduleASCII(&buf, s, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Tasks render by first letter: 'b' (blue-field), 'w', 'r'.
	for _, glyph := range []string{"b", "w", "r"} {
		if !strings.Contains(out, glyph) {
			t.Fatalf("missing glyph %q:\n%s", glyph, out)
		}
	}
}

func TestScheduleRenderValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := ScheduleSVG(&buf, nil, 100); err == nil {
		t.Fatal("nil schedule should error")
	}
	if err := ScheduleASCII(&buf, &depgraph.Schedule{}, 60); err == nil {
		t.Fatal("empty schedule should error")
	}
}
