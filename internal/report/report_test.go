package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"flagsim/internal/core"
	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/quiz"
	"flagsim/internal/rng"
	"flagsim/internal/sim"
	"flagsim/internal/submission"
	"flagsim/internal/survey"
)

func tracedRun(t *testing.T) *sim.Result {
	t.Helper()
	scen, err := core.ScenarioByID(core.S4)
	if err != nil {
		t.Fatal(err)
	}
	team, err := core.NewTeam(scen.Workers, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.RunSpec{
		Flag:     flagspec.Mauritius,
		Scenario: scen,
		Team:     team,
		Set:      implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScenarioReport(t *testing.T) {
	res := tracedRun(t)
	var buf bytes.Buffer
	if err := Scenario(&buf, "test run", res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test run", "vertical-slices", "P1", "P4", "contention", "pipeline-fill"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGanttFromTrace(t *testing.T) {
	res := tracedRun(t)
	var buf bytes.Buffer
	if err := Gantt(&buf, res, 80); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Paint glyphs and wait dots must both appear for scenario 4.
	if !strings.ContainsAny(out, "RBYG") {
		t.Fatal("gantt missing paint spans")
	}
	if !strings.Contains(out, "·") {
		t.Fatal("gantt missing implement-wait spans")
	}
}

func TestGanttRequiresTrace(t *testing.T) {
	res := tracedRun(t)
	res.Trace = nil
	var buf bytes.Buffer
	if err := Gantt(&buf, res, 80); err == nil {
		t.Fatal("untraced run should error")
	}
}

func TestSVGGanttFromTrace(t *testing.T) {
	res := tracedRun(t)
	var buf bytes.Buffer
	if err := SVGGantt(&buf, res, 600); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<svg") {
		t.Fatal("not SVG")
	}
	// Paint fills and the wait gray must appear.
	if !strings.Contains(out, "#ce1126") {
		t.Fatal("missing red paint span")
	}
	if !strings.Contains(out, "#bbbbbb") {
		t.Fatal("missing wait span fill")
	}
	if !strings.Contains(out, "waiting for") {
		t.Fatal("missing wait tooltip")
	}
}

func TestSpeedupsTable(t *testing.T) {
	var buf bytes.Buffer
	times := []time.Duration{100 * time.Second, 55 * time.Second, 40 * time.Second}
	if err := Speedups(&buf, times); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1.82") {
		t.Fatalf("missing p=2 speedup:\n%s", out)
	}
}

func TestSurveyTableReport(t *testing.T) {
	cohorts, err := survey.GenerateStudy(survey.PaperTargets(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	t1, _, _, err := survey.BuildPaperTables(cohorts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SurveyTable(&buf, t1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "I had fun during the activity") {
		t.Fatal("missing question text")
	}
	if !strings.Contains(out, "NA") {
		t.Fatal("missing NA cell")
	}
}

func TestFig6AndSVG(t *testing.T) {
	cohorts, err := survey.GenerateStudy(survey.PaperTargets(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig6(&buf, cohorts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Webster") {
		t.Fatal("chart missing institutions")
	}
	buf.Reset()
	if err := Fig6SVG(&buf, cohorts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Fatal("not SVG")
	}
}

func TestFig8Report(t *testing.T) {
	cohorts, err := quiz.GenerateStudy(quiz.PaperMatrices(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := quiz.BuildFig8(cohorts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig8(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"task-decomposition", "pipelining", "retained-correct", "USI", "HPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 missing %q", want)
		}
	}
}

func TestSubmissionsReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Submissions(&buf, submission.PaperCounts()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "perfect") || !strings.Contains(out, "59%") {
		t.Fatalf("submissions report incomplete:\n%s", out)
	}
}

func TestQuizSignificanceReport(t *testing.T) {
	cohorts, err := quiz.GenerateStudy(quiz.PaperMatrices(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := quiz.AnalyzeSignificance(cohorts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := QuizSignificance(&buf, rows, 0.05); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "significant") {
		t.Fatal("no significance verdicts rendered")
	}
	if !strings.Contains(out, "exact") {
		t.Fatal("test form column missing")
	}
}

func TestSurveyComparisonsReport(t *testing.T) {
	cohorts, err := survey.GenerateStudy(survey.PaperTargets(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	comps, err := survey.CompareAllPairs(cohorts, "increased-loops")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SurveyComparisons(&buf, comps, 0.05); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Montclair") {
		t.Fatal("comparison table incomplete")
	}
}

func TestAmdahlFitReport(t *testing.T) {
	times := []time.Duration{100 * time.Second, 52 * time.Second, 36 * time.Second, 28 * time.Second}
	var buf bytes.Buffer
	if err := AmdahlFitReport(&buf, times); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serial fraction") {
		t.Fatal("fit line missing")
	}
}

func TestLessonsReport(t *testing.T) {
	var buf bytes.Buffer
	err := Lessons(&buf, []core.Lesson{{
		Name: "demo", Headline: "headline here",
		Values: map[string]float64{"b-metric": 2, "a-metric": 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[demo] headline here") {
		t.Fatal("lesson header missing")
	}
	// Sorted keys: a before b.
	if strings.Index(out, "a-metric") > strings.Index(out, "b-metric") {
		t.Fatal("values not sorted")
	}
}
