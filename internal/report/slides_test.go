package report

import (
	"bytes"
	"strings"
	"testing"

	"flagsim/internal/flagspec"
	"flagsim/internal/workplan"
)

func TestSlideSVG(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SlideSVG(&buf, "Scenario 4", plan, 30); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("not SVG")
	}
	// 96 cells plus legend boxes.
	if got := strings.Count(out, "<rect"); got < 96 {
		t.Fatalf("%d rects, want >= 96", got)
	}
	// Order numbers 1..24 per processor; "24" must appear.
	if !strings.Contains(out, ">24</text>") {
		t.Fatal("missing execution-order label 24")
	}
	// Legend for all four processors.
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		if !strings.Contains(out, ">"+p+"</text>") {
			t.Fatalf("missing legend %s", p)
		}
	}
	// The flag's paint colors appear as fills.
	if !strings.Contains(out, "#ce1126") || !strings.Contains(out, "#006a4e") {
		t.Fatal("paint colors missing")
	}
}

func TestSlideASCII(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := workplan.LayerBlocks(f, f.DefaultW, f.DefaultH, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SlideASCII(&buf, plan); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Scenario 3: each stripe owned by one processor.
	if !strings.Contains(out, "111111111111") {
		t.Fatal("P1's stripe missing")
	}
	if !strings.Contains(out, "444444444444") {
		t.Fatal("P4's stripe missing")
	}
	if !strings.Contains(out, "execution order") {
		t.Fatal("order grid missing")
	}
}

func TestSlideValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SlideSVG(&buf, "", nil, 30); err == nil {
		t.Fatal("nil plan should error")
	}
	if err := SlideASCII(&buf, nil); err == nil {
		t.Fatal("nil plan should error")
	}
}
