package report

import (
	"fmt"
	"io"
	"time"

	"flagsim/internal/metrics"
	"flagsim/internal/quiz"
	"flagsim/internal/sim"
	"flagsim/internal/survey"
	"flagsim/internal/viz"
)

// SVGGantt renders a traced run as an SVG timeline: paint spans in their
// palette colors, implement waits in hatched gray, layer stalls in light
// blue-gray, overheads in pale yellow.
func SVGGantt(w io.Writer, r *sim.Result, pxWidth int) error {
	if r.Trace == nil {
		return fmt.Errorf("report: run has no trace; set Config.Trace")
	}
	lanes := make([]string, len(r.Procs))
	for i, p := range r.Procs {
		lanes[i] = p.Name
	}
	spans := make([]viz.SVGGanttSpan, 0, len(r.Trace))
	for _, sp := range r.Trace {
		out := viz.SVGGanttSpan{Lane: sp.Proc, Start: sp.Start, End: sp.End}
		switch sp.Kind {
		case sim.SpanPaint:
			out.Fill = sp.Color.Hex()
			out.Label = fmt.Sprintf("paint %s %v", sp.Color, sp.Cell)
		case sim.SpanWaitImplement:
			out.Fill = "#bbbbbb"
			out.Label = fmt.Sprintf("waiting for %s implement", sp.Color)
		case sim.SpanWaitLayer:
			out.Fill = "#9fb2c8"
			out.Label = "waiting for prerequisite layer"
		case sim.SpanSetup:
			out.Fill = "#e8e0c8"
			out.Label = "scenario setup"
		default:
			out.Fill = "#ddd6a8"
			out.Label = sp.Kind.String()
		}
		spans = append(spans, out)
	}
	return viz.SVGGantt(w, lanes, spans, r.Makespan, pxWidth)
}

// QuizSignificance writes the McNemar analysis table for the reproduced
// quiz cohorts.
func QuizSignificance(w io.Writer, rows []quiz.SignificanceRow, alpha float64) error {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		p := fmt.Sprintf("%.4f", r.Result.PValue)
		form := "exact"
		if !r.Result.Exact {
			form = fmt.Sprintf("chi2=%.2f", r.Result.Statistic)
		}
		verdict := ""
		if r.Significant(alpha) {
			if r.NetGainPct > 0 {
				verdict = "significant gain"
			} else {
				verdict = "significant LOSS"
			}
		}
		table = append(table, []string{
			r.Concept.String(), string(r.Site),
			fmt.Sprintf("%d", r.Result.Gained), fmt.Sprintf("%d", r.Result.Lost),
			fmt.Sprintf("%+.1f", r.NetGainPct), p, form, verdict,
		})
	}
	return viz.Table(w, []string{"concept", "site", "gained", "lost", "net-%", "p", "test", fmt.Sprintf("verdict (alpha=%.2f)", alpha)}, table)
}

// SurveyComparisons writes Mann–Whitney comparisons for one question.
func SurveyComparisons(w io.Writer, comps []survey.Comparison, alpha float64) error {
	table := make([][]string, 0, len(comps))
	for _, c := range comps {
		verdict := ""
		if c.Result.PValue <= alpha {
			verdict = "differs"
		}
		table = append(table, []string{
			string(c.A), string(c.B),
			fmt.Sprintf("%.1f", c.MedianA), fmt.Sprintf("%.1f", c.MedianB),
			fmt.Sprintf("%.4f", c.Result.PValue),
			fmt.Sprintf("%+.2f", c.Result.RankBiserial),
			verdict,
		})
	}
	return viz.Table(w, []string{"A", "B", "median-A", "median-B", "p", "effect", fmt.Sprintf("verdict (alpha=%.2f)", alpha)}, table)
}

// AmdahlFitReport writes the whole-curve fit next to the per-point
// Karp–Flatt values.
func AmdahlFitReport(w io.Writer, times []time.Duration) error {
	fit, err := metrics.FitAmdahl(times)
	if err != nil {
		return err
	}
	if err := Speedups(w, times); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"Amdahl fit over the whole curve: serial fraction %.4f (max speedup %.1f, RMSE %.3f)\n",
		fit.SerialFraction, fit.MaxSpeedup, fit.RMSE)
	return err
}
