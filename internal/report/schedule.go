package report

import (
	"fmt"
	"io"

	"flagsim/internal/depgraph"
	"flagsim/internal/viz"
)

// taskFills cycles distinct fills for schedule tasks.
var taskFills = []string{"#4878a8", "#a85448", "#6aa84f", "#8a64a8", "#a8924a", "#50a0a0", "#b05070", "#708050"}

// ScheduleSVG renders a list schedule as an SVG Gantt: one lane per
// processor, one block per task — the layer-schedule visualization used
// in the Knox dependency discussion ("visualize schedules with different
// numbers of processors").
func ScheduleSVG(w io.Writer, s *depgraph.Schedule, pxWidth int) error {
	if s == nil || len(s.Tasks) == 0 {
		return fmt.Errorf("report: empty schedule")
	}
	lanes := make([]string, s.Procs)
	for i := range lanes {
		lanes[i] = fmt.Sprintf("P%d", i+1)
	}
	spans := make([]viz.SVGGanttSpan, 0, len(s.Tasks))
	for i, t := range s.Tasks {
		spans = append(spans, viz.SVGGanttSpan{
			Lane:  t.Proc,
			Start: t.Start,
			End:   t.End,
			Fill:  taskFills[i%len(taskFills)],
			Label: t.ID,
		})
	}
	return viz.SVGGantt(w, lanes, spans, s.Makespan, pxWidth)
}

// ScheduleASCII renders a list schedule as an ASCII Gantt using the first
// letter of each task ID as its glyph.
func ScheduleASCII(w io.Writer, s *depgraph.Schedule, cols int) error {
	if s == nil || len(s.Tasks) == 0 {
		return fmt.Errorf("report: empty schedule")
	}
	lanes := make([]string, s.Procs)
	for i := range lanes {
		lanes[i] = fmt.Sprintf("P%d", i+1)
	}
	spans := make([]viz.GanttSpan, 0, len(s.Tasks))
	for _, t := range s.Tasks {
		glyph := '?'
		if len(t.ID) > 0 {
			glyph = rune(t.ID[0])
		}
		spans = append(spans, viz.GanttSpan{
			Lane: t.Proc, Glyph: glyph, Start: t.Start, End: t.End,
		})
	}
	return viz.Gantt(w, lanes, spans, s.Makespan, cols)
}
