package report

import (
	"fmt"
	"io"
	"strings"

	"flagsim/internal/viz"
	"flagsim/internal/workplan"
)

// procStrokes are the per-processor outline colors on scenario slides.
var procStrokes = []string{"#1c1c1c", "#c8309a", "#ff7700", "#0aa0c8", "#7744cc", "#3a9a30", "#aa2222", "#888800"}

// SlideSVG renders a decomposition as the activity's scenario slide
// (Fig. 1): every cell filled with its paint color, outlined in its
// processor's color, and numbered with its position in that processor's
// execution order — "Number the cells to efficiently convey the order in
// which they should be filled" (§IV).
func SlideSVG(w io.Writer, title string, plan *workplan.Plan, cellPx int) error {
	if plan == nil {
		return fmt.Errorf("report: nil plan")
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	var cells []viz.AnnotatedCell
	for pi, tasks := range plan.PerProc {
		stroke := procStrokes[pi%len(procStrokes)]
		for i, t := range tasks {
			cells = append(cells, viz.AnnotatedCell{
				X: t.Cell.X, Y: t.Cell.Y,
				Fill:   t.Color.Hex(),
				Stroke: stroke,
				Label:  fmt.Sprintf("%d", i+1),
			})
		}
	}
	var legend []viz.LegendEntry
	for pi := range plan.PerProc {
		legend = append(legend, viz.LegendEntry{
			Color: procStrokes[pi%len(procStrokes)],
			Label: fmt.Sprintf("P%d", pi+1),
		})
	}
	if title == "" {
		title = plan.Strategy
	}
	return viz.SVGAnnotatedGrid(w, title, cells, plan.W, plan.H, cellPx, legend)
}

// SlideASCII renders the slide as text: each cell shows its processor
// number, with a second grid showing the per-processor order mod 10 —
// enough to eyeball a decomposition in a terminal or a test.
func SlideASCII(w io.Writer, plan *workplan.Plan) error {
	if plan == nil {
		return fmt.Errorf("report: nil plan")
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	owner := make([][]rune, plan.H)
	order := make([][]rune, plan.H)
	for y := range owner {
		owner[y] = []rune(strings.Repeat(".", plan.W))
		order[y] = []rune(strings.Repeat(".", plan.W))
	}
	for pi, tasks := range plan.PerProc {
		glyph := rune('1' + pi)
		if pi > 8 {
			glyph = '+'
		}
		for i, t := range tasks {
			owner[t.Cell.Y][t.Cell.X] = glyph
			order[t.Cell.Y][t.Cell.X] = rune('0' + (i+1)%10)
		}
	}
	if _, err := fmt.Fprintf(w, "%s\nprocessor per cell:          execution order (mod 10):\n", plan.Strategy); err != nil {
		return err
	}
	for y := 0; y < plan.H; y++ {
		pad := strings.Repeat(" ", 29-plan.W)
		if plan.W >= 29 {
			pad = " "
		}
		if _, err := fmt.Fprintf(w, "%s%s%s\n", string(owner[y]), pad, string(order[y])); err != nil {
			return err
		}
	}
	return nil
}
