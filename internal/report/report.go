// Package report formats simulation and assessment results for humans: it
// glues sim/metrics/survey/quiz/submission outputs to the viz renderers.
// Every cmd/ binary and the experiments harness prints through this
// package so the repository has one canonical presentation of each
// artifact.
package report

import (
	"fmt"
	"io"
	"time"

	"flagsim/internal/core"
	"flagsim/internal/metrics"
	"flagsim/internal/quiz"
	"flagsim/internal/sim"
	"flagsim/internal/submission"
	"flagsim/internal/survey"
	"flagsim/internal/viz"
)

// Scenario writes the summary of one run: makespan, per-processor
// breakdown, and contention.
func Scenario(w io.Writer, title string, r *sim.Result) error {
	if _, err := fmt.Fprintf(w, "%s\n  strategy: %s  makespan: %v  events: %d\n",
		title, r.Plan.Strategy, r.Makespan.Round(time.Millisecond), r.Events); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Procs))
	for _, p := range r.Procs {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.Cells),
			p.Finish.Round(time.Millisecond).String(),
			p.PaintTime.Round(time.Millisecond).String(),
			p.WaitImplement.Round(time.Millisecond).String(),
			p.WaitLayer.Round(time.Millisecond).String(),
			p.Overhead.Round(time.Millisecond).String(),
		})
	}
	if err := viz.Table(w, []string{"proc", "cells", "finish", "paint", "wait-impl", "wait-layer", "overhead"}, rows); err != nil {
		return err
	}
	rep := metrics.Contention(r)
	_, err := fmt.Fprintf(w, "  contention: wait=%v max-queue=%d handoffs=%d wait-share=%.1f%%  pipeline-fill=%v  breaks=%d\n",
		rep.TotalWait.Round(time.Millisecond), rep.MaxQueueDepth, rep.Handoffs,
		rep.WaitShare*100, r.PipelineFill().Round(time.Millisecond), r.Breaks)
	return err
}

// Gantt renders a traced run as an ASCII timeline, one lane per
// processor. Paint spans use the color's glyph; waits render as '·' for
// implement waits and '~' for layer stalls; overheads as ','.
func Gantt(w io.Writer, r *sim.Result, cols int) error {
	if r.Trace == nil {
		return fmt.Errorf("report: run has no trace; set Config.Trace")
	}
	lanes := make([]string, len(r.Procs))
	for i, p := range r.Procs {
		lanes[i] = p.Name
	}
	spans := make([]viz.GanttSpan, 0, len(r.Trace))
	for _, sp := range r.Trace {
		glyph := ','
		switch sp.Kind {
		case sim.SpanPaint:
			glyph = sp.Color.Rune()
		case sim.SpanWaitImplement:
			glyph = '·'
		case sim.SpanWaitLayer:
			glyph = '~'
		case sim.SpanSetup:
			glyph = ' '
		}
		spans = append(spans, viz.GanttSpan{Lane: sp.Proc, Glyph: glyph, Start: sp.Start, End: sp.End})
	}
	return viz.Gantt(w, lanes, spans, r.Makespan, cols)
}

// Speedups writes a scaling table from completion times on 1..p
// processors.
func Speedups(w io.Writer, times []time.Duration) error {
	pts, err := metrics.ScalingStudy(times)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(pts))
	for _, pt := range pts {
		kf := "-"
		if pt.Procs >= 2 {
			kf = fmt.Sprintf("%.3f", pt.KarpFlatt)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.Procs),
			pt.Time.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", pt.Speedup),
			fmt.Sprintf("%.2f", pt.Efficiency),
			kf,
		})
	}
	return viz.Table(w, []string{"p", "time", "speedup", "efficiency", "karp-flatt"}, rows)
}

// SurveyTable writes a Tables I–III style median table.
func SurveyTable(w io.Writer, t *survey.Table) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	header := []string{"Question"}
	for _, inst := range t.Institutions {
		header = append(header, string(inst))
	}
	rows := make([][]string, 0, len(t.Questions))
	for _, q := range t.Questions {
		question, err := survey.QuestionByID(q)
		if err != nil {
			return err
		}
		row := []string{question.Text}
		for _, inst := range t.Institutions {
			row = append(row, t.Cell(q, inst).String())
		}
		rows = append(rows, row)
	}
	return viz.Table(w, header, rows)
}

// Fig6Groups converts cohorts into grouped bars (one group per question,
// one bar per institution) for the Fig. 6 chart.
func Fig6Groups(cohorts map[survey.Institution]*survey.Cohort) []viz.GroupedBar {
	var groups []viz.GroupedBar
	for _, q := range survey.Instrument() {
		var bars []viz.Bar
		for _, inst := range survey.Institutions() {
			c, ok := cohorts[inst]
			if !ok {
				continue
			}
			if m, ok := c.Median(q.ID); ok {
				bars = append(bars, viz.Bar{Label: string(inst), Value: m})
			}
		}
		if len(bars) > 0 {
			groups = append(groups, viz.GroupedBar{Group: q.Text, Bars: bars})
		}
	}
	return groups
}

// Fig6 writes the median bar chart (ASCII form of the paper's Fig. 6).
func Fig6(w io.Writer, cohorts map[survey.Institution]*survey.Cohort) error {
	return viz.GroupedBarChart(w, "Fig. 6: median scores per question across institutions",
		Fig6Groups(cohorts), 25, 5)
}

// Fig6SVG writes the chart as SVG.
func Fig6SVG(w io.Writer, cohorts map[survey.Institution]*survey.Cohort) error {
	return viz.SVGGroupedBarChart(w, "Median scores per question across institutions",
		Fig6Groups(cohorts), 5)
}

// Fig8 writes the pre/post transition analysis in the paper's per-concept
// layout.
func Fig8(w io.Writer, rows []quiz.Fig8Row) error {
	var current quiz.Concept = 255
	for _, row := range rows {
		if row.Concept != current {
			current = row.Concept
			if _, err := fmt.Fprintf(w, "\n%s:\n", row.Concept); err != nil {
				return err
			}
		}
		m := row.Matrix
		if _, err := fmt.Fprintf(w,
			"  %-7s retained-correct %5.1f%%  gained %5.1f%%  lost %5.1f%%  retained-incorrect %5.1f%%  (pre %5.1f%% -> post %5.1f%%)\n",
			row.Site, m.RetainedCorrect, m.Gained, m.Lost, m.RetainedIncorrect,
			m.PreCorrect(), m.PostCorrect()); err != nil {
			return err
		}
	}
	return nil
}

// Submissions writes the §V-C grading distribution.
func Submissions(w io.Writer, counts submission.Counts) error {
	rows := make([][]string, 0, 5)
	for _, cat := range submission.Categories() {
		rows = append(rows, []string{
			cat.String(),
			fmt.Sprintf("%d", counts[cat]),
			fmt.Sprintf("%.0f%%", counts.Share(cat)),
		})
	}
	if err := viz.Table(w, []string{"category", "count", "share"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "at least mostly correct: %.0f%% of %d submissions\n",
		counts.AtLeastMostlyCorrectShare(), counts.Total())
	return err
}

// Lessons writes the classroom discussion lessons.
func Lessons(w io.Writer, lessons []core.Lesson) error {
	for _, l := range lessons {
		if _, err := fmt.Fprintf(w, "\n[%s] %s\n", l.Name, l.Headline); err != nil {
			return err
		}
		for _, k := range viz.SortedKeys(l.Values) {
			if _, err := fmt.Fprintf(w, "  %-28s %10.2f\n", k, l.Values[k]); err != nil {
				return err
			}
		}
	}
	return nil
}
