// Package workplan turns a flag into per-processor ordered task lists —
// the task decompositions of the activity.
//
// The paper's four scenarios (Fig. 1) are instances of the strategies here:
//
//	Scenario 1: Sequential            — one processor colors everything.
//	Scenario 2: LayerBlocks(p=2)      — stripe pairs (red+blue / yellow+green).
//	Scenario 3: LayerBlocks(p=4)      — one stripe per processor.
//	Scenario 4: VerticalSlices(p=4)   — vertical slices crossing every stripe.
//
// Scenario 4 additionally admits two cell orderings: the naive reading
// order, under which every processor wants the same implement color at the
// same moment (the contention lesson), and the pipelined rotation, under
// which processor i starts on stripe i and the implements circulate like
// data through an arithmetic pipeline (the pipelining lesson).
//
// Block and Cyclic decompositions are not in the paper's core activity but
// are the standard PDC follow-ons; they drive the E19 ablation.
package workplan

import (
	"fmt"
	"sort"

	"flagsim/internal/flagspec"
	"flagsim/internal/geom"
	"flagsim/internal/grid"
	"flagsim/internal/palette"
)

// Task is one unit of work: color one cell with one color. Layer records
// which flag layer the cell belongs to, for dependency enforcement.
type Task struct {
	Cell  geom.Pt
	Color palette.Color
	Layer int
}

// Plan is a complete decomposition: an ordered task list per processor,
// plus the layer dependency structure the simulator must enforce.
type Plan struct {
	// FlagName and W, H identify the workload.
	FlagName string
	W, H     int
	// Strategy names the decomposition for reports ("sequential",
	// "layer-blocks", "vertical-slices", ...).
	Strategy string
	// PerProc[i] is the ordered work of processor i.
	PerProc [][]Task
	// LayerDeps[l] lists layer indices that must be fully painted before
	// any cell of layer l may start. Derived from the flag spec.
	LayerDeps [][]int
	// LayerCellCount[l] is the total number of cells of layer l across
	// all processors, for the simulator's completion counters.
	LayerCellCount []int
	// Overpainted reports whether the plan paints full layers (Painter's
	// algorithm, some cells painted more than once) rather than only
	// visible cells.
	Overpainted bool
}

// NumProcs returns the number of processors the plan expects.
func (p *Plan) NumProcs() int { return len(p.PerProc) }

// TotalTasks returns the total number of cell-coloring tasks.
func (p *Plan) TotalTasks() int {
	n := 0
	for _, tasks := range p.PerProc {
		n += len(tasks)
	}
	return n
}

// Validate checks that the plan is internally consistent: tasks in bounds,
// valid colors, layer references within range, per-processor task order
// non-decreasing in layer when that layer has dependencies, and layer cell
// counts matching the task lists.
func (p *Plan) Validate() error {
	if p.W <= 0 || p.H <= 0 {
		return fmt.Errorf("workplan: bad dimensions %dx%d", p.W, p.H)
	}
	if len(p.PerProc) == 0 {
		return fmt.Errorf("workplan: no processors")
	}
	bounds := geom.R(0, 0, p.W, p.H)
	counts := make([]int, len(p.LayerCellCount))
	for pi, tasks := range p.PerProc {
		for ti, t := range tasks {
			if !t.Cell.In(bounds) {
				return fmt.Errorf("workplan: proc %d task %d out of bounds at %v", pi, ti, t.Cell)
			}
			if !t.Color.Valid() || t.Color == palette.None {
				return fmt.Errorf("workplan: proc %d task %d has invalid color", pi, ti)
			}
			if t.Layer < 0 || t.Layer >= len(p.LayerCellCount) {
				return fmt.Errorf("workplan: proc %d task %d references layer %d of %d", pi, ti, t.Layer, len(p.LayerCellCount))
			}
			counts[t.Layer]++
		}
	}
	for l, want := range p.LayerCellCount {
		if counts[l] != want {
			return fmt.Errorf("workplan: layer %d has %d tasks, expected %d", l, counts[l], want)
		}
	}
	for l, deps := range p.LayerDeps {
		for _, d := range deps {
			if d < 0 || d >= len(p.LayerCellCount) {
				return fmt.Errorf("workplan: layer %d depends on invalid layer %d", l, d)
			}
			if d == l {
				return fmt.Errorf("workplan: layer %d depends on itself", l)
			}
		}
	}
	return nil
}

// Verify paints the plan onto a blank grid in any dependency-respecting
// order and compares against the flag's reference raster. It is the
// correctness oracle used by tests: a decomposition bug (dropped cell,
// wrong color, bad layer order) fails here regardless of timing.
func (p *Plan) Verify(f *flagspec.Flag) error {
	if err := p.Validate(); err != nil {
		return err
	}
	g := grid.New(p.W, p.H)
	// Paint in global layer order, which respects every LayerDeps edge
	// because flag specs only allow dependencies on earlier layers.
	byLayer := make([][]Task, len(p.LayerCellCount))
	for _, tasks := range p.PerProc {
		for _, t := range tasks {
			byLayer[t.Layer] = append(byLayer[t.Layer], t)
		}
	}
	for _, tasks := range byLayer {
		for _, t := range tasks {
			if err := g.Paint(t.Cell, t.Color); err != nil {
				return err
			}
		}
	}
	want, err := grid.Rasterize(f, p.W, p.H)
	if err != nil {
		return err
	}
	if !g.Equal(want) {
		diff, _ := g.Diff(want)
		return fmt.Errorf("workplan: plan %q does not reproduce %s: %d cells differ (first: %v)",
			p.Strategy, f.Name, len(diff), first(diff))
	}
	return nil
}

func first(pts []geom.Pt) geom.Pt {
	if len(pts) == 0 {
		return geom.Pt{}
	}
	return pts[0]
}

// layerDeps extracts the explicit dependency lists from the flag as layer
// indices, adding implied overpaint dependencies: any layer that overlaps
// an earlier layer must wait for it even without an explicit DependsOn.
func layerDeps(f *flagspec.Flag, w, h int) [][]int {
	index := make(map[string]int, len(f.Layers))
	for i, l := range f.Layers {
		index[l.Name] = i
	}
	overlaps := f.Overlaps(w, h)
	out := make([][]int, len(f.Layers))
	for i, l := range f.Layers {
		set := make(map[int]bool)
		for _, dep := range l.DependsOn {
			set[index[dep]] = true
		}
		for _, j := range overlaps[i] {
			set[j] = true
		}
		deps := make([]int, 0, len(set))
		for d := range set {
			deps = append(deps, d)
		}
		sort.Ints(deps)
		out[i] = deps
	}
	return out
}

// cellCounts returns the cell count per layer for a full (overpainted)
// plan.
func cellCounts(layerCells [][]geom.Pt) []int {
	out := make([]int, len(layerCells))
	for i, cells := range layerCells {
		out[i] = len(cells)
	}
	return out
}

// Sequential is scenario 1: one processor paints every layer in order,
// each layer in reading order.
func Sequential(f *flagspec.Flag, w, h int) (*Plan, error) {
	return LayerBlocks(f, w, h, 1)
}

// LayerBlocks distributes whole layers over p processors in contiguous
// blocks, balancing by cell count: with Mauritius and p=2 this is the
// paper's scenario 2 (stripe pairs); with p=4, scenario 3 (one stripe
// each). Each processor performs its layers in flag order, each layer in
// reading order.
func LayerBlocks(f *flagspec.Flag, w, h int, p int) (*Plan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("workplan: %d processors", p)
	}
	layerCells := grid.LayerCells(f, w, h)
	if p > len(f.Layers) {
		return nil, fmt.Errorf("workplan: layer-blocks with %d processors but %s has only %d layers",
			p, f.Name, len(f.Layers))
	}
	// Contiguous balanced partition of layers by cell count (simple
	// greedy: target = total/p, close a block when it reaches target).
	total := 0
	for _, cells := range layerCells {
		total += len(cells)
	}
	perProc := make([][]Task, p)
	proc, acc := 0, 0
	remainingLayers := len(f.Layers)
	for li, cells := range layerCells {
		remainingProcs := p - proc - 1
		// Never leave more processors than layers remaining.
		mustClose := remainingLayers-1 < remainingProcs+1 && proc < p-1
		for _, c := range cells {
			perProc[proc] = append(perProc[proc], Task{Cell: c, Color: f.Layers[li].Color, Layer: li})
		}
		acc += len(cells)
		remainingLayers--
		if proc < p-1 && (mustClose || acc >= (total*(proc+1))/p) {
			proc++
		}
	}
	plan := &Plan{
		FlagName: f.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("layer-blocks(p=%d)", p),
		PerProc:        perProc,
		LayerDeps:      layerDeps(f, w, h),
		LayerCellCount: cellCounts(layerCells),
		Overpainted:    true,
	}
	return plan, plan.Validate()
}

// VerticalSlices is scenario 4: the canvas is split into p vertical
// slices, one per processor; each processor paints every layer's cells
// within its slice. With rotate=false each processor takes layers in flag
// order (the naive, maximally contended order). With rotate=true processor
// i starts at layer (i*len(layers)/p) and wraps — the pipelined rotation
// of §III-C under which the implements circulate.
func VerticalSlices(f *flagspec.Flag, w, h, p int, rotate bool) (*Plan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("workplan: %d processors", p)
	}
	if p > w {
		return nil, fmt.Errorf("workplan: %d slices across width %d", p, w)
	}
	layerCells := grid.LayerCells(f, w, h)
	slices := geom.R(0, 0, w, h).SplitCols(p)
	perProc := make([][]Task, p)
	nl := len(f.Layers)
	for pi, slice := range slices {
		order := make([]int, nl)
		for k := 0; k < nl; k++ {
			if rotate {
				order[k] = (pi*nl/p + k) % nl
			} else {
				order[k] = k
			}
		}
		for _, li := range order {
			for _, c := range layerCells[li] {
				if c.In(slice) {
					perProc[pi] = append(perProc[pi], Task{Cell: c, Color: f.Layers[li].Color, Layer: li})
				}
			}
		}
	}
	name := "vertical-slices"
	if rotate {
		name = "vertical-slices-pipelined"
	}
	plan := &Plan{
		FlagName: f.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("%s(p=%d)", name, p),
		PerProc:        perProc,
		LayerDeps:      layerDeps(f, w, h),
		LayerCellCount: cellCounts(layerCells),
		Overpainted:    true,
	}
	if rotate && hasInterLayerDeps(plan.LayerDeps) {
		return nil, fmt.Errorf("workplan: pipelined rotation is only valid for flags with independent layers; %s has layer dependencies", f.Name)
	}
	return plan, plan.Validate()
}

func hasInterLayerDeps(deps [][]int) bool {
	for _, d := range deps {
		if len(d) > 0 {
			return true
		}
	}
	return false
}

// Blocks tiles the canvas into a gx×gy grid of rectangular blocks assigned
// to processors round-robin; each processor paints its blocks layer by
// layer. gx*gy must be >= p.
func Blocks(f *flagspec.Flag, w, h, p, gx, gy int) (*Plan, error) {
	if p <= 0 || gx <= 0 || gy <= 0 {
		return nil, fmt.Errorf("workplan: bad block parameters p=%d gx=%d gy=%d", p, gx, gy)
	}
	if gx*gy < p {
		return nil, fmt.Errorf("workplan: %d blocks for %d processors", gx*gy, p)
	}
	layerCells := grid.LayerCells(f, w, h)
	cols := geom.R(0, 0, w, h).SplitCols(gx)
	var blocks []geom.Rect
	for _, col := range cols {
		blocks = append(blocks, col.SplitRows(gy)...)
	}
	perProc := make([][]Task, p)
	for bi, blk := range blocks {
		pi := bi % p
		for li := range f.Layers {
			for _, c := range layerCells[li] {
				if c.In(blk) {
					perProc[pi] = append(perProc[pi], Task{Cell: c, Color: f.Layers[li].Color, Layer: li})
				}
			}
		}
	}
	// Re-sort each processor's tasks by layer so dependencies are
	// satisfiable, preserving block order within a layer.
	for pi := range perProc {
		sort.SliceStable(perProc[pi], func(a, b int) bool {
			return perProc[pi][a].Layer < perProc[pi][b].Layer
		})
	}
	plan := &Plan{
		FlagName: f.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("blocks(p=%d,%dx%d)", p, gx, gy),
		PerProc:        perProc,
		LayerDeps:      layerDeps(f, w, h),
		LayerCellCount: cellCounts(layerCells),
		Overpainted:    true,
	}
	return plan, plan.Validate()
}

// Cyclic deals cells of each layer to processors round-robin in reading
// order — fine-grained interleaving with perfect load balance and maximal
// implement thrash, the canonical "cyclic distribution" of PDC curricula.
func Cyclic(f *flagspec.Flag, w, h, p int) (*Plan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("workplan: %d processors", p)
	}
	layerCells := grid.LayerCells(f, w, h)
	perProc := make([][]Task, p)
	// One continuous deal across all layers: restarting at processor 0
	// per layer would hand the low-index processors an extra cell per
	// layer and compound the imbalance.
	deal := 0
	for li := range f.Layers {
		for _, c := range layerCells[li] {
			pi := deal % p
			deal++
			perProc[pi] = append(perProc[pi], Task{Cell: c, Color: f.Layers[li].Color, Layer: li})
		}
	}
	plan := &Plan{
		FlagName: f.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("cyclic(p=%d)", p),
		PerProc:        perProc,
		LayerDeps:      layerDeps(f, w, h),
		LayerCellCount: cellCounts(layerCells),
		Overpainted:    true,
	}
	return plan, plan.Validate()
}

// VisibleOnly rewrites a flag into a single-pass plan that paints only the
// finally visible color of each cell, split over p processors by balanced
// contiguous runs in reading order. It has no layer dependencies and no
// overpaint — the "smart sequential" baseline that quantifies what the
// Painter's algorithm costs.
func VisibleOnly(f *flagspec.Flag, w, h, p int) (*Plan, error) {
	if p <= 0 {
		return nil, fmt.Errorf("workplan: %d processors", p)
	}
	visible := grid.VisibleLayerCells(f, w, h)
	type cellColor struct {
		c     geom.Pt
		color palette.Color
		layer int
	}
	var all []cellColor
	for li := range f.Layers {
		for _, c := range visible[li] {
			all = append(all, cellColor{c, f.Layers[li].Color, li})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].c.Y != all[b].c.Y {
			return all[a].c.Y < all[b].c.Y
		}
		return all[a].c.X < all[b].c.X
	})
	perProc := make([][]Task, p)
	n := len(all)
	start := 0
	counts := make([]int, len(f.Layers))
	for pi := 0; pi < p; pi++ {
		extent := n / p
		if pi < n%p {
			extent++
		}
		for _, cc := range all[start : start+extent] {
			perProc[pi] = append(perProc[pi], Task{Cell: cc.c, Color: cc.color, Layer: cc.layer})
			counts[cc.layer]++
		}
		start += extent
	}
	plan := &Plan{
		FlagName: f.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("visible-only(p=%d)", p),
		PerProc:        perProc,
		LayerDeps:      make([][]int, len(f.Layers)),
		LayerCellCount: counts,
		Overpainted:    false,
	}
	return plan, plan.Validate()
}
