package workplan

import (
	"strings"
	"testing"
	"testing/quick"

	"flagsim/internal/flagspec"
	"flagsim/internal/palette"
)

// allStrategies builds every decomposition of f at its default size for a
// sensible processor count per strategy.
func allStrategies(t *testing.T, f *flagspec.Flag) map[string]*Plan {
	t.Helper()
	w, h := f.DefaultW, f.DefaultH
	out := map[string]*Plan{}
	add := func(name string, p *Plan, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s/%s: %v", f.Name, name, err)
		}
		out[name] = p
	}
	seq, err := Sequential(f, w, h)
	add("sequential", seq, err)
	if len(f.Layers) >= 2 {
		lb, err := LayerBlocks(f, w, h, 2)
		add("layer-blocks-2", lb, err)
	}
	vsN, err := VerticalSlices(f, w, h, 4, false)
	add("vertical-slices", vsN, err)
	bl, err := Blocks(f, w, h, 4, 2, 2)
	add("blocks", bl, err)
	cy, err := Cyclic(f, w, h, 4)
	add("cyclic", cy, err)
	vo, err := VisibleOnly(f, w, h, 4)
	add("visible-only", vo, err)
	return out
}

func TestEveryStrategyReproducesEveryFlag(t *testing.T) {
	for _, f := range flagspec.All() {
		for name, plan := range allStrategies(t, f) {
			if err := plan.Verify(f); err != nil {
				t.Errorf("%s/%s: %v", f.Name, name, err)
			}
		}
	}
}

func TestScenario2SplitsStripePairs(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := LayerBlocks(f, f.DefaultW, f.DefaultH, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumProcs() != 2 {
		t.Fatalf("%d procs", plan.NumProcs())
	}
	// P1 gets red+blue, P2 yellow+green — the paper's scenario 2.
	colors := func(tasks []Task) map[palette.Color]bool {
		out := map[palette.Color]bool{}
		for _, task := range tasks {
			out[task.Color] = true
		}
		return out
	}
	c0, c1 := colors(plan.PerProc[0]), colors(plan.PerProc[1])
	if !c0[palette.Red] || !c0[palette.Blue] || len(c0) != 2 {
		t.Fatalf("P1 colors %v", c0)
	}
	if !c1[palette.Yellow] || !c1[palette.Green] || len(c1) != 2 {
		t.Fatalf("P2 colors %v", c1)
	}
	if len(plan.PerProc[0]) != len(plan.PerProc[1]) {
		t.Fatalf("unbalanced: %d vs %d", len(plan.PerProc[0]), len(plan.PerProc[1]))
	}
}

func TestScenario3OneStripeEach(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := LayerBlocks(f, f.DefaultW, f.DefaultH, 4)
	if err != nil {
		t.Fatal(err)
	}
	for pi, tasks := range plan.PerProc {
		if len(tasks) != 24 {
			t.Fatalf("proc %d has %d tasks, want 24", pi, len(tasks))
		}
		first := tasks[0].Color
		for _, task := range tasks {
			if task.Color != first {
				t.Fatalf("proc %d mixes colors", pi)
			}
		}
	}
}

func TestLayerBlocksRejectsTooManyProcs(t *testing.T) {
	f := flagspec.Mauritius
	if _, err := LayerBlocks(f, f.DefaultW, f.DefaultH, 5); err == nil {
		t.Fatal("expected error: 5 procs for 4 layers")
	}
}

func TestVerticalSlicesCoverDistinctColumns(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for pi, tasks := range plan.PerProc {
		lo, hi := pi*3, pi*3+2
		for _, task := range tasks {
			if task.Cell.X < lo || task.Cell.X > hi {
				t.Fatalf("proc %d painted column %d outside [%d,%d]", pi, task.Cell.X, lo, hi)
			}
		}
		if len(tasks) != 24 {
			t.Fatalf("proc %d has %d tasks", pi, len(tasks))
		}
	}
}

func TestVerticalSlicesNaiveAllStartSameColor(t *testing.T) {
	f := flagspec.Mauritius
	plan, _ := VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	for pi, tasks := range plan.PerProc {
		if tasks[0].Color != palette.Red {
			t.Fatalf("naive proc %d starts with %v, want red", pi, tasks[0].Color)
		}
	}
}

func TestVerticalSlicesRotatedStartDistinctColors(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := VerticalSlices(f, f.DefaultW, f.DefaultH, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[palette.Color]bool{}
	for _, tasks := range plan.PerProc {
		if seen[tasks[0].Color] {
			t.Fatalf("two processors start on %v", tasks[0].Color)
		}
		seen[tasks[0].Color] = true
	}
	if err := plan.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestRotationRejectedForLayeredFlags(t *testing.T) {
	f := flagspec.GreatBritain
	if _, err := VerticalSlices(f, f.DefaultW, f.DefaultH, 4, true); err == nil {
		t.Fatal("pipelined rotation must be rejected for dependent layers")
	}
}

func TestVerticalSlicesRejectsTooManySlices(t *testing.T) {
	f := flagspec.Mauritius
	if _, err := VerticalSlices(f, f.DefaultW, f.DefaultH, 20, false); err == nil {
		t.Fatal("expected error: more slices than columns")
	}
}

func TestCyclicBalances(t *testing.T) {
	f := flagspec.Mauritius
	plan, err := Cyclic(f, f.DefaultW, f.DefaultH, 5)
	if err != nil {
		t.Fatal(err)
	}
	min, max := -1, 0
	for _, tasks := range plan.PerProc {
		if len(tasks) > max {
			max = len(tasks)
		}
		if min == -1 || len(tasks) < min {
			min = len(tasks)
		}
	}
	if max-min > 1 {
		t.Fatalf("cyclic imbalance: min %d max %d", min, max)
	}
}

func TestVisibleOnlyPaintsEachCellOnce(t *testing.T) {
	f := flagspec.GreatBritain
	plan, err := VisibleOnly(f, f.DefaultW, f.DefaultH, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Overpainted {
		t.Fatal("visible-only must not be marked overpainted")
	}
	if got, want := plan.TotalTasks(), f.DefaultW*f.DefaultH; got != want {
		t.Fatalf("visible-only has %d tasks, want %d", got, want)
	}
	full, err := Sequential(f, f.DefaultW, f.DefaultH)
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalTasks() <= plan.TotalTasks() {
		t.Fatal("layered plan should have strictly more tasks (overpaint)")
	}
}

func TestBlocksParameterValidation(t *testing.T) {
	f := flagspec.Mauritius
	if _, err := Blocks(f, f.DefaultW, f.DefaultH, 4, 1, 3); err == nil {
		t.Fatal("expected error: 3 blocks for 4 processors")
	}
	if _, err := Blocks(f, f.DefaultW, f.DefaultH, 0, 2, 2); err == nil {
		t.Fatal("expected error: zero processors")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	f := flagspec.Mauritius
	plan, _ := Sequential(f, f.DefaultW, f.DefaultH)

	bad := *plan
	bad.PerProc = [][]Task{append([]Task(nil), plan.PerProc[0]...)}
	bad.PerProc[0][0].Cell.X = -1
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("expected out-of-bounds error, got %v", err)
	}

	bad2 := *plan
	bad2.PerProc = [][]Task{append([]Task(nil), plan.PerProc[0]...)}
	bad2.PerProc[0][0].Layer = 17
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected layer range error")
	}

	bad3 := *plan
	bad3.PerProc = [][]Task{plan.PerProc[0][1:]}
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected cell count mismatch error")
	}
}

func TestVerifyCatchesWrongColor(t *testing.T) {
	f := flagspec.Mauritius
	plan, _ := Sequential(f, f.DefaultW, f.DefaultH)
	// Flip one task's color (keeping its layer) — Verify must notice.
	plan.PerProc[0][0].Color = palette.Black
	if err := plan.Verify(f); err == nil {
		t.Fatal("Verify should catch a wrong color")
	}
}

// Property: for random sizes and processor counts, vertical slices always
// reproduce Mauritius exactly.
func TestVerticalSlicesProperty(t *testing.T) {
	f := flagspec.Mauritius
	check := func(wRaw, hRaw, pRaw uint8, rotate bool) bool {
		w := int(wRaw%24) + 4
		h := int(hRaw%24) + 4
		p := int(pRaw%4) + 1
		if p > w {
			p = w
		}
		plan, err := VerticalSlices(f, w, h, p, rotate)
		if err != nil {
			return false
		}
		return plan.Verify(f) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: cyclic reproduces any built-in flag at scaled sizes.
func TestCyclicAllFlagsProperty(t *testing.T) {
	flags := flagspec.All()
	check := func(fi uint8, pRaw uint8) bool {
		f := flags[int(fi)%len(flags)]
		p := int(pRaw%6) + 1
		plan, err := Cyclic(f, f.DefaultW, f.DefaultH, p)
		if err != nil {
			return false
		}
		return plan.Verify(f) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
