package workplan

import (
	"testing"

	"flagsim/internal/flagspec"
)

func TestSerpentineReproducesFlags(t *testing.T) {
	for _, f := range flagspec.All() {
		for _, o := range []Ordering{ReadingOrder, Serpentine} {
			plan, err := SequentialOrdered(f, f.DefaultW, f.DefaultH, o)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, o, err)
			}
			if err := plan.Verify(f); err != nil {
				t.Errorf("%s/%s: %v", f.Name, o, err)
			}
		}
	}
}

func TestSerpentineCutsMovement(t *testing.T) {
	f := flagspec.Mauritius
	reading, err := SequentialOrdered(f, f.DefaultW, f.DefaultH, ReadingOrder)
	if err != nil {
		t.Fatal(err)
	}
	serp, err := SequentialOrdered(f, f.DefaultW, f.DefaultH, Serpentine)
	if err != nil {
		t.Fatal(err)
	}
	mr, ms := MovementCost(reading), MovementCost(serp)
	if ms >= mr {
		t.Fatalf("serpentine movement %d should beat reading order %d", ms, mr)
	}
	// On a 12-wide stripe, every row break costs 12 in reading order and
	// 1 in serpentine; the saving is substantial.
	if float64(ms) > 0.6*float64(mr) {
		t.Fatalf("serpentine saving too small: %d vs %d", ms, mr)
	}
}

func TestSerpentineAdjacencyProperty(t *testing.T) {
	// Within a contiguous rectangular layer, consecutive serpentine cells
	// are always Manhattan-adjacent.
	f := flagspec.Mauritius
	plan, err := SequentialOrdered(f, f.DefaultW, f.DefaultH, Serpentine)
	if err != nil {
		t.Fatal(err)
	}
	tasks := plan.PerProc[0]
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Layer != tasks[i-1].Layer {
			continue // layer change may jump
		}
		if d := tasks[i-1].Cell.ManhattanDist(tasks[i].Cell); d != 1 {
			t.Fatalf("serpentine jump of %d at task %d (%v -> %v)",
				d, i, tasks[i-1].Cell, tasks[i].Cell)
		}
	}
}

func TestReadingOrderMatchesSequential(t *testing.T) {
	f := flagspec.Jordan
	a, err := Sequential(f, f.DefaultW, f.DefaultH)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SequentialOrdered(f, f.DefaultW, f.DefaultH, ReadingOrder)
	if err != nil {
		t.Fatal(err)
	}
	if MovementCost(a) != MovementCost(b) {
		t.Fatalf("reading-order variant diverges from Sequential: %d vs %d",
			MovementCost(a), MovementCost(b))
	}
}
