package workplan

import (
	"fmt"
	"sort"

	"flagsim/internal/flagspec"
	"flagsim/internal/geom"
	"flagsim/internal/grid"
)

// Cell orderings. Reading order (the default everywhere else) jumps from
// the right edge back to the left at each row break, paying the full
// carriage-return movement; serpentine (boustrophedon) order alternates
// row direction so consecutive cells are always adjacent.
//
// On paper this is how experienced students actually color; in the
// simulator it isolates a movement-cost ablation with a direct PDC
// analogy: traversal order changes performance even when the work is
// identical — the unplugged version of cache-friendly access patterns.

// Ordering selects the cell traversal within each layer region.
type Ordering uint8

// Orderings.
const (
	// ReadingOrder is left-to-right, top-to-bottom.
	ReadingOrder Ordering = iota
	// Serpentine alternates row direction (boustrophedon).
	Serpentine
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case ReadingOrder:
		return "reading-order"
	case Serpentine:
		return "serpentine"
	default:
		return fmt.Sprintf("ordering(%d)", uint8(o))
	}
}

// reorder sorts cells into the requested traversal.
func reorder(cells []geom.Pt, o Ordering) []geom.Pt {
	out := append([]geom.Pt(nil), cells...)
	switch o {
	case Serpentine:
		sort.SliceStable(out, func(a, b int) bool {
			if out[a].Y != out[b].Y {
				return out[a].Y < out[b].Y
			}
			if out[a].Y%2 == 0 {
				return out[a].X < out[b].X
			}
			return out[a].X > out[b].X
		})
	default:
		sort.SliceStable(out, func(a, b int) bool {
			if out[a].Y != out[b].Y {
				return out[a].Y < out[b].Y
			}
			return out[a].X < out[b].X
		})
	}
	return out
}

// SequentialOrdered is Sequential with an explicit cell traversal within
// each layer.
func SequentialOrdered(f *flagspec.Flag, w, h int, o Ordering) (*Plan, error) {
	layerCells := grid.LayerCells(f, w, h)
	var tasks []Task
	counts := make([]int, len(f.Layers))
	for li, cells := range layerCells {
		for _, c := range reorder(cells, o) {
			tasks = append(tasks, Task{Cell: c, Color: f.Layers[li].Color, Layer: li})
		}
		counts[li] = len(cells)
	}
	plan := &Plan{
		FlagName: f.Name, W: w, H: h,
		Strategy:       fmt.Sprintf("sequential-%s", o),
		PerProc:        [][]Task{tasks},
		LayerDeps:      layerDepsOf(f, w, h),
		LayerCellCount: counts,
		Overpainted:    true,
	}
	return plan, plan.Validate()
}

// layerDepsOf re-exposes the internal dependency derivation for the
// ordering variants.
func layerDepsOf(f *flagspec.Flag, w, h int) [][]int {
	return layerDeps(f, w, h)
}

// MovementCost sums the Manhattan distances between consecutive tasks of
// each processor — the abstract travel a plan demands, independent of any
// processor's speed.
func MovementCost(p *Plan) int {
	total := 0
	for _, tasks := range p.PerProc {
		for i := 1; i < len(tasks); i++ {
			total += tasks[i-1].Cell.ManhattanDist(tasks[i].Cell)
		}
	}
	return total
}
