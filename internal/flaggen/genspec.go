// Package flaggen is the procedural flag generator: a seeded, hashable
// GenSpec — grid-size ranges, a layer budget, a weighted shape grammar
// over the geom primitives the built-in flags use, a palette policy, and
// a dependency policy that overlays emblems onto fields via DependsOn —
// compiles into valid flagspec.Flag values, one per (seed, variant).
//
// The generator exists so sweeps can draw from millions of distinct
// flags instead of the ~10 built-ins: every generated flag carries a
// canonical versioned name "gen:v1:<seed>:<variant>" that resolves
// anywhere a builtin name does (flagspec.Lookup, sweep specs, the wire
// DTOs, the workload population, the CLI), and the sweep layer
// content-addresses those names by the GenSpec's hash, so the memo
// cache, the dispatcher store, and the cluster result tier serve
// generated flags unchanged.
//
// Determinism contract: Flag(seed, variant) is a pure function of
// (GenSpec, seed, variant). Every decision class draws from its own
// rng.SplitLabeled sub-stream anchored at the variant label, so the i-th
// flag of a family is independent of how many flags were drawn before
// it, and adding a decision class later never perturbs the others.
package flaggen

import (
	"crypto/sha256"
	"fmt"
	"math"
	"strings"

	"flagsim/internal/palette"
)

// Family identifies one production of the shape grammar.
type Family uint8

// The grammar's families. Each mirrors a structural class the built-in
// catalog already exercises, so every generated flag is "plausible" to
// the activity: stripes (Mauritius/France), field-with-bands-and-emblem
// (Canada), centered or nordic-offset crosses (Sweden), saltires with
// overlaid crosses (Great Britain), and discs on fields (Japan).
const (
	FamHStripes Family = iota
	FamVStripes
	FamBands
	FamCross
	FamSaltire
	FamDisc
	famCount
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamHStripes:
		return "hstripes"
	case FamVStripes:
		return "vstripes"
	case FamBands:
		return "bands"
	case FamCross:
		return "cross"
	case FamSaltire:
		return "saltire"
	case FamDisc:
		return "disc"
	default:
		return fmt.Sprintf("family(%d)", uint8(f))
	}
}

// FamilyWeight is one weighted production of the grammar.
type FamilyWeight struct {
	Family Family
	Weight float64
}

// GenSpec parameterizes a family of generated flags. The zero value is
// not usable directly — call DefaultSpec, or fill every field; New
// validates. A GenSpec is pure data: it hashes canonically (Hash), and
// two equal-hash specs generate identical flags for every (seed,
// variant).
type GenSpec struct {
	// MinW..MaxW and MinH..MaxH bound the drawn handout grid size.
	MinW, MaxW int
	MinH, MaxH int
	// MinLayers..MaxLayers bound the per-flag layer budget. Families
	// spend as much of the drawn budget as their grammar allows (a
	// stripes flag turns budget into stripe count; a field family turns
	// it into overlay depth) and never exceed it.
	MinLayers, MaxLayers int
	// Families is the weighted grammar; a zero-weight family is never
	// drawn.
	Families []FamilyWeight
	// Colors is the palette pool. Adjacent stripes and emblem-over-field
	// pairs always receive distinct colors.
	Colors []palette.Color
	// EmblemProb is the probability that a stripes flag additionally
	// carries an emblem overlay (bands flags always do — that is the
	// family), expressed in [0,1]. Emblems depend on the layers they
	// overpaint via DependsOn, mirroring Canada and Great Britain.
	EmblemProb float64
	// FullCoverage requires the generated flag to paint every cell of
	// its grid; every family's base production already guarantees it,
	// and Validate re-checks it per flag.
	FullCoverage bool
}

// DefaultSpec is the v1 grammar: handout-scale grids, every family on,
// the full palette. The canonical names "gen:v1:..." denote this spec;
// changing it is a version bump (the content key hashes the spec, so a
// silent change would still miss, not corrupt, every cache).
func DefaultSpec() GenSpec {
	return GenSpec{
		MinW: 10, MaxW: 28,
		MinH: 6, MaxH: 16,
		MinLayers: 2, MaxLayers: 6,
		Families: []FamilyWeight{
			{FamHStripes, 3}, {FamVStripes, 2}, {FamBands, 2},
			{FamCross, 2}, {FamSaltire, 1}, {FamDisc, 2},
		},
		Colors:       palette.All(),
		EmblemProb:   0.35,
		FullCoverage: true,
	}
}

// Validate rejects specs that could generate invalid flags.
func (s GenSpec) Validate() error {
	switch {
	case s.MinW < 4 || s.MinH < 4:
		return fmt.Errorf("flaggen: min grid %dx%d below 4x4", s.MinW, s.MinH)
	case s.MaxW > 512 || s.MaxH > 512:
		return fmt.Errorf("flaggen: max grid %dx%d above 512x512", s.MaxW, s.MaxH)
	case s.MaxW < s.MinW || s.MaxH < s.MinH:
		return fmt.Errorf("flaggen: inverted grid range %d..%dx%d..%d", s.MinW, s.MaxW, s.MinH, s.MaxH)
	case s.MinLayers < 2:
		return fmt.Errorf("flaggen: MinLayers %d below 2", s.MinLayers)
	case s.MaxLayers < 4:
		// Every structural family needs up to four layers (field, two
		// bands, emblem); a tighter cap would silently break bands.
		return fmt.Errorf("flaggen: MaxLayers %d below 4", s.MaxLayers)
	case s.MaxLayers < s.MinLayers:
		return fmt.Errorf("flaggen: inverted layer range %d..%d", s.MinLayers, s.MaxLayers)
	case s.MaxLayers > 24:
		return fmt.Errorf("flaggen: MaxLayers %d above 24", s.MaxLayers)
	case len(s.Families) == 0:
		return fmt.Errorf("flaggen: no families")
	case len(s.Colors) < 3:
		return fmt.Errorf("flaggen: need at least 3 colors, have %d", len(s.Colors))
	case s.EmblemProb < 0 || s.EmblemProb > 1 || math.IsNaN(s.EmblemProb):
		return fmt.Errorf("flaggen: EmblemProb %v outside [0,1]", s.EmblemProb)
	}
	total := 0.0
	for _, fw := range s.Families {
		if fw.Family >= famCount {
			return fmt.Errorf("flaggen: unknown family %d", fw.Family)
		}
		if fw.Weight < 0 || math.IsNaN(fw.Weight) || math.IsInf(fw.Weight, 0) {
			return fmt.Errorf("flaggen: family %s has invalid weight %v", fw.Family, fw.Weight)
		}
		total += fw.Weight
	}
	if total <= 0 {
		return fmt.Errorf("flaggen: family weights sum to %v", total)
	}
	seen := [palette.NColors]bool{}
	for _, c := range s.Colors {
		if !c.Valid() || c == palette.None {
			return fmt.Errorf("flaggen: invalid palette color %d", uint8(c))
		}
		if seen[c] {
			return fmt.Errorf("flaggen: duplicate palette color %s", c)
		}
		seen[c] = true
	}
	return nil
}

// Hash returns the spec's content address: a SHA-256 digest over a
// versioned canonical encoding of every field that influences
// generation. It is the anchor of the sweep layer's content keys for
// generated flags — two processes agree on a cached result exactly when
// their grammars hash equal.
func (s GenSpec) Hash() [sha256.Size]byte {
	var b strings.Builder
	fmt.Fprintf(&b, "flaggen-v1|w=%d..%d|h=%d..%d|layers=%d..%d|fams=",
		s.MinW, s.MaxW, s.MinH, s.MaxH, s.MinLayers, s.MaxLayers)
	for _, fw := range s.Families {
		fmt.Fprintf(&b, "%d:%x,", fw.Family, math.Float64bits(fw.Weight))
	}
	b.WriteString("|colors=")
	for _, c := range s.Colors {
		fmt.Fprintf(&b, "%d,", c)
	}
	fmt.Fprintf(&b, "|emblem=%x|cover=%t", math.Float64bits(s.EmblemProb), s.FullCoverage)
	return sha256.Sum256([]byte(b.String()))
}
