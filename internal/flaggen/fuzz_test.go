package flaggen

import (
	"errors"
	"testing"

	"flagsim/internal/flagspec"
	"flagsim/internal/palette"
)

// FuzzGenSpec hardens the generator against arbitrary specs: any spec
// either fails New with an error, or compiles into a generator whose
// every flag passes flagspec.Validate — never a panic, never an invalid
// flag.
func FuzzGenSpec(f *testing.F) {
	f.Add(10, 28, 6, 16, 2, 6, 3.0, 2.0, 2.0, 2.0, 1.0, 2.0, uint8(0x3f), 0.35, true, uint64(42), uint64(0))
	f.Add(4, 4, 4, 4, 2, 4, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint8(0x07), 0.0, false, uint64(0), uint64(0))
	f.Add(4, 512, 4, 512, 2, 24, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, uint8(0x3f), 1.0, true, uint64(7), uint64(3))
	f.Add(-1, 0, 0, -1, 0, 0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint8(0), 2.0, false, uint64(1), uint64(1))
	f.Fuzz(func(t *testing.T, minW, maxW, minH, maxH, minL, maxL int,
		w0, w1, w2, w3, w4, w5 float64, colorMask uint8, emblemProb float64,
		fullCoverage bool, seed, variant uint64) {
		spec := GenSpec{
			MinW: minW, MaxW: maxW, MinH: minH, MaxH: maxH,
			MinLayers: minL, MaxLayers: maxL,
			Families: []FamilyWeight{
				{FamHStripes, w0}, {FamVStripes, w1}, {FamBands, w2},
				{FamCross, w3}, {FamSaltire, w4}, {FamDisc, w5},
			},
			EmblemProb:   emblemProb,
			FullCoverage: fullCoverage,
		}
		for _, c := range palette.All() {
			if colorMask&(1<<uint(c-1)) != 0 {
				spec.Colors = append(spec.Colors, c)
			}
		}
		g, err := New(spec)
		if err != nil {
			return
		}
		// Cap the raster work per input so the fuzzer spends its budget
		// on spec diversity, not one giant grid.
		if g.spec.MaxW > 64 || g.spec.MaxH > 64 {
			return
		}
		fl, err := g.Flag(seed, variant%64)
		if err != nil {
			t.Fatalf("compiled spec failed to generate: %v", err)
		}
		if err := flagspec.Validate(fl, fl.DefaultW, fl.DefaultH, spec.FullCoverage); err != nil {
			t.Fatalf("generated flag invalid: %v", err)
		}
	})
}

// FuzzGenFlagName hardens the name scheme: arbitrary strings never
// panic ParseName, Resolve, or flagspec.Lookup; accepted names
// round-trip exactly and resolve to valid flags; rejected names yield
// errors wrapping ErrBadName.
func FuzzGenFlagName(f *testing.F) {
	f.Add("gen:v1:42:7")
	f.Add("gen:v1:0:0")
	f.Add("gen:v1:18446744073709551615:18446744073709551615")
	f.Add("gen:v2:1:1")
	f.Add("gen:v1:042:7")
	f.Add("gen:v1:-1:+2")
	f.Add("gen:v1:1:1:1")
	f.Add("gen::::")
	f.Add("mauritius")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		ref, err := ParseName(name)
		if err != nil {
			if !errors.Is(err, ErrBadName) {
				t.Fatalf("ParseName(%q) error %v does not wrap ErrBadName", name, err)
			}
			// A name the parser rejects must never resolve.
			if _, rerr := Resolve(name); rerr == nil {
				t.Fatalf("Resolve accepted %q that ParseName rejected", name)
			}
			if IsName(name) {
				// In-scheme but malformed: Lookup must surface the typed
				// error, so transports can map it to a client error.
				if _, lerr := flagspec.Lookup(name); !errors.Is(lerr, ErrBadName) {
					t.Fatalf("Lookup(%q) error %v does not wrap ErrBadName", name, lerr)
				}
			}
			return
		}
		if ref.Name() != name {
			t.Fatalf("accepted name %q does not round-trip (canonical %q)", name, ref.Name())
		}
		fl, err := Resolve(name)
		if err != nil {
			t.Fatalf("canonical name %q failed to resolve: %v", name, err)
		}
		if fl.Name != name {
			t.Fatalf("resolved flag named %q, want %q", fl.Name, name)
		}
		if err := flagspec.Validate(fl, fl.DefaultW, fl.DefaultH, true); err != nil {
			t.Fatalf("resolved flag invalid: %v", err)
		}
		if _, ok := ContentKey(name); !ok {
			t.Fatalf("canonical name %q has no content key", name)
		}
	})
}
