package flaggen

// The compiler from (GenSpec, seed, variant) to flagspec.Flag.
//
// Decision classes draw from dedicated rng.SplitLabeled sub-streams
// anchored at the variant label — grid size, family choice, layer
// budget, palette order, geometry parameters, and emblem choices each
// own a stream — so adding a draw to one class never perturbs another,
// and Flag(seed, i) is independent of every other variant.
//
// Validity is guaranteed by construction, then re-checked: geometry
// parameters are clamped to raster-aware lower bounds (a cross arm at
// least wide enough to catch a cell center at the drawn grid, a saltire
// at least 0.75/min(W,H) half-wide because the nearest cell center sits
// within ~0.71/min(W,H) of the diagonal, disc radii likewise), stripe
// counts never exceed the axis resolution, and emblems that still
// rasterize to zero cells are deterministically repaired to a disc (or
// dropped). Every flag then passes flagspec.Validate before it leaves.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"

	"flagsim/internal/flagspec"
	"flagsim/internal/geom"
	"flagsim/internal/palette"
	"flagsim/internal/rng"
)

// Generator is a compiled GenSpec: validated once, hashed once. All
// Flag calls share the precomputed hash and weight table, so per-flag
// work is bounded by the flag itself, never by re-hashing the spec.
type Generator struct {
	spec    GenSpec
	hash    [sha256.Size]byte
	mix     uint64 // hash[:8] folded into every seed, so spec changes reseed everything
	weights []float64
}

// New compiles spec into a Generator. The spec is validated and hashed
// exactly once, here.
func New(spec GenSpec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, hash: spec.Hash()}
	g.mix = binary.LittleEndian.Uint64(g.hash[:8])
	g.weights = make([]float64, len(spec.Families))
	for i, fw := range spec.Families {
		g.weights[i] = fw.Weight
	}
	return g, nil
}

// Spec returns the compiled spec.
func (g *Generator) Spec() GenSpec { return g.spec }

// Hash returns the spec's content address (see GenSpec.Hash).
func (g *Generator) Hash() [sha256.Size]byte { return g.hash }

// Flag generates the variant-th flag of the seed's family. It is a pure
// function: same generator, seed, and variant always yield a deeply
// equal flag, regardless of what was generated before.
func (g *Generator) Flag(seed, variant uint64) (*flagspec.Flag, error) {
	vs := rng.New(seed ^ g.mix).SplitLabeled("variant:" + strconv.FormatUint(variant, 10))
	gridS := vs.SplitLabeled("grid")
	famS := vs.SplitLabeled("family")
	layS := vs.SplitLabeled("layers")
	palS := vs.SplitLabeled("palette")
	geoS := vs.SplitLabeled("geometry")
	embS := vs.SplitLabeled("emblem")

	w := randRange(gridS, g.spec.MinW, g.spec.MaxW)
	h := randRange(gridS, g.spec.MinH, g.spec.MaxH)
	family := g.spec.Families[famS.Pick(g.weights)].Family
	budget := randRange(layS, g.spec.MinLayers, g.spec.MaxLayers)

	b := &builder{
		w: w, h: h,
		pal:    newColorPicker(g.spec.Colors, palS),
		geo:    geoS,
		emb:    embS,
		budget: budget,
		prob:   g.spec.EmblemProb,
	}
	switch family {
	case FamHStripes:
		b.stripes(true)
	case FamVStripes:
		b.stripes(false)
	case FamBands:
		b.bands()
	case FamCross:
		b.cross()
	case FamSaltire:
		b.saltire()
	case FamDisc:
		b.disc()
	default:
		return nil, fmt.Errorf("flaggen: unknown family %d", family)
	}

	f := &flagspec.Flag{
		Name:     Name(seed, variant),
		DefaultW: w,
		DefaultH: h,
		Layers:   b.layers,
	}
	if err := flagspec.Validate(f, w, h, g.spec.FullCoverage); err != nil {
		return nil, fmt.Errorf("flaggen: spec %x seed %d variant %d: %w", g.hash[:4], seed, variant, err)
	}
	return f, nil
}

// builder accumulates one flag's layers.
type builder struct {
	w, h     int
	pal      *colorPicker
	geo, emb *rng.Stream
	layers   []flagspec.Layer
	budget   int
	prob     float64
}

func (b *builder) minDim() int {
	if b.w < b.h {
		return b.w
	}
	return b.h
}

func (b *builder) add(name string, c palette.Color, s geom.Shape, deps ...string) {
	b.layers = append(b.layers, flagspec.Layer{Name: name, Color: c, Shape: s, DependsOn: deps})
}

// stripes is the Mauritius/France production: n equal stripes along one
// axis, adjacent colors distinct, optionally an emblem overlay.
func (b *builder) stripes(horizontal bool) {
	axis := b.w
	if horizontal {
		axis = b.h
	}
	n := clamp(b.budget, 2, minInt(6, axis))
	prev := palette.None
	for i := 0; i < n; i++ {
		c := b.pal.next(prev)
		var s geom.Shape
		if horizontal {
			s = geom.HStripe(i, n)
		} else {
			s = geom.VStripe(i, n)
		}
		b.add("stripe-"+strconv.Itoa(i), c, s)
		prev = c
	}
	if n < b.budget && b.emb.Bernoulli(b.prob) {
		b.emblem("emblem", 0.5, 0.5, 0.10+b.geo.Float64()*0.12)
	}
}

// bands is the Canada production: a central field flanked by two side
// bands, with an emblem over the field when the budget allows.
func (b *builder) bands() {
	bw := 0.20 + b.geo.Float64()*0.12
	side := b.pal.next(palette.None)
	field := b.pal.next(side)
	b.add("band-left", side, geom.Band{X0: 0, Y0: 0, X1: bw, Y1: 1})
	b.add("field", field, geom.Band{X0: bw, Y0: 0, X1: 1 - bw, Y1: 1})
	b.add("band-right", side, geom.Band{X0: 1 - bw, Y0: 0, X1: 1, Y1: 1})
	if b.budget >= 4 {
		b.emblem("emblem", 0.5, 0.5, 0.16+b.geo.Float64()*0.14)
	}
}

// cross is the Sweden production: a field with a centered or
// nordic-offset cross, optionally fimbriated by an inner cross.
func (b *builder) cross() {
	lo := 0.51 / float64(b.minDim())
	fieldC := b.pal.next(palette.None)
	crossC := b.pal.next(fieldC)
	cx := 0.5
	if b.geo.Bernoulli(0.4) {
		cx = 0.375 // nordic hoist offset
	}
	hw := clampF(0.06+b.geo.Float64()*0.10, lo, 0.22)
	b.add("field", fieldC, geom.Full{})
	b.add("cross", crossC, geom.Cross{CX: cx, CY: 0.5, HalfWidth: hw}, "field")
	if b.budget >= 3 && b.emb.Bernoulli(0.5) {
		inner := b.pal.next(crossC)
		ihw := clampF(hw*0.45, lo, hw)
		b.add("cross-inner", inner, geom.Cross{CX: cx, CY: 0.5, HalfWidth: ihw}, "cross")
	}
}

// saltire is the Great Britain production: a field, a saltire, and —
// budget permitting — an overlaid cross painted after the diagonals,
// exactly the paint-order chain the paper's §III-D discusses.
func (b *builder) saltire() {
	lo := 0.75 / float64(b.minDim())
	fieldC := b.pal.next(palette.None)
	saltC := b.pal.next(fieldC)
	hw := clampF(0.05+b.geo.Float64()*0.08, lo, 0.22)
	b.add("field", fieldC, geom.Full{})
	b.add("saltire", saltC, geom.Saltire{HalfWidth: hw}, "field")
	if b.budget >= 3 && b.emb.Bernoulli(0.5) {
		crossC := b.pal.next(saltC)
		chw := clampF(0.05+b.geo.Float64()*0.07, 0.51/float64(b.minDim()), 0.2)
		b.add("cross", crossC, geom.Cross{CX: 0.5, CY: 0.5, HalfWidth: chw}, "saltire")
		if b.budget >= 4 && b.emb.Bernoulli(0.5) {
			inner := b.pal.next(crossC)
			b.add("cross-inner", inner, geom.Cross{CX: 0.5, CY: 0.5, HalfWidth: clampF(chw*0.45, 0.51/float64(b.minDim()), chw)}, "cross")
		}
	}
}

// disc is the Japan production: a field with a disc, optionally with an
// inner emblem.
func (b *builder) disc() {
	lo := 0.75 / float64(b.minDim())
	fieldC := b.pal.next(palette.None)
	discC := b.pal.next(fieldC)
	cx := 0.5
	if b.geo.Bernoulli(0.3) {
		cx = 0.38 // hoist-shifted sun
	}
	r := clampF(0.18+b.geo.Float64()*0.17, lo, 0.42)
	b.add("field", fieldC, geom.Full{})
	b.add("disc", discC, geom.Disc{CX: cx, CY: 0.5, R: r}, "field")
	if b.budget >= 3 && b.emb.Bernoulli(0.4) {
		b.emblem("disc-emblem", cx, 0.5, clampF(r*0.5, lo, r))
	}
}

// emblem overlays a figurative shape (star, maple leaf, or disc) at the
// given center and scale. The layer depends on every earlier layer it
// overpaints — the Canada/Great Britain dependency policy. Shapes that
// rasterize to zero cells at this grid are deterministically repaired
// to a disc; if even the disc misses (impossible for in-range scales,
// but the repair must terminate), the emblem is dropped.
func (b *builder) emblem(name string, cx, cy, scale float64) {
	lo := 0.75 / float64(b.minDim())
	var s geom.Shape
	switch b.emb.Intn(3) {
	case 0:
		s = geom.Disc{CX: cx, CY: cy, R: maxF(scale, lo)}
	case 1:
		s = geom.Star{CX: cx, CY: cy, R: scale, Inner: 0.45, Points: 5 + b.emb.Intn(4)}
	default:
		s = geom.MapleLeaf{CX: cx, CY: cy, Scale: scale * 2}
	}
	if !covers(s, b.w, b.h) {
		s = geom.Disc{CX: cx, CY: cy, R: maxF(scale, lo)}
		if !covers(s, b.w, b.h) {
			return
		}
	}
	c := b.pal.next(b.colorAt(cx, cy))
	b.add(name, c, s, b.overlapped(s)...)
}

// colorAt returns the currently visible color at the normalized point,
// so an emblem never vanishes into its background.
func (b *builder) colorAt(cx, cy float64) palette.Color {
	p := geom.Pt{X: clamp(int(cx*float64(b.w)), 0, b.w-1), Y: clamp(int(cy*float64(b.h)), 0, b.h-1)}
	c := palette.None
	for _, l := range b.layers {
		if l.Shape.Contains(p, b.w, b.h) {
			c = l.Color
		}
	}
	return c
}

// overlapped lists the names of existing layers sharing at least one
// cell with s at the flag's grid — the DependsOn set for an overlay.
func (b *builder) overlapped(s geom.Shape) []string {
	var deps []string
	for _, l := range b.layers {
		if shapesOverlap(s, l.Shape, b.w, b.h) {
			deps = append(deps, l.Name)
		}
	}
	return deps
}

func covers(s geom.Shape, w, h int) bool {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if s.Contains(geom.Pt{X: x, Y: y}, w, h) {
				return true
			}
		}
	}
	return false
}

func shapesOverlap(a, b geom.Shape, w, h int) bool {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := geom.Pt{X: x, Y: y}
			if a.Contains(p, w, h) && b.Contains(p, w, h) {
				return true
			}
		}
	}
	return false
}

// colorPicker deals colors from a seeded permutation of the pool,
// cycling and skipping the color to avoid. With the validated minimum
// of three pool colors, one avoidance always succeeds.
type colorPicker struct {
	pool []palette.Color
	idx  int
}

func newColorPicker(colors []palette.Color, s *rng.Stream) *colorPicker {
	perm := s.Perm(len(colors))
	pool := make([]palette.Color, len(colors))
	for i, j := range perm {
		pool[i] = colors[j]
	}
	return &colorPicker{pool: pool}
}

func (cp *colorPicker) next(avoid palette.Color) palette.Color {
	for {
		c := cp.pool[cp.idx%len(cp.pool)]
		cp.idx++
		if c != avoid {
			return c
		}
	}
}

func randRange(s *rng.Stream, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + s.Intn(hi-lo+1)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if lo > hi {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
