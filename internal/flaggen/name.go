package flaggen

// The naming scheme and resolver: canonical versioned names
// "gen:v1:<seed>:<variant>" denote flags of the default grammar, and an
// init-time flagspec.RegisterDynamic hook makes them resolve anywhere a
// builtin name does — sweep specs, the wire DTOs, the differential
// harness, the CLI — without any of those layers importing flaggen.
//
// ContentKey is the cache-address side of the scheme: the sweep layer
// substitutes it for the literal name when composing sweep keys, so
// generated-flag results are content-addressed by the grammar's hash.
// Two processes share a memoized result exactly when their default
// grammars agree; editing the grammar misses (never corrupts) every
// existing cache, store, and tier entry.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"flagsim/internal/flagspec"
)

// NamePrefix is the name-scheme prefix registered with flagspec.
const NamePrefix = "gen"

// ErrBadName is wrapped by every malformed-name error, so transport
// layers can classify them as client errors (HTTP 400, never 500).
var ErrBadName = errors.New("flaggen: malformed generated-flag name (want gen:v1:<seed>:<variant>)")

// Ref identifies one generated flag of the default grammar.
type Ref struct {
	Seed, Variant uint64
}

// Name returns r's canonical name.
func (r Ref) Name() string { return Name(r.Seed, r.Variant) }

// Name returns the canonical versioned name of the variant-th flag of
// the seed's family: "gen:v1:<seed>:<variant>".
func Name(seed, variant uint64) string {
	return NamePrefix + ":v1:" + strconv.FormatUint(seed, 10) + ":" + strconv.FormatUint(variant, 10)
}

// IsName reports whether s is in the generated-flag name scheme (it may
// still be malformed; ParseName decides).
func IsName(s string) bool { return strings.HasPrefix(s, NamePrefix+":") }

// ParseName parses a canonical generated-flag name. Only the exact
// canonical form round-trips: decimal seed and variant with no signs,
// spaces, or redundant leading zeros, version "v1". Every failure wraps
// ErrBadName.
func ParseName(s string) (Ref, error) {
	rest, ok := strings.CutPrefix(s, NamePrefix+":")
	if !ok {
		return Ref{}, fmt.Errorf("%w: %q lacks %q prefix", ErrBadName, s, NamePrefix+":")
	}
	version, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return Ref{}, fmt.Errorf("%w: %q", ErrBadName, s)
	}
	if version != "v1" {
		return Ref{}, fmt.Errorf("%w: unsupported version %q in %q", ErrBadName, version, s)
	}
	seedStr, variantStr, ok := strings.Cut(rest, ":")
	if !ok || strings.Contains(variantStr, ":") {
		return Ref{}, fmt.Errorf("%w: %q", ErrBadName, s)
	}
	seed, err := parseCanonicalUint(seedStr)
	if err != nil {
		return Ref{}, fmt.Errorf("%w: bad seed in %q: %v", ErrBadName, s, err)
	}
	variant, err := parseCanonicalUint(variantStr)
	if err != nil {
		return Ref{}, fmt.Errorf("%w: bad variant in %q: %v", ErrBadName, s, err)
	}
	return Ref{Seed: seed, Variant: variant}, nil
}

// parseCanonicalUint accepts exactly the strconv.FormatUint rendering:
// no sign, no leading zeros (except "0" itself), fits in uint64.
func parseCanonicalUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if canonical := strconv.FormatUint(v, 10); canonical != s {
		return 0, fmt.Errorf("non-canonical integer %q (want %q)", s, canonical)
	}
	return v, nil
}

// std is the compiled default grammar. Built once at init; its hash
// anchors every v1 content key.
var std = func() *Generator {
	g, err := New(DefaultSpec())
	if err != nil {
		panic(err)
	}
	return g
}()

// Default returns the compiled default-grammar generator behind the
// "gen:v1" name scheme.
func Default() *Generator { return std }

// Generate returns the variant-th flag of the seed's family under the
// default grammar. Equivalent to Default().Flag(seed, variant).
func Generate(seed, variant uint64) (*flagspec.Flag, error) {
	return std.Flag(seed, variant)
}

// ContentKey rewrites a generated-flag name into its cache address:
// "gen[<hex of grammar hash>]:v1:<seed>:<variant>". The sweep layer
// substitutes this for the literal flag name when composing spec keys.
// Returns ok=false for names outside the scheme or malformed — callers
// keep the literal name and resolution fails loudly later.
func ContentKey(name string) (string, bool) {
	if !IsName(name) {
		return "", false
	}
	ref, err := ParseName(name)
	if err != nil {
		return "", false
	}
	h := std.Hash()
	return fmt.Sprintf("%s[%x]:v1:%d:%d", NamePrefix, h[:8], ref.Seed, ref.Variant), true
}

// resolveCache memoizes resolved flags so hot sweep loops and the HTTP
// handlers re-use one immutable *Flag per name, like the builtin table.
// Bounded by a FIFO ring: a million-flag sweep cycles through, it never
// grows without bound.
const resolveCacheCap = 4096

var resolveCache = struct {
	sync.Mutex
	m       map[Ref]*flagspec.Flag
	ring    [resolveCacheCap]Ref
	n, head int
}{m: make(map[Ref]*flagspec.Flag, 64)}

// Resolve resolves a canonical generated-flag name to its flag. It is
// the function registered with flagspec for the "gen" prefix; malformed
// names yield errors wrapping ErrBadName.
func Resolve(name string) (*flagspec.Flag, error) {
	ref, err := ParseName(name)
	if err != nil {
		return nil, err
	}
	resolveCache.Lock()
	f := resolveCache.m[ref]
	resolveCache.Unlock()
	if f != nil {
		return f, nil
	}
	f, err = std.Flag(ref.Seed, ref.Variant)
	if err != nil {
		return nil, err
	}
	resolveCache.Lock()
	if have := resolveCache.m[ref]; have != nil {
		f = have // keep the first resolution pointer-stable
	} else if resolveCache.n < resolveCacheCap {
		resolveCache.ring[(resolveCache.head+resolveCache.n)%resolveCacheCap] = ref
		resolveCache.n++
		resolveCache.m[ref] = f
	} else {
		delete(resolveCache.m, resolveCache.ring[resolveCache.head])
		resolveCache.ring[resolveCache.head] = ref
		resolveCache.head = (resolveCache.head + 1) % resolveCacheCap
		resolveCache.m[ref] = f
	}
	resolveCache.Unlock()
	return f, nil
}

func init() {
	flagspec.RegisterDynamic(NamePrefix, Resolve)
}
