package flaggen_test

// The oracle-certification corpus: a 64-flag generated sample pushed
// through the differential harness — every flag run under all three
// executors with the nine-invariant check.Oracle installed, grids
// required byte-identical per executor and zero findings overall. This
// is the external test package because check depends (via sweep) on
// flaggen; the corpus closes the loop the other way.

import (
	"fmt"
	"testing"

	"flagsim/internal/check"
	"flagsim/internal/core"
	"flagsim/internal/fault"
	"flagsim/internal/flaggen"
	"flagsim/internal/flagspec"
)

func TestGeneratedCorpusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("64-flag differential corpus is not short")
	}
	const corpusSeed, corpusSize = 1337, 64
	for v := uint64(0); v < corpusSize; v++ {
		name := flaggen.Name(corpusSeed, v)
		f, err := flagspec.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := flagspec.Validate(f, f.DefaultW, f.DefaultH, true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Run(fmt.Sprintf("variant-%d", v), func(t *testing.T) {
			t.Parallel()
			// One fault-free plan: the corpus certifies executor
			// equivalence and the oracle invariants across the generated
			// space; the fault plans have their own differential suite.
			// Scenario 4 (vertical slices), not the pipelined default:
			// pipelined rotation requires independent layers, and the
			// grammar deliberately generates dependency chains.
			res, err := check.Diff(nil, check.DiffConfig{
				Flag:     name,
				Scenario: core.S4,
				Seed:     v,
				Plans:    []*fault.Plan{nil},
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := res.Err(); err != nil {
				t.Fatalf("%s: %v\n%s", name, err, res.Report())
			}
			// Three executors ran; the harness already requires their
			// grids identical, but assert it explicitly — that is the
			// corpus's headline claim.
			if len(res.Rows) != 3 {
				t.Fatalf("%s: %d rows, want 3", name, len(res.Rows))
			}
			for _, row := range res.Rows[1:] {
				if row.GridSHA != res.Rows[0].GridSHA {
					t.Fatalf("%s: %s grid %s differs from %s grid %s", name,
						row.Exec, row.GridSHA[:12], res.Rows[0].Exec, res.Rows[0].GridSHA[:12])
				}
			}
		})
	}
}
