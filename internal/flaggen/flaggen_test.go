package flaggen

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/palette"
	"flagsim/internal/rng"
)

// fingerprint renders a flag to a byte-exact identity: the full layer
// structure (shapes, colors, dependencies) plus the rasterized grid, so
// "same fingerprint" means "same flag" in every way the engine can see.
func fingerprint(t *testing.T, f *flagspec.Flag) string {
	t.Helper()
	g, err := grid.Rasterize(f, f.DefaultW, f.DefaultH)
	if err != nil {
		t.Fatalf("rasterize %s: %v", f.Name, err)
	}
	return fmt.Sprintf("%s|%dx%d|%#v|%s", f.Name, f.DefaultW, f.DefaultH, f.Layers, g.String())
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		for v := uint64(0); v < 16; v++ {
			a, err := Generate(seed, v)
			if err != nil {
				t.Fatalf("seed %d variant %d: %v", seed, v, err)
			}
			b, err := Generate(seed, v)
			if err != nil {
				t.Fatalf("seed %d variant %d (repeat): %v", seed, v, err)
			}
			if fa, fb := fingerprint(t, a), fingerprint(t, b); fa != fb {
				t.Fatalf("seed %d variant %d: repeated generation diverged:\n%s\nvs\n%s", seed, v, fa, fb)
			}
		}
	}
}

// TestGenerateDrawOrderIndependent is the SplitLabeled contract: the
// i-th flag of a family is identical whether it is generated first,
// last, or interleaved with other variants and other seeds.
func TestGenerateDrawOrderIndependent(t *testing.T) {
	const n = 16
	ref := make([]string, n)
	for v := 0; v < n; v++ {
		f, err := Generate(42, uint64(v))
		if err != nil {
			t.Fatal(err)
		}
		ref[v] = fingerprint(t, f)
	}
	// A shuffled draw order, interleaved with draws from other families.
	order := rng.New(7).Perm(n)
	for _, v := range order {
		if _, err := Generate(uint64(v), 99); err != nil { // interfering draw
			t.Fatal(err)
		}
		f, err := Generate(42, uint64(v))
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(t, f); got != ref[v] {
			t.Fatalf("variant %d differs when drawn out of order:\n%s\nvs\n%s", v, got, ref[v])
		}
	}
}

func TestGeneratedFlagsValid(t *testing.T) {
	spec := DefaultSpec()
	for v := uint64(0); v < 256; v++ {
		f, err := Generate(9, v)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if err := flagspec.Validate(f, f.DefaultW, f.DefaultH, true); err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if len(f.Layers) < 2 || len(f.Layers) > spec.MaxLayers {
			t.Fatalf("variant %d: %d layers outside [2,%d]", v, len(f.Layers), spec.MaxLayers)
		}
		if f.DefaultW < spec.MinW || f.DefaultW > spec.MaxW || f.DefaultH < spec.MinH || f.DefaultH > spec.MaxH {
			t.Fatalf("variant %d: grid %dx%d outside spec ranges", v, f.DefaultW, f.DefaultH)
		}
		if f.Name != Name(9, v) {
			t.Fatalf("variant %d: name %q, want %q", v, f.Name, Name(9, v))
		}
	}
}

func TestGenerateCoversAllFamilies(t *testing.T) {
	// Every family should appear within a reasonable sample; a missing
	// one means the grammar dispatch is broken.
	seen := map[string]bool{}
	for v := uint64(0); v < 200; v++ {
		f, err := Generate(3, v)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case f.Layer("stripe-0") != nil:
			seen["stripes"] = true
		case f.Layer("band-left") != nil:
			seen["bands"] = true
		case f.Layer("saltire") != nil:
			seen["saltire"] = true
		case f.Layer("disc") != nil:
			seen["disc"] = true
		case f.Layer("cross") != nil:
			seen["cross"] = true
		}
	}
	for _, fam := range []string{"stripes", "bands", "saltire", "disc", "cross"} {
		if !seen[fam] {
			t.Errorf("family %s never generated in 200 variants", fam)
		}
	}
}

func TestNameRoundTrip(t *testing.T) {
	cases := []Ref{{0, 0}, {42, 7}, {1 << 63, 999999}, {^uint64(0), ^uint64(0)}}
	for _, ref := range cases {
		name := ref.Name()
		got, err := ParseName(name)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", name, err)
		}
		if got != ref {
			t.Fatalf("ParseName(%q) = %+v, want %+v", name, got, ref)
		}
	}
}

func TestParseNameRejectsMalformed(t *testing.T) {
	bad := []string{
		"", "gen", "gen:", "gen:v1", "gen:v1:", "gen:v1:42", "gen:v1:42:",
		"gen:v2:42:7", "gen:v1:42:7:9", "gen:v1:-1:0", "gen:v1:+1:0",
		"gen:v1:042:7", "gen:v1:42:007", "gen:v1: 42:7", "gen:v1:42:7 ",
		"gen:v1:18446744073709551616:0", // uint64 overflow
		"gen:v1:0x2a:0", "mauritius", "g:v1:1:1",
	}
	for _, name := range bad {
		if _, err := ParseName(name); err == nil {
			t.Errorf("ParseName(%q) accepted a malformed name", name)
		} else if !errors.Is(err, ErrBadName) {
			t.Errorf("ParseName(%q) error %v does not wrap ErrBadName", name, err)
		}
	}
}

func TestLookupResolvesGenerated(t *testing.T) {
	name := Name(42, 7)
	f, err := flagspec.Lookup(name)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", name, err)
	}
	if f.Name != name {
		t.Fatalf("resolved flag named %q, want %q", f.Name, name)
	}
	// Resolution is pointer-stable via the cache, like the builtin table.
	again, err := flagspec.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if f != again {
		t.Error("repeated Lookup returned a different *Flag pointer")
	}
	// Malformed names surface the typed error through Lookup.
	if _, err := flagspec.Lookup("gen:v1:nope:0"); !errors.Is(err, ErrBadName) {
		t.Errorf("Lookup of malformed gen name: error %v does not wrap ErrBadName", err)
	}
}

func TestContentKey(t *testing.T) {
	ck, ok := ContentKey(Name(42, 7))
	if !ok {
		t.Fatal("ContentKey rejected a canonical name")
	}
	h := Default().Hash()
	want := fmt.Sprintf("gen[%x]:v1:42:7", h[:8])
	if ck != want {
		t.Fatalf("ContentKey = %q, want %q", ck, want)
	}
	if !strings.Contains(ck, fmt.Sprintf("%x", h[:8])) {
		t.Fatalf("content key %q does not embed the grammar hash", ck)
	}
	for _, name := range []string{"mauritius", "gen:v1:042:7", "gen:v2:1:1", "gen:"} {
		if _, ok := ContentKey(name); ok {
			t.Errorf("ContentKey(%q) = ok for a non-addressable name", name)
		}
	}
}

func TestGrammarHashDistinguishesSpecs(t *testing.T) {
	a := DefaultSpec()
	b := DefaultSpec()
	if a.Hash() != b.Hash() {
		t.Fatal("equal specs hash differently")
	}
	b.Families[0].Weight++
	if a.Hash() == b.Hash() {
		t.Fatal("different grammars hash equal")
	}
	c := DefaultSpec()
	c.EmblemProb += 0.01
	if a.Hash() == c.Hash() {
		t.Fatal("different emblem policies hash equal")
	}
}

func TestNewRejectsInvalidSpecs(t *testing.T) {
	mutations := []func(*GenSpec){
		func(s *GenSpec) { s.MinW = 0 },
		func(s *GenSpec) { s.MaxW = s.MinW - 1 },
		func(s *GenSpec) { s.MaxW = 1 << 20 },
		func(s *GenSpec) { s.MinLayers = 1 },
		func(s *GenSpec) { s.MaxLayers = 3 },
		func(s *GenSpec) { s.MaxLayers = 100 },
		func(s *GenSpec) { s.Families = nil },
		func(s *GenSpec) { s.Families = []FamilyWeight{{Family: 99, Weight: 1}} },
		func(s *GenSpec) { s.Families = []FamilyWeight{{Family: FamDisc, Weight: 0}} },
		func(s *GenSpec) { s.Families[0].Weight = -1 },
		func(s *GenSpec) { s.Colors = s.Colors[:2] },
		func(s *GenSpec) { s.Colors = append(s.Colors, s.Colors[0]) },
		func(s *GenSpec) { s.Colors[0] = palette.None },
		func(s *GenSpec) { s.EmblemProb = 1.5 },
		func(s *GenSpec) { s.EmblemProb = -0.1 },
	}
	for i, mutate := range mutations {
		spec := DefaultSpec()
		mutate(&spec)
		if _, err := New(spec); err == nil {
			t.Errorf("mutation %d: New accepted an invalid spec", i)
		}
	}
}

func TestCustomSpecGenerates(t *testing.T) {
	spec := GenSpec{
		MinW: 4, MaxW: 8, MinH: 4, MaxH: 8,
		MinLayers: 2, MaxLayers: 4,
		Families:     []FamilyWeight{{FamSaltire, 1}, {FamCross, 1}},
		Colors:       []palette.Color{palette.Red, palette.White, palette.Blue},
		EmblemProb:   1,
		FullCoverage: true,
	}
	g, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 64; v++ {
		f, err := g.Flag(5, v)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if f.Layer("saltire") == nil && f.Layer("cross") == nil {
			t.Fatalf("variant %d: neither grammar family produced", v)
		}
	}
	if g.Hash() == Default().Hash() {
		t.Fatal("custom grammar hashes equal to the default grammar")
	}
}

func TestResolveCacheBounded(t *testing.T) {
	for v := uint64(0); v < resolveCacheCap+256; v++ {
		if _, err := Resolve(Name(11, v)); err != nil {
			t.Fatal(err)
		}
	}
	resolveCache.Lock()
	n := len(resolveCache.m)
	resolveCache.Unlock()
	if n > resolveCacheCap {
		t.Fatalf("resolve cache grew to %d entries (cap %d)", n, resolveCacheCap)
	}
}
