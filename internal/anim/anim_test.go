package anim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"flagsim/internal/core"
	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/sim"
)

func tracedRun(t *testing.T, id core.ScenarioID) *sim.Result {
	t.Helper()
	scen, err := core.ScenarioByID(id)
	if err != nil {
		t.Fatal(err)
	}
	team, err := core.NewTeam(scen.Workers, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.RunSpec{
		Flag:     flagspec.Mauritius,
		Scenario: scen,
		Team:     team,
		Set:      implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors()),
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFramesStartBlankEndComplete(t *testing.T) {
	res := tracedRun(t, core.S3)
	frames, err := Frames(res, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("only %d frames", len(frames))
	}
	if frames[0].PaintedCells() != 0 {
		t.Fatalf("first frame has %d painted cells, want 0", frames[0].PaintedCells())
	}
	want, err := grid.RasterizeDefault(flagspec.Mauritius)
	if err != nil {
		t.Fatal(err)
	}
	if !frames[len(frames)-1].Equal(want) {
		t.Fatal("final frame is not the completed flag")
	}
}

func TestProgressMonotone(t *testing.T) {
	res := tracedRun(t, core.S4)
	progress, err := Progress(res, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatalf("progress regressed at frame %d: %v", i, progress)
		}
	}
	if progress[len(progress)-1] != 96 {
		t.Fatalf("final progress %d, want 96", progress[len(progress)-1])
	}
}

func TestPipelineFillVisibleInProgress(t *testing.T) {
	// In scenario 4 the first quarter of the run paints more slowly
	// (contention at the start) than a contention-free scenario 3 run of
	// equal elapsed fraction.
	s3 := tracedRun(t, core.S3)
	s4 := tracedRun(t, core.S4)
	p3, err := Progress(s3, s3.Makespan/10)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Progress(s4, s4.Makespan/10)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the second sample (one-tenth of the way through each run):
	// relative progress in S4 should lag S3's.
	r3 := float64(p3[2]) / 96
	r4 := float64(p4[2]) / 96
	if r4 >= r3 {
		t.Fatalf("s4 early progress %.2f should lag s3's %.2f (pipeline fill)", r4, r3)
	}
}

func TestWriteGIF(t *testing.T) {
	res := tracedRun(t, core.S3)
	var buf bytes.Buffer
	if err := WriteGIF(&buf, res, Options{Step: 10 * time.Second, Scale: 4}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("GIF89a")) {
		t.Fatalf("not a GIF: %q", data[:6])
	}
	if len(data) < 500 {
		t.Fatalf("implausibly small GIF: %d bytes", len(data))
	}
}

func TestFlipbook(t *testing.T) {
	res := tracedRun(t, core.S3)
	var buf bytes.Buffer
	if err := Flipbook(&buf, res, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "--- frame 0 (t=0s, 0/96 cells) ---") {
		t.Fatalf("missing first frame header:\n%s", out[:200])
	}
	if !strings.Contains(out, "96/96 cells") {
		t.Fatal("missing complete final frame")
	}
	if !strings.Contains(out, "RRRRRRRRRRRR") {
		t.Fatal("frames do not render the grid")
	}
}

func TestRequiresTrace(t *testing.T) {
	res := tracedRun(t, core.S1)
	res.Trace = nil
	if _, err := Frames(res, time.Second); err == nil {
		t.Fatal("untraced run should error")
	}
	if _, err := Frames(tracedRun(t, core.S1), 0); err == nil {
		t.Fatal("zero step should error")
	}
}
