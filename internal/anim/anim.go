// Package anim turns a traced simulation run into an animation of the
// flag being colored — the software stand-in for the activity's
// "custom-created animations to visualize schedules with different
// numbers of processors" (§III-D, Suo 2025).
//
// Two outputs are supported, both stdlib-only:
//
//   - an animated GIF (image/gif) sampling the grid at a fixed virtual
//     time step, and
//   - an ASCII flipbook (one rendered grid per frame) for terminals and
//     tests.
//
// Frames are reconstructed from the run's paint spans, so the animation
// shows exactly what the simulator computed: the staircase of scenario 4's
// pipeline fill is visible as columns lighting up one after another.
package anim

import (
	"fmt"
	"image"
	"image/color"
	"image/gif"
	"io"
	"sort"
	"time"

	"flagsim/internal/geom"
	"flagsim/internal/grid"
	"flagsim/internal/palette"
	"flagsim/internal/sim"
)

// Options control frame generation.
type Options struct {
	// Step is the virtual time between frames. Zero derives a step that
	// yields ~40 frames.
	Step time.Duration
	// Scale is pixels per cell in GIF output (default 8).
	Scale int
	// DelayCS is the GIF per-frame delay in centiseconds (default 8).
	DelayCS int
	// HoldLastCS is the extra delay on the final frame (default 150).
	HoldLastCS int
}

func (o Options) withDefaults(makespan time.Duration) Options {
	if o.Step <= 0 {
		o.Step = makespan / 40
		if o.Step <= 0 {
			o.Step = time.Second
		}
	}
	if o.Scale <= 0 {
		o.Scale = 8
	}
	if o.DelayCS <= 0 {
		o.DelayCS = 8
	}
	if o.HoldLastCS <= 0 {
		o.HoldLastCS = 150
	}
	return o
}

// paintEvent is one cell completion in time order.
type paintEvent struct {
	at    time.Duration
	cell  int // y*w + x
	color palette.Color
}

// events extracts the paint completions from a traced run, time-ordered.
func events(res *sim.Result) ([]paintEvent, error) {
	if res.Trace == nil {
		return nil, fmt.Errorf("anim: run has no trace; set Config.Trace")
	}
	w := res.Plan.W
	var out []paintEvent
	for _, sp := range res.Trace {
		if sp.Kind != sim.SpanPaint {
			continue
		}
		out = append(out, paintEvent{
			at:    sp.End,
			cell:  sp.Cell.Y*w + sp.Cell.X,
			color: sp.Color,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("anim: trace has no paint spans")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out, nil
}

// Frames reconstructs the grid at each time step. The first frame is the
// blank grid at t=0; the last frame is at the makespan (complete image).
func Frames(res *sim.Result, step time.Duration) ([]*grid.Grid, error) {
	if step <= 0 {
		return nil, fmt.Errorf("anim: non-positive step %v", step)
	}
	evs, err := events(res)
	if err != nil {
		return nil, err
	}
	g := grid.New(res.Plan.W, res.Plan.H)
	var frames []*grid.Grid
	next := 0
	for t := time.Duration(0); ; t += step {
		for next < len(evs) && evs[next].at <= t {
			e := evs[next]
			if err := g.Paint(cellPt(e.cell, res.Plan.W), e.color); err != nil {
				return nil, err
			}
			next++
		}
		frames = append(frames, g.Clone())
		if t >= res.Makespan {
			break
		}
	}
	// Ensure the final frame is complete even if rounding stopped early.
	for next < len(evs) {
		e := evs[next]
		if err := g.Paint(cellPt(e.cell, res.Plan.W), e.color); err != nil {
			return nil, err
		}
		next++
	}
	if !frames[len(frames)-1].Equal(g) {
		frames = append(frames, g.Clone())
	}
	return frames, nil
}

func cellPt(idx, w int) geom.Pt {
	return geom.Pt{X: idx % w, Y: idx / w}
}

// WriteGIF renders the animation as an animated GIF.
func WriteGIF(w io.Writer, res *sim.Result, opts Options) error {
	opts = opts.withDefaults(res.Makespan)
	frames, err := Frames(res, opts.Step)
	if err != nil {
		return err
	}
	pal := gifPalette()
	var g gif.GIF
	for i, frame := range frames {
		img := frameImage(frame, opts.Scale, pal)
		delay := opts.DelayCS
		if i == len(frames)-1 {
			delay = opts.HoldLastCS
		}
		g.Image = append(g.Image, img)
		g.Delay = append(g.Delay, delay)
	}
	g.LoopCount = 0 // loop forever
	return gif.EncodeAll(w, &g)
}

// gifPalette maps the activity's colors (plus blank) to a GIF palette.
func gifPalette() color.Palette {
	pal := color.Palette{color.RGBA{0xee, 0xee, 0xee, 0xff}} // None
	for _, c := range palette.All() {
		r, g, b := c.RGB()
		pal = append(pal, color.RGBA{r, g, b, 0xff})
	}
	// Gridline color.
	pal = append(pal, color.RGBA{0x88, 0x88, 0x88, 0xff})
	return pal
}

// paletteIndex maps a cell color to its gifPalette index.
func paletteIndex(c palette.Color) uint8 {
	if c == palette.None {
		return 0
	}
	for i, pc := range palette.All() {
		if pc == c {
			return uint8(i + 1)
		}
	}
	return 0
}

// frameImage rasterizes one grid into a paletted image with 1px
// gridlines, matching the handout look.
func frameImage(g *grid.Grid, scale int, pal color.Palette) *image.Paletted {
	w, h := g.W()*scale+1, g.H()*scale+1
	img := image.NewPaletted(image.Rect(0, 0, w, h), pal)
	gridline := uint8(len(pal) - 1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x%scale == 0 || y%scale == 0 {
				img.SetColorIndex(x, y, gridline)
				continue
			}
			c := g.At(geom.Pt{X: x / scale, Y: y / scale})
			img.SetColorIndex(x, y, paletteIndex(c))
		}
	}
	return img
}

// Flipbook writes the animation as ASCII frames separated by a frame
// header — terminal-friendly and directly assertable in tests.
func Flipbook(w io.Writer, res *sim.Result, step time.Duration) error {
	frames, err := Frames(res, step)
	if err != nil {
		return err
	}
	for i, frame := range frames {
		t := time.Duration(i) * step
		if t > res.Makespan {
			t = res.Makespan
		}
		if _, err := fmt.Fprintf(w, "--- frame %d (t=%v, %d/%d cells) ---\n%s",
			i, t.Round(time.Second), frame.PaintedCells(), frame.W()*frame.H(), frame.String()); err != nil {
			return err
		}
	}
	return nil
}

// Progress returns the painted-cell count at each step — the burn-up
// curve of the run, used by tests and quick textual summaries.
func Progress(res *sim.Result, step time.Duration) ([]int, error) {
	frames, err := Frames(res, step)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(frames))
	for i, f := range frames {
		out[i] = f.PaintedCells()
	}
	return out, nil
}
