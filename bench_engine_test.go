package flagsim_test

// Engine benchmarks: the unified executor core under each TaskSource
// policy, at the same workload size, so a regression in the shared engine
// shows up in all three and a regression in one policy's bookkeeping shows
// up alone.
//
// The three core benchmarks measure warm-arena runs: the team, implement
// set, and arena are built once, so every iteration is a pure engine run
// through recycled buffers. That is the configuration the arena work
// targets, and it is what makes the allocation numbers meaningful — a
// warm run of any executor must report 0 allocs/op, and benchguard gates
// on it (see cmd/benchguard). BenchmarkEngineStaticNilHooks covers the
// pooled path (no caller arena) for the same workload.

import (
	"testing"

	"flagsim/internal/check"
	"flagsim/internal/fault"
	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/obs"
	"flagsim/internal/processor"
	"flagsim/internal/rng"
	"flagsim/internal/sim"
	"flagsim/internal/workplan"
)

// benchEngineTeam builds a mildly skewed team so the steal benchmark has
// migrations to perform.
func benchEngineTeam(b *testing.B, skills ...float64) []*processor.Processor {
	b.Helper()
	out := make([]*processor.Processor, len(skills))
	for i, s := range skills {
		p := processor.DefaultProfile("P")
		p.Name = "P" + string(rune('1'+i))
		p.Skill = s
		pr, err := processor.New(p, rng.New(benchSeed).SplitLabeled(p.Name))
		if err != nil {
			b.Fatal(err)
		}
		out[i] = pr
	}
	return out
}

// benchEnginePlan is the shared static workload.
func benchEnginePlan(b *testing.B) *workplan.Plan {
	b.Helper()
	plan, err := workplan.VerticalSlices(flagspec.Mauritius, 64, 32, 4, true)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

func BenchmarkEngineStatic(b *testing.B) {
	f := flagspec.Mauritius
	plan := benchEnginePlan(b)
	procs := benchEngineTeam(b, 1.3, 1.0, 1.0, 0.5)
	set := implement.NewSet(implement.ThickMarker, f.Colors())
	arena := sim.NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Plan: plan, Procs: procs, Set: set, Arena: arena,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

func BenchmarkEngineDynamic(b *testing.B) {
	f := flagspec.Mauritius
	procs := benchEngineTeam(b, 1.3, 1.0, 1.0, 0.5)
	set := implement.NewSet(implement.ThickMarker, f.Colors())
	arena := sim.NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunDynamic(sim.DynamicConfig{
			Flag: f, W: 64, H: 32,
			Procs: procs, Set: set, Arena: arena,
			Policy: sim.PullColorAffinity,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

func BenchmarkEngineSteal(b *testing.B) {
	f := flagspec.Mauritius
	plan := benchEnginePlan(b)
	procs := benchEngineTeam(b, 1.3, 1.0, 1.0, 0.5)
	set := implement.NewSet(implement.ThickMarker, f.Colors())
	arena := sim.NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	var steals int
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSteal(sim.Config{
			Plan: plan, Procs: procs, Set: set, Arena: arena,
		})
		if err != nil {
			b.Fatal(err)
		}
		steals = res.Steals
	}
	b.ReportMetric(float64(steals), "steals/run")
}

// BenchmarkEngineStaticNilHooks is the specialized-path proof: the same
// workload with no probe, no trace, and no fault injector, run through
// the shared pool rather than a caller arena. With every hook nil the
// engine selects the fast opcode bodies at run entry — straight-line
// resource mechanics with no hook sites compiled in — so this number is
// the floor the instrumented benchmarks (Probed, Faults, Oracle) are
// compared against; the gap between it and BenchmarkEngineStatic is the
// pooled path's per-run result allocations.
func BenchmarkEngineStaticNilHooks(b *testing.B) {
	plan := benchEnginePlan(b)
	procs := benchEngineTeam(b, 1.3, 1.0, 1.0, 0.5)
	set := implement.NewSet(implement.ThickMarker, flagspec.Mauritius.Colors())
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Plan: plan, Procs: procs, Set: set,
			Probes: nil, Faults: nil,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkEngineStaticProbed is BenchmarkEngineStatic with an engine
// metrics probe installed — the per-event observability tax every pooled
// compute pays once a server wires MetricsProbe into the sweep pool.
// Installing any probe selects the instrumented opcode bodies, so the
// delta against BenchmarkEngineStatic is the full hook-path cost.
func BenchmarkEngineStaticProbed(b *testing.B) {
	f := flagspec.Mauritius
	plan := benchEnginePlan(b)
	procs := benchEngineTeam(b, 1.3, 1.0, 1.0, 0.5)
	set := implement.NewSet(implement.ThickMarker, f.Colors())
	arena := sim.NewArena()
	probe := obs.NewMetricsProbe(obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Plan: plan, Procs: procs, Set: set, Arena: arena,
			Probes: []sim.Probe{probe},
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkEngineStaticFaults is BenchmarkEngineStatic with the heavy
// fault preset compiled in — the full fault-hook tax: a stall-window
// scan per advance plus one stateless hash per cell for each enabled
// fault class. Guarded so injection stays a bounded, predictable cost.
func BenchmarkEngineStaticFaults(b *testing.B) {
	f := flagspec.Mauritius
	plan := benchEnginePlan(b)
	procs := benchEngineTeam(b, 1.3, 1.0, 1.0, 0.5)
	set := implement.NewSet(implement.ThickMarker, f.Colors())
	arena := sim.NewArena()
	fp, err := fault.Preset("heavy", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	inj, err := fault.New(fp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Plan: plan, Procs: procs, Set: set, Arena: arena,
			Faults: inj,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkEngineStaticOracle is BenchmarkEngineStatic with the
// invariant oracle verifying every run — the cost of flagcheck-style
// verification: per-event map bookkeeping plus the result-time span,
// conservation, and grid-reference sweeps. Compare against
// BenchmarkEngineStatic for the oracle's overhead; the bare benchmark
// staying flat is the proof the oracle is off the hot path when not
// installed (a nil-probe slice and a nil fault hook cost nothing).
func BenchmarkEngineStaticOracle(b *testing.B) {
	f := flagspec.Mauritius
	plan := benchEnginePlan(b)
	procs := benchEngineTeam(b, 1.3, 1.0, 1.0, 0.5)
	set := implement.NewSet(implement.ThickMarker, f.Colors())
	arena := sim.NewArena()
	oracle := check.NewOracle()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Plan: plan, Procs: procs, Set: set, Arena: arena,
			Probes: []sim.Probe{oracle},
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.StopTimer()
	if err := oracle.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(events), "events/run")
}
