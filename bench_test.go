package flagsim_test

// The benchmark harness: one benchmark per table/figure/ablation in
// DESIGN.md's experiment index (E1–E22). Each benchmark regenerates its
// artifact per iteration and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` doubles as the reproduction run.

import (
	"io"
	"testing"
	"time"

	"flagsim"
	"flagsim/internal/classroom"
	"flagsim/internal/core"
	"flagsim/internal/depgraph"
	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/metrics"
	"flagsim/internal/quiz"
	"flagsim/internal/report"
	"flagsim/internal/rng"
	"flagsim/internal/sched"
	"flagsim/internal/sim"
	"flagsim/internal/submission"
	"flagsim/internal/survey"
	"flagsim/internal/workplan"
)

const benchSeed = 42

func mustRunScenario(b *testing.B, id core.ScenarioID, kind implement.Kind) *sim.Result {
	b.Helper()
	scen, err := core.ScenarioByID(id)
	if err != nil {
		b.Fatal(err)
	}
	team, err := core.NewTeam(scen.Workers, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	f := flagspec.Mauritius
	res, err := core.Run(core.RunSpec{
		Flag: f, Scenario: scen, Team: team,
		Set:   implement.NewSet(kind, f.Colors()),
		Setup: core.DefaultSetup,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// E1 — Fig. 1: the four scenarios.
func BenchmarkFig1Scenarios(b *testing.B) {
	var last time.Duration
	for i := 0; i < b.N; i++ {
		for _, id := range []core.ScenarioID{core.S1, core.S2, core.S3, core.S4} {
			last = mustRunScenario(b, id, implement.ThickMarker).Makespan
		}
	}
	b.ReportMetric(last.Seconds(), "s4-makespan-s")
}

// E2 — speedup table.
func BenchmarkSpeedupTable(b *testing.B) {
	var s3 float64
	for i := 0; i < b.N; i++ {
		t1 := mustRunScenario(b, core.S1, implement.ThickMarker).Makespan
		t3 := mustRunScenario(b, core.S3, implement.ThickMarker).Makespan
		var err error
		s3, err = metrics.Speedup(t1, t3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s3, "speedup-p4")
}

// E3 — warmup ablation: first vs repeated scenario 1.
func BenchmarkWarmupAblation(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		scen, _ := core.ScenarioByID(core.S1)
		team, err := core.NewTeam(1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		f := flagspec.Mauritius
		set := implement.NewSet(implement.ThickMarker, f.Colors())
		first, err := core.Run(core.RunSpec{Flag: f, Scenario: scen, Team: team, Set: set})
		if err != nil {
			b.Fatal(err)
		}
		second, err := core.Run(core.RunSpec{Flag: f, Scenario: scen, Team: team, Set: set})
		if err != nil {
			b.Fatal(err)
		}
		improvement = (1 - float64(second.Makespan)/float64(first.Makespan)) * 100
	}
	b.ReportMetric(improvement, "repeat-improvement-%")
}

// E4 — implement technology sweep.
func BenchmarkImplementSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		dauber := mustRunScenario(b, core.S1, implement.Dauber).Makespan
		crayon := mustRunScenario(b, core.S1, implement.Crayon).Makespan
		ratio = float64(crayon) / float64(dauber)
	}
	b.ReportMetric(ratio, "crayon-vs-dauber")
}

// E5 — contention: S3 vs S4 and the pipelined fix.
func BenchmarkContentionS3vsS4(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		t3 := mustRunScenario(b, core.S3, implement.ThickMarker).Makespan
		t4 := mustRunScenario(b, core.S4, implement.ThickMarker).Makespan
		slowdown = float64(t4)/float64(t3) - 1
	}
	b.ReportMetric(slowdown*100, "s4-slowdown-%")
}

func BenchmarkPipelineAblation(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		naive := mustRunScenario(b, core.S4, implement.ThickMarker).Makespan
		piped := mustRunScenario(b, core.S4Pipelined, implement.ThickMarker).Makespan
		speedup = float64(naive) / float64(piped)
	}
	b.ReportMetric(speedup, "pipelined-speedup")
}

// E6/E8 — Figs. 2 and 4: flag rasterization.
func benchmarkRender(b *testing.B, name string) {
	f, err := flagspec.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	var cells int
	for i := 0; i < b.N; i++ {
		g, err := grid.RasterizeDefault(f)
		if err != nil {
			b.Fatal(err)
		}
		cells = g.PaintedCells()
		if err := g.WriteSVG(io.Discard, 16); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells), "cells")
}

func BenchmarkRenderCanada(b *testing.B) { benchmarkRender(b, "canada") }
func BenchmarkRenderJordan(b *testing.B) { benchmarkRender(b, "jordan") }

// E7 — Fig. 3: Great Britain's layers and the dependency cap.
func BenchmarkGreatBritainLayers(b *testing.B) {
	f := flagspec.GreatBritain
	var speedupAt4 float64
	for i := 0; i < b.N; i++ {
		g, err := depgraph.FromFlag(f, f.DefaultW, f.DefaultH)
		if err != nil {
			b.Fatal(err)
		}
		curve, err := depgraph.SpeedupCurve(g, 4)
		if err != nil {
			b.Fatal(err)
		}
		speedupAt4 = float64(curve[0]) / float64(curve[3])
	}
	b.ReportMetric(speedupAt4, "layer-speedup-p4")
}

// E9 — Webster variation: France vs Canada at p=3.
func BenchmarkWebsterVariation(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		f1, f3, err := classroom.WebsterVariation(flagspec.France, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		c1, c3, err := classroom.WebsterVariation(flagspec.Canada, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		gap = float64(f1)/float64(f3) - float64(c1)/float64(c3)
	}
	b.ReportMetric(gap, "france-minus-canada-speedup")
}

// E11–E13 — Tables I–III.
func benchmarkTable(b *testing.B, pick func(t1, t2, t3 *survey.Table) *survey.Table) {
	targets := survey.PaperTargets()
	var mismatches int
	for i := 0; i < b.N; i++ {
		cohorts, err := survey.GenerateStudy(targets, rng.New(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		t1, t2, t3, err := survey.BuildPaperTables(cohorts)
		if err != nil {
			b.Fatal(err)
		}
		mismatches = len(pick(t1, t2, t3).VerifyAgainstTargets(targets))
	}
	b.ReportMetric(float64(mismatches), "cells-off-paper")
}

func BenchmarkTableI(b *testing.B) {
	benchmarkTable(b, func(t1, _, _ *survey.Table) *survey.Table { return t1 })
}
func BenchmarkTableII(b *testing.B) {
	benchmarkTable(b, func(_, t2, _ *survey.Table) *survey.Table { return t2 })
}
func BenchmarkTableIII(b *testing.B) {
	benchmarkTable(b, func(_, _, t3 *survey.Table) *survey.Table { return t3 })
}

// E14 — Fig. 6: the grouped median chart.
func BenchmarkFig6Chart(b *testing.B) {
	cohorts, err := survey.GenerateStudy(survey.PaperTargets(), rng.New(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := report.Fig6(io.Discard, cohorts); err != nil {
			b.Fatal(err)
		}
		if err := report.Fig6SVG(io.Discard, cohorts); err != nil {
			b.Fatal(err)
		}
	}
}

// E16 — Fig. 8: pre/post transitions.
func BenchmarkFig8Transitions(b *testing.B) {
	m := quiz.PaperMatrices()
	var rows int
	for i := 0; i < b.N; i++ {
		cohorts, err := quiz.GenerateStudy(m, rng.New(benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		out, err := quiz.BuildFig8(cohorts)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(out)
	}
	b.ReportMetric(float64(rows), "concept-site-rows")
}

// E17 — Fig. 9: the Jordan reference DAG.
func BenchmarkFig9JordanDAG(b *testing.B) {
	f := flagspec.Jordan
	var match float64
	for i := 0; i < b.N; i++ {
		ref := depgraph.JordanReference(false)
		gen, err := depgraph.FromFlag(f, f.DefaultW, f.DefaultH)
		if err != nil {
			b.Fatal(err)
		}
		if gen.SameConstraints(ref) {
			match = 1
		}
	}
	b.ReportMetric(match, "matches-reference")
}

// E18 — §V-C submission grading.
func BenchmarkSubmissionGrading(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		subs := submission.GenerateClass(submission.PaperCounts(), rng.New(benchSeed))
		counts := submission.GradeClass(subs)
		share = counts.AtLeastMostlyCorrectShare()
	}
	b.ReportMetric(share, "at-least-mostly-%")
}

// E19 — decomposition ablation: cyclic's implement thrash vs layer blocks.
func BenchmarkDecompositionAblation(b *testing.B) {
	f := flagspec.Mauritius
	var thrashRatio float64
	for i := 0; i < b.N; i++ {
		blocksPlan, err := workplan.LayerBlocks(f, f.DefaultW, f.DefaultH, 4)
		if err != nil {
			b.Fatal(err)
		}
		cyclicPlan, err := workplan.Cyclic(f, f.DefaultW, f.DefaultH, 4)
		if err != nil {
			b.Fatal(err)
		}
		run := func(p *workplan.Plan) time.Duration {
			team, err := core.NewTeam(4, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Plan: p, Procs: team,
				Set: implement.NewSet(implement.ThickMarker, f.Colors()),
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Makespan
		}
		thrashRatio = float64(run(cyclicPlan)) / float64(run(blocksPlan))
	}
	b.ReportMetric(thrashRatio, "cyclic-vs-blocks")
}

// E19b — the load-balancing schedulers.
func BenchmarkSchedulers(b *testing.B) {
	f := flagspec.Sweden
	var imb float64
	for i := 0; i < b.N; i++ {
		plan, err := sched.LPT(f, f.DefaultW, f.DefaultH, 4)
		if err != nil {
			b.Fatal(err)
		}
		imb = sched.Imbalance(plan)
		if _, err := sched.Guided(f, f.DefaultW, f.DefaultH, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(imb, "lpt-imbalance")
}

// E20 — the real-goroutine executor.
func BenchmarkConcurrentExecutor(b *testing.B) {
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, true)
	if err != nil {
		b.Fatal(err)
	}
	want, err := grid.RasterizeDefault(f)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		procs := make([]*sim.ConcurrentProc, 4)
		for j := range procs {
			procs[j] = &sim.ConcurrentProc{Name: "P", Skill: 1}
		}
		res, err := sim.RunConcurrent(sim.ConcurrentConfig{
			Plan: plan, Procs: procs,
			Set:   implement.NewSet(implement.ThickMarker, f.Colors()),
			Scale: 100000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Grid.Equal(want) {
			b.Fatal("concurrent run painted the wrong image")
		}
	}
}

// E21 — extra implements dissolve contention.
func BenchmarkExtraImplements(b *testing.B) {
	f := flagspec.Mauritius
	scen, _ := core.ScenarioByID(core.S4)
	var gain float64
	for i := 0; i < b.N; i++ {
		run := func(n int) time.Duration {
			team, err := core.NewTeam(scen.Workers, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Run(core.RunSpec{
				Flag: f, Scenario: scen, Team: team,
				Set: implement.NewSetN(implement.ThickMarker, f.Colors(), n),
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Makespan
		}
		gain = float64(run(1)) / float64(run(4))
	}
	b.ReportMetric(gain, "4x-implements-speedup")
}

// E22 — scaling study with Karp–Flatt.
func BenchmarkScalingKarpFlatt(b *testing.B) {
	f := flagspec.Mauritius
	const w, h = 64, 32
	var kf float64
	for i := 0; i < b.N; i++ {
		times := make([]time.Duration, 0, 8)
		for p := 1; p <= 8; p++ {
			plan, err := workplan.VerticalSlices(f, w, h, p, true)
			if err != nil {
				b.Fatal(err)
			}
			team, err := core.NewTeam(p, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Plan: plan, Procs: team,
				Set:   implement.NewSetN(implement.ThickMarker, f.Colors(), p),
				Setup: core.DefaultSetup,
			})
			if err != nil {
				b.Fatal(err)
			}
			times = append(times, res.Makespan)
		}
		s8, err := metrics.Speedup(times[0], times[7])
		if err != nil {
			b.Fatal(err)
		}
		kf, err = metrics.KarpFlatt(s8, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(kf, "serial-fraction")
}

// Core-engine microbenchmarks: the hot paths a user of the library pays
// for (not tied to a paper artifact, but kept for regression tracking).

func BenchmarkDESKernelEvents(b *testing.B) {
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, 64, 32, 8, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		team, err := core.NewTeam(8, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Plan: plan, Procs: team,
			Set: implement.NewSetN(implement.ThickMarker, f.Colors(), 8),
		})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

func BenchmarkRasterizeLarge(b *testing.B) {
	f := flagspec.GreatBritain
	for i := 0; i < b.N; i++ {
		if _, err := grid.Rasterize(f, 240, 120); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListScheduleWide(b *testing.B) {
	g := depgraph.New()
	for i := 0; i < 200; i++ {
		g.MustAddNode(depgraph.Node{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Weight: time.Second})
	}
	nodes := g.Nodes()
	for i := 26; i < len(nodes); i++ {
		g.MustAddEdge(nodes[i-26].ID, nodes[i].ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := depgraph.ListSchedule(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSurveyCohortGeneration(b *testing.B) {
	targets := survey.PaperTargets()
	for i := 0; i < b.N; i++ {
		if _, err := survey.GenerateCohort(survey.TNTech, 86, targets, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// Keep the public API exercised under bench as well.
func BenchmarkPublicAPIScenario(b *testing.B) {
	scen, err := flagsim.ScenarioByID(flagsim.S3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		team, err := flagsim.NewTeam(4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := flagsim.RunScenario(flagsim.RunSpec{
			Flag: flagsim.Mauritius, Scenario: scen, Team: team,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
