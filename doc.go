// Package flagsim is a simulator and analysis library for the unplugged
// flag-coloring activity that introduces parallel and distributed
// computing (PDC) concepts to CS1 students, as described in "A Visual
// Unplugged Activity to Introduce PDC" (IPDPS Workshops 2025).
//
// In the activity, students play the role of processors coloring cells of
// a gridded paper flag. flagsim models the activity end to end:
//
//   - Flags are declarative layered paint programs ([Mauritius], [Canada],
//     [GreatBritain], [Jordan], ...), rasterized onto cell grids.
//   - Work decompositions turn a flag into per-processor task lists: the
//     paper's four scenarios plus block, cyclic, and visible-only plans.
//   - A deterministic discrete-event simulator executes a plan over
//     student processors sharing contended drawing implements, modeling
//     warmup, implement technology classes, handoffs, breakage, and layer
//     dependencies. A second, real-goroutine executor demonstrates the
//     same phenomena under true parallelism.
//   - Metrics compute speedup, efficiency, Amdahl/Gustafson/Karp–Flatt,
//     contention and pipeline-fill measurements.
//   - Dependency graphs formalize layered flags (the Knox follow-up), with
//     list scheduling, critical paths, and the §V-C submission grader.
//   - The assessment layer regenerates the paper's evaluation: the ASPECT
//     engagement survey medians (Tables I–III, Fig. 6), the pre/post quiz
//     transition analysis (Fig. 8), and the dependency-graph grading
//     distribution.
//
// Quick start:
//
//	f := flagsim.Mauritius
//	team, _ := flagsim.NewTeam(4, 42)
//	scen, _ := flagsim.ScenarioByID(flagsim.S3)
//	res, _ := flagsim.RunScenario(flagsim.RunSpec{Flag: f, Scenario: scen, Team: team})
//	fmt.Println(res.Makespan)
//
// The cmd/ directory holds runnable tools (cmd/experiments regenerates
// every table and figure of the paper); examples/ holds worked programs.
package flagsim
