package flagsim

import (
	"context"
	"io"
	"log/slog"
	"time"

	"flagsim/internal/check"
	"flagsim/internal/classroom"
	"flagsim/internal/core"
	"flagsim/internal/depgraph"
	"flagsim/internal/fault"
	"flagsim/internal/flaggen"
	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/metrics"
	"flagsim/internal/obs"
	"flagsim/internal/processor"
	"flagsim/internal/quiz"
	"flagsim/internal/rng"
	"flagsim/internal/server"
	"flagsim/internal/sim"
	"flagsim/internal/submission"
	"flagsim/internal/survey"
	"flagsim/internal/sweep"
	"flagsim/internal/workload"
	"flagsim/internal/workplan"
)

// ---- Flags and grids ----

// Flag is a named layered paint program (see internal/flagspec).
type Flag = flagspec.Flag

// Grid is a cell canvas (see internal/grid).
type Grid = grid.Grid

// The built-in flags of the activity.
var (
	// Mauritius is the core-activity flag: four equal independent stripes.
	Mauritius = flagspec.Mauritius
	// France is the simple flag of the Webster variation.
	France = flagspec.France
	// Canada is the intricate flag of the Webster variation (Fig. 2).
	Canada = flagspec.Canada
	// GreatBritain is the layered flag of the Knox follow-up (Fig. 3).
	GreatBritain = flagspec.GreatBritain
	// Jordan is the dependency-graph exercise flag (Fig. 4).
	Jordan = flagspec.Jordan
)

// LookupFlag returns a built-in flag by name ("mauritius", "france",
// "canada", "greatbritain", "jordan", "germany", "japan", "sweden",
// "poland") or a procedurally generated one by canonical name
// ("gen:v1:<seed>:<variant>", see GenerateFlag).
func LookupFlag(name string) (*Flag, error) { return flagspec.Lookup(name) }

// FlagNames lists the built-in flags.
func FlagNames() []string { return flagspec.Names() }

// ValidateFlag checks a flag against a concrete w×h raster: structural
// invariants, at least one covered cell per layer, and — with
// fullCoverage — no unpainted cell. Non-positive sizes use the flag's
// defaults.
func ValidateFlag(f *Flag, w, h int, fullCoverage bool) error {
	return flagspec.Validate(f, w, h, fullCoverage)
}

// ---- Procedural flag generation ----

// GenSpec parameterizes a family of procedurally generated flags: grid
// ranges, layer budget, weighted shape grammar, palette pool.
type GenSpec = flaggen.GenSpec

// FlagGenerator is a compiled GenSpec; its Flag(seed, variant) method
// deterministically generates valid flags.
type FlagGenerator = flaggen.Generator

// DefaultGenSpec is the grammar behind the canonical "gen:v1" names.
func DefaultGenSpec() GenSpec { return flaggen.DefaultSpec() }

// NewFlagGenerator compiles and validates a GenSpec.
func NewFlagGenerator(spec GenSpec) (*FlagGenerator, error) { return flaggen.New(spec) }

// GenerateFlag returns the variant-th flag of the seed's family under
// the default grammar — the flag that "gen:v1:<seed>:<variant>" names.
func GenerateFlag(seed, variant uint64) (*Flag, error) { return flaggen.Generate(seed, variant) }

// GenFlagName returns the canonical versioned name of a generated flag,
// resolvable anywhere a builtin name is accepted (LookupFlag, sweep
// specs, the HTTP API, the dispatcher fleet).
func GenFlagName(seed, variant uint64) string { return flaggen.Name(seed, variant) }

// Rasterize paints a flag onto a fresh grid at the given size — the
// reference image simulation runs are verified against.
func Rasterize(f *Flag, w, h int) (*Grid, error) { return grid.Rasterize(f, w, h) }

// ---- Scenarios and simulation ----

// ScenarioID identifies one of the activity's scenarios.
type ScenarioID = core.ScenarioID

// The scenarios of Fig. 1 plus the pipelined scenario-4 variant.
const (
	S1          = core.S1
	S2          = core.S2
	S3          = core.S3
	S4          = core.S4
	S4Pipelined = core.S4Pipelined
)

// Scenario describes a scenario's worker count and decomposition.
type Scenario = core.Scenario

// RunSpec configures one scenario run.
type RunSpec = core.RunSpec

// DefaultSetup is the serial organization time the paper's scenarios
// charge before painting starts.
const DefaultSetup = core.DefaultSetup

// Result is a completed simulation run.
type Result = sim.Result

// Processor is one simulated student.
type Processor = processor.Processor

// ImplementSet is a team's drawing implements.
type ImplementSet = implement.Set

// ImplementKind is an implement technology class.
type ImplementKind = implement.Kind

// Implement technology classes, fastest to slowest.
const (
	Dauber      = implement.Dauber
	ThickMarker = implement.ThickMarker
	ThinMarker  = implement.ThinMarker
	Crayon      = implement.Crayon
)

// CoreScenarios returns the four scenarios of Fig. 1.
func CoreScenarios() []Scenario { return core.CoreScenarios() }

// ScenarioByID resolves a scenario definition.
func ScenarioByID(id ScenarioID) (Scenario, error) { return core.ScenarioByID(id) }

// RunScenario executes a scenario and verifies the colored flag.
func RunScenario(spec RunSpec) (*Result, error) { return core.Run(spec) }

// NewTeam builds n default students seeded deterministically.
func NewTeam(n int, seed uint64) ([]*Processor, error) { return core.NewTeam(n, seed) }

// NewImplementSet hands a team one implement of the given kind per color.
func NewImplementSet(kind ImplementKind, f *Flag) *ImplementSet {
	return implement.NewSet(kind, f.Colors())
}

// NewImplementSetN hands a team n implements of the given kind per color
// (the extra-implements contention ablation).
func NewImplementSetN(kind ImplementKind, f *Flag, n int) *ImplementSet {
	return implement.NewSetN(kind, f.Colors(), n)
}

// ---- Decompositions ----

// Plan is a per-processor decomposition of a flag.
type Plan = workplan.Plan

// Sequential decomposes for a single processor (scenario 1).
func Sequential(f *Flag, w, h int) (*Plan, error) { return workplan.Sequential(f, w, h) }

// LayerBlocks assigns contiguous layer groups to p processors
// (scenarios 2 and 3).
func LayerBlocks(f *Flag, w, h, p int) (*Plan, error) { return workplan.LayerBlocks(f, w, h, p) }

// VerticalSlices assigns vertical slices to p processors (scenario 4);
// rotate staggers starting layers (the pipelined variant).
func VerticalSlices(f *Flag, w, h, p int, rotate bool) (*Plan, error) {
	return workplan.VerticalSlices(f, w, h, p, rotate)
}

// Blocks tiles the canvas into gx×gy blocks dealt round-robin to p
// processors.
func Blocks(f *Flag, w, h, p, gx, gy int) (*Plan, error) {
	return workplan.Blocks(f, w, h, p, gx, gy)
}

// Cyclic deals cells round-robin to p processors.
func Cyclic(f *Flag, w, h, p int) (*Plan, error) { return workplan.Cyclic(f, w, h, p) }

// ---- Metrics ----

// SpeedupOf returns T1/Tp.
func SpeedupOf(t1, tp time.Duration) (float64, error) { return metrics.Speedup(t1, tp) }

// EfficiencyOf returns speedup divided by processor count.
func EfficiencyOf(t1, tp time.Duration, p int) (float64, error) {
	return metrics.Efficiency(t1, tp, p)
}

// AmdahlSpeedup predicts speedup from a serial fraction.
func AmdahlSpeedup(serialFraction float64, p int) (float64, error) {
	return metrics.AmdahlSpeedup(serialFraction, p)
}

// KarpFlatt returns the experimentally determined serial fraction.
func KarpFlatt(speedup float64, p int) (float64, error) { return metrics.KarpFlatt(speedup, p) }

// ---- Dependency graphs (Knox follow-up) ----

// Graph is a task dependency graph.
type Graph = depgraph.Graph

// GraphNode is one task vertex.
type GraphNode = depgraph.Node

// GraphSchedule is a list-scheduled placement of a graph on processors.
type GraphSchedule = depgraph.Schedule

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph { return depgraph.New() }

// FlagGraph builds a flag's layer dependency graph at raster size w×h.
func FlagGraph(f *Flag, w, h int) (*Graph, error) { return depgraph.FromFlag(f, w, h) }

// JordanReferenceGraph is the paper's intended Fig. 9 solution.
func JordanReferenceGraph(omitWhiteStripe bool) *Graph {
	return depgraph.JordanReference(omitWhiteStripe)
}

// ListSchedule schedules a graph onto p processors with the critical-path
// heuristic.
func ListSchedule(g *Graph, p int) (*GraphSchedule, error) { return depgraph.ListSchedule(g, p) }

// ---- Classroom sessions ----

// ClassroomConfig configures a full class session.
type ClassroomConfig = classroom.Config

// ClassroomSession is a completed session: teams, timing board, lessons.
type ClassroomSession = classroom.Session

// Lesson is a quantified §III-C discussion point.
type Lesson = core.Lesson

// RunClassroom simulates a whole class session.
func RunClassroom(cfg ClassroomConfig) (*ClassroomSession, error) { return classroom.Run(cfg) }

// ---- Assessment ----

// SurveyInstitution is one of the six pilot sites.
type SurveyInstitution = survey.Institution

// SurveyTable is a questions × institutions median table.
type SurveyTable = survey.Table

// GenerateSurveyStudy generates all six institutions' cohorts calibrated
// to the paper's Tables I–III.
func GenerateSurveyStudy(seed uint64) (map[SurveyInstitution]*survey.Cohort, error) {
	return survey.GenerateStudy(survey.PaperTargets(), rng.New(seed))
}

// BuildSurveyTables measures Tables I–III from generated cohorts.
func BuildSurveyTables(cohorts map[SurveyInstitution]*survey.Cohort) (t1, t2, t3 *SurveyTable, err error) {
	return survey.BuildPaperTables(cohorts)
}

// QuizSite is one of the three pre/post quiz sites.
type QuizSite = quiz.Site

// GenerateQuizStudy materializes the three quiz cohorts calibrated to
// Fig. 8.
func GenerateQuizStudy(seed uint64) (map[QuizSite]*quiz.Cohort, error) {
	return quiz.GenerateStudy(quiz.PaperMatrices(), rng.New(seed))
}

// BuildFig8 measures the Fig. 8 transition rows from quiz cohorts.
func BuildFig8(cohorts map[QuizSite]*quiz.Cohort) ([]quiz.Fig8Row, error) {
	return quiz.BuildFig8(cohorts)
}

// Submission is one student dependency-graph submission.
type Submission = submission.Submission

// SubmissionCategory is a §V-C grading outcome.
type SubmissionCategory = submission.Category

// GradeSubmission grades one submission under the §V-C rubric.
func GradeSubmission(s Submission) SubmissionCategory { return submission.Grade(s) }

// GenerateSubmissionClass materializes a class matching the paper's
// observed distribution (29 submissions).
func GenerateSubmissionClass(seed uint64) []Submission {
	return submission.GenerateClass(submission.PaperCounts(), rng.New(seed))
}

// GradeSubmissionClass grades a class and tallies categories.
func GradeSubmissionClass(subs []Submission) submission.Counts {
	return submission.GradeClass(subs)
}

// ---- Extensions beyond the paper's evaluation ----

// DecodeFlagJSON reads a custom flag specification (see
// internal/flagspec's JSON schema) so instructors can define new flags
// without recompiling.
func DecodeFlagJSON(r io.Reader) (*Flag, error) { return flagspec.DecodeJSON(r) }

// AmdahlFit is a whole-curve least-squares fit of Amdahl's law.
type AmdahlFit = metrics.AmdahlFit

// FitAmdahlCurve fits the serial fraction to measured completion times
// (times[i] = time on i+1 processors).
func FitAmdahlCurve(times []time.Duration) (AmdahlFit, error) {
	return metrics.FitAmdahl(times)
}

// QuizSignificanceRow is one McNemar result per (concept, site).
type QuizSignificanceRow = quiz.SignificanceRow

// AnalyzeQuizSignificance runs McNemar's test over reproduced quiz
// cohorts — the statistical analysis the paper's future work plans.
func AnalyzeQuizSignificance(cohorts map[QuizSite]*quiz.Cohort) ([]QuizSignificanceRow, error) {
	return quiz.AnalyzeSignificance(cohorts)
}

// SurveyComparison is a Mann–Whitney comparison of one question between
// two institutions.
type SurveyComparison = survey.Comparison

// CompareSurveyQuestion tests one question across every institution pair
// that asked it.
func CompareSurveyQuestion(cohorts map[SurveyInstitution]*survey.Cohort, question string) ([]SurveyComparison, error) {
	return survey.CompareAllPairs(cohorts, question)
}

// DynamicConfig configures a self-scheduled (shared work bag) run.
type DynamicConfig = sim.DynamicConfig

// PullPolicy selects how an idle processor chooses its next cell.
type PullPolicy = sim.PullPolicy

// Pull policies for dynamic runs.
const (
	PullOrdered       = sim.PullOrdered
	PullColorAffinity = sim.PullColorAffinity
)

// RunDynamic executes a self-scheduled run: idle processors pull the next
// cell from a shared bag at run time, adapting to skill differences.
func RunDynamic(cfg DynamicConfig) (*Result, error) { return sim.RunDynamic(cfg) }

// SimConfig configures a plan-driven run directly (RunPlan and
// RunSteal); the scenario helpers build one internally.
type SimConfig = sim.Config

// RunPlan executes a static plan-driven run directly. The scenario
// helpers (RunScenario) build the SimConfig internally; use RunPlan
// when you hold a Plan and want the full config surface — probes,
// faults, tracing, or a reusable Arena.
func RunPlan(cfg SimConfig) (*Result, error) { return sim.Run(cfg) }

// RunSteal executes a static plan under work stealing: a processor that
// empties its own queue takes the trailing half of the most-loaded
// teammate's queue instead of retiring — the load-imbalance fix that
// keeps a good static split's locality. Result.Steals counts migrations.
func RunSteal(cfg SimConfig) (*Result, error) { return sim.RunSteal(cfg) }

// RunStealing executes a scenario under the work-stealing executor and
// verifies the colored flag.
func RunStealing(spec RunSpec) (*Result, error) { return core.RunStealing(spec) }

// Arena is a caller-owned reusable run context: every piece of per-run
// engine state (kernel, grid, queues, stats, result buffers) lives in it
// and is recycled across runs. Set SimConfig.Arena (or
// DynamicConfig.Arena) to run through one; after a warm-up run that
// grows the buffers to the workload's size, further runs on the same
// arena are allocation-free. The returned Result then aliases arena
// memory and is valid only until the arena's next run — callers that
// keep results across runs must copy what they need. A nil Arena in the
// config draws scratch from an internal pool and returns an independent
// Result.
type Arena = sim.Arena

// NewArena returns an empty arena ready for its first run. An arena is
// not safe for concurrent runs; use one per goroutine (the internal pool
// behind nil-Arena configs already does this for pooled runs).
func NewArena() *Arena { return sim.NewArena() }

// ---- Engine observation ----

// Probe observes engine execution: grants, releases, blocks, completed
// cells, retirements, and every materialized span.
type Probe = sim.Probe

// BaseProbe is a no-op Probe for embedding.
type BaseProbe = sim.BaseProbe

// CountingProbe tallies engine events — the cheapest metrics hook.
type CountingProbe = sim.CountingProbe

// SpanCollector accumulates every span the engine emits, reconstructing a
// traced run's timeline from an untraced run.
type SpanCollector = sim.SpanCollector

// ResultProbe is the optional Probe extension executors call once per
// completed run with the assembled Result — run-level totals (steals,
// migrations, event counts, queue high-water) that per-event callbacks
// cannot see.
type ResultProbe = sim.ResultProbe

// RunScopedProbe is the optional Probe extension for probes shared
// across concurrent runs (sweep pools, servers): the engine asks
// BeginRun for a fresh per-run child, so per-run state never races.
type RunScopedProbe = sim.RunScopedProbe

// ---- Observability ----

// MetricsRegistry is a dependency-free, ordered Prometheus text registry
// (exposition format 0.0.4): counters, gauges, histograms, and
// scrape-time function families.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EngineMetricsProbe bridges engine events onto a MetricsRegistry:
// cells painted, implement traffic, blocks by kind/color, spans by
// kind, and run-level totals. Goroutine-safe; install one process-wide
// (e.g. in SweepOptions.Probes) to observe every pooled run.
type EngineMetricsProbe = obs.MetricsProbe

// NewEngineMetricsProbe registers the engine families on reg and
// returns the probe that feeds them.
func NewEngineMetricsProbe(reg *MetricsRegistry) *EngineMetricsProbe {
	return obs.NewMetricsProbe(reg)
}

// RegisterGoRuntimeMetrics adds the conventional go_* runtime families
// (goroutines, heap, GC) to reg.
func RegisterGoRuntimeMetrics(reg *MetricsRegistry) { obs.RegisterGoRuntime(reg) }

// NewStructuredLogger builds a log/slog logger writing to w with the
// given minimum level ("debug", "info", "warn", "error") and format
// ("text" or "json").
func NewStructuredLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// ---- Batch sweeps ----

// SweepSpec is a declarative, hashable description of one run: teams and
// implement sets are materialized fresh inside the pool worker from the
// spec's seed, so identical specs always produce bit-identical Results.
type SweepSpec = sweep.Spec

// SweepExec selects the executor class a SweepSpec runs under.
type SweepExec = sweep.Exec

// Executor classes for sweep specs.
const (
	SweepStatic  = sweep.ExecStatic
	SweepSteal   = sweep.ExecSteal
	SweepDynamic = sweep.ExecDynamic
)

// SweepOptions configures the sweep pool (worker bound; default
// runtime.GOMAXPROCS).
type SweepOptions = sweep.Options

// SweepResult is a completed batch: per-run outcomes in input order plus
// wall time and cache hit/miss counters.
type SweepResult = sweep.Result

// SweepRun is one run's outcome inside a SweepResult: result or error,
// compute time, and whether it was served from the cache.
type SweepRun = sweep.RunResult

// SweepGrid enumerates a cartesian parameter grid (workers × implement
// class × pull policy × seed × ...) around a base spec.
type SweepGrid = sweep.Grid

// Sweeper is a reusable sweep pool whose content-addressed result cache
// persists across batches — rerunning a grid on the same Sweeper is
// served warm.
type Sweeper = sweep.Sweeper

// NewSweeper returns a sweep pool with an empty result cache.
func NewSweeper(opts SweepOptions) *Sweeper { return sweep.New(opts) }

// RunSweep executes the specs on a fresh bounded worker pool and returns
// per-run results in input order. Identical specs are computed once and
// shared; use NewSweeper to keep the cache warm across batches.
func RunSweep(specs []SweepSpec, opts SweepOptions) *SweepResult {
	return sweep.RunAll(specs, opts)
}

// SweepCacheStats is a snapshot of a Sweeper's memo cache: lifetime
// hits and misses plus resident entries.
type SweepCacheStats = sweep.CacheStats

// ---- Cancellation ----

// ErrCanceled reports that a run's context was canceled before the
// simulation finished; Result-level errors wrap it (test with
// errors.Is). The engine polls the context at a fixed event cadence,
// so cancellation lands promptly even mid-run.
var ErrCanceled = sim.ErrCanceled

// RunScenarioCtx is RunScenario bounded by ctx: the engine's event loop
// stops at the next checkpoint once ctx is done and returns an error
// wrapping ErrCanceled.
func RunScenarioCtx(ctx context.Context, spec RunSpec) (*Result, error) {
	return core.RunCtx(ctx, spec)
}

// RunStealingCtx is RunStealing bounded by ctx.
func RunStealingCtx(ctx context.Context, spec RunSpec) (*Result, error) {
	return core.RunStealingCtx(ctx, spec)
}

// RunPlanCtx is RunPlan bounded by ctx.
func RunPlanCtx(ctx context.Context, cfg SimConfig) (*Result, error) {
	return sim.RunCtx(ctx, cfg)
}

// RunStealCtx is RunSteal bounded by ctx.
func RunStealCtx(ctx context.Context, cfg SimConfig) (*Result, error) {
	return sim.RunStealCtx(ctx, cfg)
}

// RunDynamicCtx is RunDynamic bounded by ctx.
func RunDynamicCtx(ctx context.Context, cfg DynamicConfig) (*Result, error) {
	return sim.RunDynamicCtx(ctx, cfg)
}

// RunSweepCtx is RunSweep bounded by ctx: runs not yet started fail
// fast once ctx is done, runs in flight stop at the engine's next
// checkpoint, and canceled computes are never memoized.
func RunSweepCtx(ctx context.Context, specs []SweepSpec, opts SweepOptions) *SweepResult {
	return sweep.New(opts).Run(ctx, specs)
}

// ---- Fault injection and correctness verification ----

// FaultPlan is a seeded, hashable description of deterministic fault
// injection: processor stall windows, degraded cells, forced implement
// breakage, transient paint failures forcing repaints, and handoff
// delays. Every decision is a pure function of (plan seed, cell), so
// the same plan perturbs every executor identically and a fault-bearing
// run is exactly as reproducible as a fault-free one.
type FaultPlan = fault.Plan

// FaultStall is one processor freeze window inside a FaultPlan
// (Proc -1 stalls everyone).
type FaultStall = fault.Stall

// FaultInjector is the engine hook a compiled FaultPlan implements; a
// nil injector leaves the engine's hot path untouched.
type FaultInjector = sim.FaultInjector

// FaultStats tallies what an injected plan actually did during a run
// (Result.Faults).
type FaultStats = sim.FaultStats

// NewFaultInjector compiles a plan for installation in a RunSpec,
// SimConfig, or DynamicConfig. A nil or zero plan returns a nil
// injector (no injection); assign through a nil check.
func NewFaultInjector(p *FaultPlan) (*fault.Injector, error) { return fault.New(p) }

// FaultPreset returns a named built-in plan: "none", "light" (mild
// degradation and handoff delays), "heavy" (stalls, breakage, repaints,
// heavy contention delays).
func FaultPreset(name string, seed uint64) (*FaultPlan, error) { return fault.Preset(name, seed) }

// FaultPresetNames lists the built-in fault plans.
func FaultPresetNames() []string { return fault.PresetNames() }

// CheckOracle is an engine probe enforcing the simulator's invariants
// online and at result time: exactly-once painting, implement mutual
// exclusion, span well-formedness, the critical-path lower bound, task
// conservation under stealing, and final-grid fidelity. Install one
// per run (or share one across runs — it scopes itself) and ask Err.
type CheckOracle = check.Oracle

// NewCheckOracle returns an oracle ready to install as a probe.
func NewCheckOracle() *CheckOracle { return check.NewOracle() }

// CheckDiffConfig configures a differential verification suite.
type CheckDiffConfig = check.DiffConfig

// CheckDiffResult is a completed suite: per-run rows, oracle
// violations, and cross-run conservation mismatches.
type CheckDiffResult = check.DiffResult

// CheckDiff pushes one workload through all three executors under a
// set of fault plans, verifies every run with a fresh oracle, and
// compares the conserved quantities (final grid, work performed,
// cell-keyed fault markings). The zero config runs the default suite.
func CheckDiff(ctx context.Context, cfg CheckDiffConfig) (*CheckDiffResult, error) {
	return check.Diff(ctx, cfg)
}

// ---- HTTP service ----

// ServerConfig parameterizes the HTTP simulation service: listen
// address, admission bounds (max in-flight, max queued), per-request
// deadline, sweep pool size, and graceful drain budget. The zero value
// serves with sensible defaults.
type ServerConfig = server.Config

// SimServer is the HTTP simulation service: POST /v1/run and
// /v1/sweep execute under admission control with the sweep cache warm
// across requests; GET /healthz and /metrics expose serving, engine,
// and Go runtime state; GET /v1/runs and /v1/runs/{id}/trace replay
// recent runs, and POST /v1/run?trace=chrome streams a Chrome trace.
type SimServer = server.Server

// NewServer assembles an HTTP simulation service (for embedding its
// Handler in an existing mux, or driving Serve directly).
func NewServer(cfg ServerConfig) *SimServer { return server.New(cfg) }

// Serve runs the HTTP simulation service until ctx is canceled, then
// drains gracefully: in-flight requests get cfg.DrainTimeout to
// finish, and a clean drain returns nil.
func Serve(ctx context.Context, cfg ServerConfig) error {
	return server.New(cfg).ListenAndServe(ctx)
}

// ---- Workload generation ----

// TrafficShape is a deterministic arrival-intensity profile λ(t) in
// requests per second. Built-ins: PoissonShape (constant rate),
// BurstyShape (on/off square wave), DiurnalShape (clamped sum of
// sinusoids over a base rate).
type TrafficShape = workload.Shape

// PoissonShape is a constant-rate arrival process.
type PoissonShape = workload.Poisson

// BurstyShape is an on/off square wave: OnRate for the first Duty
// fraction of every Period, OffRate for the rest — the synchronized
// classroom-flood pattern a mean-rate process smooths away.
type BurstyShape = workload.Bursty

// DiurnalShape is a multi-period sinusoidal profile: Base plus one
// sine per Harmonic, clamped at zero.
type DiurnalShape = workload.Diurnal

// ParseTrafficShape parses the CLI shape grammar: "poisson:200",
// "bursty:500,10,2s,0.25", "diurnal:100,10s:80,3s:30".
func ParseTrafficShape(s string) (TrafficShape, error) { return workload.ParseShape(s) }

// WorkloadMix weights the four request kinds in the population
// (runs, sweeps, faulted runs, trace runs); the zero value means the
// default mostly-runs mix.
type WorkloadMix = workload.Mix

// WorkloadPopulation parameterizes the request space arrivals draw
// from: mix weights, flag/executor/scenario/seed spaces, raster size.
type WorkloadPopulation = workload.Population

// WorkloadSchedule is a precomputed, sorted open-loop arrival
// schedule — a pure function of (seed, shape, duration, population).
type WorkloadSchedule = workload.Schedule

// MakeWorkloadSchedule draws the schedule deterministically: arrival
// times and request draws come from independently labeled SplitMix64
// child streams of seed, so the i-th request's parameters do not
// depend on the arrival process (or vice versa).
func MakeWorkloadSchedule(seed uint64, shape TrafficShape, duration time.Duration, pop WorkloadPopulation) (*WorkloadSchedule, error) {
	return workload.MakeSchedule(seed, shape, duration, pop)
}

// WorkloadTrace is a recorded sequence of request/response exchanges
// with a canonical, versioned, seekable wire format ("FSWL"):
// decode→encode is byte-identical, malformed input fails with errors
// wrapping workload.ErrTraceFormat, and readers can skip records
// without parsing bodies.
type WorkloadTrace = workload.Trace

// WorkloadRunnerConfig configures open-loop firing: target URL,
// client, speed (0 = as fast as possible), metrics, and an optional
// per-response observer.
type WorkloadRunnerConfig = workload.RunnerConfig

// WorkloadReport summarizes one firing: offered vs goodput rates,
// status counts, latency percentiles, max in-flight, and fire-lag
// (how far the generator fell behind its own schedule).
type WorkloadReport = workload.Report

// FireWorkload fires a schedule open-loop at a running service:
// every request launches at its scheduled instant regardless of how
// many are still in flight, which is what makes queueing collapse
// observable. The returned trace records scheduled offsets, so it
// replays on the original timeline.
func FireWorkload(ctx context.Context, sched *WorkloadSchedule, cfg WorkloadRunnerConfig) (*WorkloadTrace, *WorkloadReport, error) {
	return workload.Fire(ctx, sched, cfg)
}

// ReplayWorkload re-fires a recorded trace on its recorded timeline
// (scaled by cfg.Speed) against a target service.
func ReplayWorkload(ctx context.Context, tr *WorkloadTrace, cfg WorkloadRunnerConfig) (*WorkloadTrace, *WorkloadReport, error) {
	return workload.Replay(ctx, tr, cfg)
}

// CompareWorkloadTraces diffs the deterministic sections of two
// traces of the same schedule: results behind 200/4xx statuses must
// match bit-for-bit after stripping the serving envelope (run id,
// cache flag, timing), while load-dependent statuses (429, 503,
// timeouts) are excluded. This is the capture/replay contract.
func CompareWorkloadTraces(recorded, replayed *WorkloadTrace) (*workload.CompareReport, error) {
	return workload.CompareTraces(recorded, replayed)
}

// SaturationSLO is the pass/fail criterion for one saturation trial:
// a p99 latency bound and a maximum error rate.
type SaturationSLO = workload.SLO

// SaturationConfig configures the capacity search: target, SLO,
// trial window, bracket bounds, and bisection depth.
type SaturationConfig = workload.SaturationConfig

// SaturationResult reports the highest offered rate that met the SLO
// (SustainableQPS), the lowest that failed (CollapseQPS), and every
// trial in between.
type SaturationResult = workload.SaturationResult

// FindSaturation binary-searches the maximum sustainable open-loop
// QPS under the SLO: bracket by doubling until a trial fails, then
// bisect. cmd/capacitygate wires this into CI as a capacity
// regression gate.
func FindSaturation(ctx context.Context, cfg SaturationConfig) (*SaturationResult, error) {
	return workload.FindSaturation(ctx, cfg)
}
