package flagsim_test

// Public-surface tests for the PR-3 additions: flag-registry error
// paths, the ctx-taking run/sweep variants, and the embedded HTTP
// service — all through the root package, the way a downstream user
// would reach them.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flagsim"
)

func TestLookupFlagErrorPaths(t *testing.T) {
	for _, name := range []string{"atlantis", "", "Mauritius", "mauritius "} {
		f, err := flagsim.LookupFlag(name)
		if err == nil {
			t.Fatalf("LookupFlag(%q) succeeded: %v", name, f)
		}
		if f != nil {
			t.Fatalf("LookupFlag(%q) returned a flag alongside an error", name)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown flag") || !strings.Contains(msg, "mauritius") {
			t.Errorf("LookupFlag(%q) error is not self-serving: %q", name, msg)
		}
	}
}

func TestFlagNamesSortedUniqueResolvable(t *testing.T) {
	names := flagsim.FlagNames()
	if len(names) == 0 {
		t.Fatal("no flags registered")
	}
	seen := make(map[string]bool)
	for i, name := range names {
		if i > 0 && names[i-1] >= name {
			t.Errorf("names not strictly sorted at %d: %q >= %q", i, names[i-1], name)
		}
		if seen[name] {
			t.Errorf("duplicate flag name %q", name)
		}
		seen[name] = true
		if _, err := flagsim.LookupFlag(name); err != nil {
			t.Errorf("listed flag %q does not resolve: %v", name, err)
		}
	}
	// The returned slice is the caller's to mutate.
	names[0] = "clobbered"
	if again := flagsim.FlagNames(); again[0] == "clobbered" {
		t.Error("FlagNames exposes shared backing storage")
	}
}

func TestRunScenarioCtxCancellation(t *testing.T) {
	scen, err := flagsim.ScenarioByID(flagsim.S4)
	if err != nil {
		t.Fatal(err)
	}
	// Teams carry RNG state across runs, so each run gets a fresh one.
	newSpec := func() flagsim.RunSpec {
		team, err := flagsim.NewTeam(scen.Workers, 1)
		if err != nil {
			t.Fatal(err)
		}
		return flagsim.RunSpec{Flag: flagsim.Mauritius, Scenario: scen, Team: team}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := flagsim.RunScenarioCtx(ctx, newSpec()); !errors.Is(err, flagsim.ErrCanceled) {
		t.Fatalf("canceled run: err = %v, want ErrCanceled", err)
	}

	// A live context must not perturb the deterministic result.
	live, err := flagsim.RunScenarioCtx(context.Background(), newSpec())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := flagsim.RunScenario(newSpec())
	if err != nil {
		t.Fatal(err)
	}
	if live.Makespan != plain.Makespan || live.Events != plain.Events {
		t.Fatalf("ctx run diverged: %v/%d vs %v/%d",
			live.Makespan, live.Events, plain.Makespan, plain.Events)
	}
}

func TestRunSweepCtxCancellation(t *testing.T) {
	specs := []flagsim.SweepSpec{
		{Flag: "mauritius", Scenario: flagsim.S3, Kind: flagsim.ThickMarker, Seed: 1},
		{Flag: "mauritius", Scenario: flagsim.S4, Kind: flagsim.Crayon, Seed: 2},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := flagsim.RunSweepCtx(ctx, specs, flagsim.SweepOptions{Workers: 2})
	for i, run := range batch.Runs {
		if !errors.Is(run.Err, flagsim.ErrCanceled) {
			t.Fatalf("run %d: err = %v, want ErrCanceled", i, run.Err)
		}
	}
	if batch := flagsim.RunSweepCtx(context.Background(), specs, flagsim.SweepOptions{}); batch.Err() != nil {
		t.Fatalf("live-ctx sweep failed: %v", batch.Err())
	}
}

func TestEmbeddedServerThroughAPI(t *testing.T) {
	srv := flagsim.NewServer(flagsim.ServerConfig{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"flag":"mauritius","scenario":2,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if stats := srv.Sweeper().Stats(); stats.Misses != 1 || stats.Entries != 1 {
		t.Fatalf("sweeper stats after one run: %+v", stats)
	}
}
