package flagsim_test

// Benchmarks for the extension experiments (E23–E26) and additional
// ablations: hold policy, chunk-size sweep, JSON flag decode, and the
// export paths.

import (
	"io"
	"strings"
	"testing"
	"time"

	"flagsim/internal/classroom"
	"flagsim/internal/core"
	"flagsim/internal/flagspec"
	"flagsim/internal/grid"
	"flagsim/internal/implement"
	"flagsim/internal/metrics"
	"flagsim/internal/quiz"
	"flagsim/internal/report"
	"flagsim/internal/rng"
	"flagsim/internal/sched"
	"flagsim/internal/sim"
	"flagsim/internal/stats"
	"flagsim/internal/survey"
	"flagsim/internal/workplan"
)

// E23 — McNemar significance sweep.
func BenchmarkQuizSignificance(b *testing.B) {
	cohorts, err := quiz.GenerateStudy(quiz.PaperMatrices(), rng.New(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	var significant int
	for i := 0; i < b.N; i++ {
		rows, err := quiz.AnalyzeSignificance(cohorts)
		if err != nil {
			b.Fatal(err)
		}
		significant = 0
		for _, r := range rows {
			if r.Significant(0.05) {
				significant++
			}
		}
	}
	b.ReportMetric(float64(significant), "significant-cells")
}

// E24 — Mann–Whitney comparisons across all pairs of one question.
func BenchmarkSurveyComparisons(b *testing.B) {
	cohorts, err := survey.GenerateStudy(survey.PaperTargets(), rng.New(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	var pairs int
	for i := 0; i < b.N; i++ {
		comps, err := survey.CompareAllPairs(cohorts, "increased-loops")
		if err != nil {
			b.Fatal(err)
		}
		pairs = len(comps)
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// E26 — connected-region complexity analysis over every flag.
func BenchmarkRegionAnalysis(b *testing.B) {
	grids := make([]*grid.Grid, 0)
	for _, f := range flagspec.All() {
		g, err := grid.RasterizeDefault(f)
		if err != nil {
			b.Fatal(err)
		}
		grids = append(grids, g)
	}
	b.ResetTimer()
	var regions int
	for i := 0; i < b.N; i++ {
		regions = 0
		for _, g := range grids {
			regions += g.RegionCount()
		}
	}
	b.ReportMetric(float64(regions), "regions-all-flags")
}

// Ablation — hold policy: eager release vs greedy hold on scenario 4.
func BenchmarkHoldPolicyAblation(b *testing.B) {
	f := flagspec.Mauritius
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(h sim.HoldPolicy) float64 {
			team, err := core.NewTeam(4, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Plan: plan, Procs: team,
				Set:  implement.NewSet(implement.ThickMarker, f.Colors()),
				Hold: h,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Makespan.Seconds()
		}
		ratio = run(sim.EagerRelease) / run(sim.GreedyHold)
	}
	b.ReportMetric(ratio, "eager-vs-greedy")
}

// Ablation — chunk-size sweep for chunked self-scheduling.
func BenchmarkChunkSizeSweep(b *testing.B) {
	f := flagspec.Mauritius
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, chunk := range []int{1, 4, 16, 48} {
			plan, err := sched.Chunked(f, f.DefaultW, f.DefaultH, 4, chunk)
			if err != nil {
				b.Fatal(err)
			}
			if imb := sched.Imbalance(plan); imb > worst {
				worst = imb
			}
		}
	}
	b.ReportMetric(worst, "worst-imbalance")
}

// JSON flag decoding throughput.
func BenchmarkDecodeJSONFlag(b *testing.B) {
	src := `{"name": "bench", "w": 24, "h": 12, "layers": [
		{"name": "field", "color": "blue", "shape": {"type": "full"}},
		{"name": "saltire", "color": "white", "depends_on": ["field"],
		 "shape": {"type": "saltire", "half_width": 0.09}},
		{"name": "cross", "color": "red", "depends_on": ["saltire"],
		 "shape": {"type": "cross", "cx": 0.5, "cy": 0.5, "half_width": 0.06}}
	]}`
	for i := 0; i < b.N; i++ {
		if _, err := flagspec.DecodeJSON(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// Session export throughput (CSV + JSON).
func BenchmarkSessionExport(b *testing.B) {
	sess, err := classroom.Run(classroom.Config{Teams: 4, RepeatS1: true, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.WriteBoardCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := sess.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// SVG Gantt rendering of a traced contended run.
func BenchmarkSVGGanttRender(b *testing.B) {
	scen, err := core.ScenarioByID(core.S4)
	if err != nil {
		b.Fatal(err)
	}
	team, err := core.NewTeam(scen.Workers, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(core.RunSpec{
		Flag: flagspec.Mauritius, Scenario: scen, Team: team, Trace: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := report.SVGGantt(io.Discard, res, 800); err != nil {
			b.Fatal(err)
		}
	}
}

// Whole-curve Amdahl fit.
func BenchmarkAmdahlFit(b *testing.B) {
	curve := make([]time.Duration, 16)
	for i := range curve {
		p := float64(i + 1)
		speedup := 1 / (0.02 + 0.98/p)
		curve[i] = time.Duration(float64(time.Hour) / speedup)
	}
	b.ResetTimer()
	var fit metrics.AmdahlFit
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = metrics.FitAmdahl(curve)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.SerialFraction, "fitted-f")
}

// Pooled McNemar over the reproduced contention cohorts.
func BenchmarkPooledMcNemar(b *testing.B) {
	cohorts, err := quiz.GenerateStudy(quiz.PaperMatrices(), rng.New(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var p float64
	for i := 0; i < b.N; i++ {
		pooled, err := quiz.PooledConceptCohort(cohorts, quiz.Contention)
		if err != nil {
			b.Fatal(err)
		}
		res, err := stats.McNemar(pooled)
		if err != nil {
			b.Fatal(err)
		}
		p = res.PValue
	}
	b.ReportMetric(p, "pooled-contention-p")
}
