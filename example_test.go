package flagsim_test

// Testable examples: these run under `go test` and render in godoc as the
// package's documentation examples. All output is deterministic.

import (
	"fmt"
	"time"

	"flagsim"
)

// ExampleRasterize renders the core-activity flag as ASCII art.
func ExampleRasterize() {
	f := flagsim.Mauritius
	g, _ := flagsim.Rasterize(f, f.DefaultW, f.DefaultH)
	fmt.Print(g)
	// Output:
	// RRRRRRRRRRRR
	// RRRRRRRRRRRR
	// BBBBBBBBBBBB
	// BBBBBBBBBBBB
	// YYYYYYYYYYYY
	// YYYYYYYYYYYY
	// GGGGGGGGGGGG
	// GGGGGGGGGGGG
}

// ExampleRunScenario runs scenario 3 (one stripe per student) and prints
// the completion time.
func ExampleRunScenario() {
	team, _ := flagsim.NewTeam(4, 42)
	// Disable warmup and movement for a hand-checkable time: 24 cells per
	// student at 1s plus one 500ms pickup each.
	scen, _ := flagsim.ScenarioByID(flagsim.S3)
	res, _ := flagsim.RunScenario(flagsim.RunSpec{
		Flag:     flagsim.Mauritius,
		Scenario: scen,
		Team:     team,
	})
	fmt.Println("all four stripes done:", res.Makespan > 0)
	fmt.Println("implement contention:", res.TotalWaitImplement())
	// Output:
	// all four stripes done: true
	// implement contention: 0s
}

// ExampleSpeedupOf computes the activity's headline metric.
func ExampleSpeedupOf() {
	t1 := 150 * time.Second
	t4 := 56 * time.Second
	s, _ := flagsim.SpeedupOf(t1, t4)
	e, _ := flagsim.EfficiencyOf(t1, t4, 4)
	fmt.Printf("speedup %.2fx, efficiency %.0f%%\n", s, e*100)
	// Output:
	// speedup 2.68x, efficiency 67%
}

// ExampleJordanReferenceGraph prints the Fig. 9 dependency structure.
func ExampleJordanReferenceGraph() {
	g := flagsim.JordanReferenceGraph(false)
	order, _ := g.TopoSort()
	for _, id := range order {
		fmt.Println(id, "<-", g.Predecessors(id))
	}
	// Output:
	// black-stripe <- []
	// white-stripe <- []
	// green-stripe <- []
	// red-triangle <- [black-stripe green-stripe white-stripe]
	// white-star <- [red-triangle]
}

// ExampleListSchedule shows dependencies capping speedup: three
// processors suffice for Jordan; a fourth adds nothing.
func ExampleListSchedule() {
	g := flagsim.JordanReferenceGraph(false)
	for p := 1; p <= 4; p++ {
		s, _ := flagsim.ListSchedule(g, p)
		fmt.Printf("p=%d: %v\n", p, s.Makespan)
	}
	// Output:
	// p=1: 2m58s
	// p=2: 2m10s
	// p=3: 1m22s
	// p=4: 1m22s
}

// ExampleAmdahlSpeedup evaluates the law the activity's setup phase
// embodies.
func ExampleAmdahlSpeedup() {
	for _, p := range []int{2, 4, 16} {
		s, _ := flagsim.AmdahlSpeedup(0.1, p)
		fmt.Printf("p=%d: %.2fx\n", p, s)
	}
	// Output:
	// p=2: 1.82x
	// p=4: 3.08x
	// p=16: 6.40x
}

// ExampleGradeSubmission grades the characteristic student error.
func ExampleGradeSubmission() {
	g := flagsim.NewGraph()
	for _, id := range []string{"black-stripe", "white-stripe", "green-stripe", "red-triangle", "white-star"} {
		g.MustAddNode(flagsim.GraphNode{ID: id})
	}
	// A linear chain: thinking in sequential code.
	g.MustAddEdge("black-stripe", "white-stripe")
	g.MustAddEdge("white-stripe", "green-stripe")
	g.MustAddEdge("green-stripe", "red-triangle")
	g.MustAddEdge("red-triangle", "white-star")
	fmt.Println(flagsim.GradeSubmission(flagsim.Submission{Graph: g, ArrowsDrawn: true}))
	// Output:
	// linear-chain
}
