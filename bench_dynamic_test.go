package flagsim_test

// Benchmarks for the dynamic executor (E28), the data-parallel demo
// (E27), the animation substrate, and the Chrome-trace exporter.

import (
	"io"
	"testing"
	"time"

	"flagsim/internal/anim"
	"flagsim/internal/core"
	"flagsim/internal/flagspec"
	"flagsim/internal/implement"
	"flagsim/internal/metrics"
	"flagsim/internal/processor"
	"flagsim/internal/rng"
	"flagsim/internal/sim"
	"flagsim/internal/workplan"
)

func benchTeamSkills(b *testing.B, skills ...float64) []*processor.Processor {
	b.Helper()
	out := make([]*processor.Processor, len(skills))
	for i, s := range skills {
		p := processor.DefaultProfile("P")
		p.Skill = s
		pr, err := processor.New(p, rng.New(uint64(benchSeed)).SplitLabeled(p.Name))
		if err != nil {
			b.Fatal(err)
		}
		out[i] = pr
	}
	return out
}

// E28 — dynamic self-scheduling vs static slices on a heterogeneous team.
func BenchmarkDynamicVsStatic(b *testing.B) {
	f := flagspec.Mauritius
	skills := []float64{1.3, 1.3, 1.3, 0.5}
	plan, err := workplan.VerticalSlices(f, f.DefaultW, f.DefaultH, 4, true)
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		static, err := sim.Run(sim.Config{
			Plan: plan, Procs: benchTeamSkills(b, skills...),
			Set: implement.NewSetN(implement.ThickMarker, f.Colors(), 2),
		})
		if err != nil {
			b.Fatal(err)
		}
		dynamic, err := sim.RunDynamic(sim.DynamicConfig{
			Flag: f, Procs: benchTeamSkills(b, skills...),
			Set:    implement.NewSetN(implement.ThickMarker, f.Colors(), 2),
			Policy: sim.PullColorAffinity,
		})
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(static.Makespan) / float64(dynamic.Makespan)
	}
	b.ReportMetric(gain, "dynamic-speedup")
}

// E27 — the CPU-vs-GPU paintball demo.
func BenchmarkDataParallelGPU(b *testing.B) {
	f := flagspec.Mauritius
	w, h := f.DefaultW, f.DefaultH
	cells := w * h
	var speedup float64
	for i := 0; i < b.N; i++ {
		cpuPlan, err := workplan.Sequential(f, w, h)
		if err != nil {
			b.Fatal(err)
		}
		cpuTeam, err := core.NewTeam(1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cpu, err := sim.Run(sim.Config{
			Plan: cpuPlan, Procs: cpuTeam,
			Set: implement.NewSet(implement.ThickMarker, f.Colors()),
		})
		if err != nil {
			b.Fatal(err)
		}
		gpuPlan, err := workplan.Cyclic(f, w, h, cells)
		if err != nil {
			b.Fatal(err)
		}
		gpuTeam, err := core.NewTeam(cells, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		gpu, err := sim.Run(sim.Config{
			Plan: gpuPlan, Procs: gpuTeam,
			Set: implement.NewSetN(implement.ThickMarker, f.Colors(), cells),
		})
		if err != nil {
			b.Fatal(err)
		}
		speedup, err = metrics.Speedup(cpu.Makespan, gpu.Makespan)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(speedup, "gpu-speedup")
}

func tracedBenchRun(b *testing.B) *sim.Result {
	b.Helper()
	scen, err := core.ScenarioByID(core.S4)
	if err != nil {
		b.Fatal(err)
	}
	team, err := core.NewTeam(scen.Workers, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(core.RunSpec{
		Flag: flagspec.Mauritius, Scenario: scen, Team: team, Trace: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// Animation: GIF rendering of a traced run.
func BenchmarkAnimationGIF(b *testing.B) {
	res := tracedBenchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := anim.WriteGIF(io.Discard, res, anim.Options{Step: 5 * time.Second, Scale: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// Chrome trace export.
func BenchmarkChromeTraceExport(b *testing.B) {
	res := tracedBenchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.WriteChromeTrace(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
